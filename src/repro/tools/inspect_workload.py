"""Workload inspector CLI.

Prints the characterization a GPU architect wants before simulating:
footprints, densities, list-length and reuse histograms, and the OPT
Number statistics that determine how much headroom the replacement
policy has.

Usage::

    python -m repro.tools.inspect_workload --benchmark DDS --scale 0.2
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter

from repro.pbuffer.pmd import NO_NEXT_TILE
from repro.workloads.suite import BENCHMARKS, build_workload

MIB = 1024 * 1024


def _histogram_line(counter: Counter, buckets: list[int]) -> str:
    parts = []
    previous = 0
    for bucket in buckets:
        count = sum(v for k, v in counter.items() if previous < k <= bucket)
        parts.append(f"<={bucket}:{count}")
        previous = bucket
    overflow = sum(v for k, v in counter.items() if k > buckets[-1])
    parts.append(f">{buckets[-1]}:{overflow}")
    return "  ".join(parts)


def inspect(alias: str, scale: float) -> str:
    spec = BENCHMARKS[alias]
    workload = build_workload(spec, scale=scale)
    pb = workload.traces[0].pb
    lines = [f"=== {spec.name} ({alias}) at scale {scale} ==="]
    lines.append(f"genre: {spec.genre} ({'2D' if spec.is_2d else '3D'}), "
                 f"{spec.installs_millions}M installs")
    lines.append(f"primitives: {workload.num_primitives} "
                 f"(paper-scale: {spec.num_primitives()})")
    lines.append(f"PB footprint: {pb.footprint_bytes() / MIB:.3f} MiB "
                 f"(paper: {spec.pb_footprint_mib} MiB at scale 1.0)")
    lines.append(f"measured reuse: {workload.measured_reuse():.2f} "
                 f"(paper: {spec.avg_reuse})")

    list_lengths = Counter(len(lst) for lst in pb.tile_lists if lst)
    occupied = sum(list_lengths.values())
    total_pmds = pb.total_pmds()
    lines.append(f"tiles occupied: {occupied}/{workload.screen.num_tiles} "
                 f"({total_pmds / max(1, occupied):.1f} prims/occupied tile)")
    lines.append("list lengths:  "
                 + _histogram_line(list_lengths, [1, 2, 4, 8, 16, 32]))

    reuse = Counter(len(record.use_ranks)
                    for record in pb.binned_primitives())
    lines.append("prim reuse:    " + _histogram_line(reuse, [1, 2, 4, 8, 16]))

    # OPT Number headroom: distance (in tiles) to each PMD's next use.
    distances = Counter()
    for tile_list in pb.tile_lists:
        for slot in tile_list:
            if slot.pmd.opt_number == NO_NEXT_TILE:
                distances[-1] += 1
            else:
                current = pb.rank_of_tile[slot.tile_id]
                distances[slot.pmd.opt_number - current] += 1
    last_uses = distances.pop(-1, 0)
    lines.append("next-use dist: "
                 + _histogram_line(distances, [1, 4, 16, 64, 256]))
    lines.append(f"last uses (no next tile): {last_uses} "
                 f"({100 * last_uses / max(1, total_pmds):.0f}% of PMDs — "
                 "each is a line OPT can retire instantly)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Inspect a workload")
    parser.add_argument("--benchmark", default="CCS",
                        choices=sorted(BENCHMARKS))
    parser.add_argument("--scale", type=float, default=0.2)
    args = parser.parse_args(argv)
    print(inspect(args.benchmark, args.scale))
    return 0


if __name__ == "__main__":
    sys.exit(main())
