"""Developer tooling: trace export/import and workload inspection."""

from repro.tools.trace_io import (
    dump_trace,
    load_trace,
    trace_to_records,
)
from repro.tools.inspect_workload import inspect as inspect_workload

__all__ = ["dump_trace", "inspect_workload", "load_trace",
           "trace_to_records"]
