"""Tiling Engine trace export/import (JSON Lines).

Lets the Parameter Buffer access stream leave the library: dump a
workload's logical trace to a ``.jsonl`` file for external tooling (or
archival, so an experiment can be replayed without regenerating the
scene), and load such a file back into event objects.

CLI::

    python -m repro.tools.trace_io dump --benchmark CCS --scale 0.1 \\
        --out ccs_trace.jsonl
    python -m repro.tools.trace_io stats ccs_trace.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable, TextIO

from repro.pbuffer.pmd import TcorPMD
from repro.tiling.events import (
    AttributeRead,
    AttributeWrite,
    PmdRead,
    PmdWrite,
    TileDone,
    TilingEvent,
)
from repro.tiling.engine import TilingTrace


def _event_record(phase: str, event: TilingEvent) -> dict:
    if isinstance(event, PmdWrite):
        return {"phase": phase, "kind": "pmd_write",
                "tile": event.tile_id, "position": event.position,
                "pmd": event.pmd.encode()}
    if isinstance(event, AttributeWrite):
        return {"phase": phase, "kind": "attr_write",
                "primitive": event.primitive_id,
                "attrs": event.num_attributes,
                "opt": event.opt_number, "last": event.last_use_rank}
    if isinstance(event, PmdRead):
        return {"phase": phase, "kind": "pmd_read",
                "tile": event.tile_id, "rank": event.tile_rank,
                "position": event.position, "pmd": event.pmd.encode()}
    if isinstance(event, AttributeRead):
        return {"phase": phase, "kind": "attr_read",
                "primitive": event.primitive_id,
                "attrs": event.num_attributes, "opt": event.opt_number,
                "rank": event.tile_rank, "last": event.last_use_rank}
    if isinstance(event, TileDone):
        return {"phase": phase, "kind": "tile_done",
                "tile": event.tile_id, "rank": event.tile_rank}
    raise TypeError(f"unknown event type: {type(event).__name__}")


def _record_event(record: dict) -> TilingEvent:
    kind = record["kind"]
    if kind == "pmd_write":
        from repro.pbuffer.pmd import decode_tcor_pmd
        return PmdWrite(tile_id=record["tile"], position=record["position"],
                        pmd=decode_tcor_pmd(record["pmd"]))
    if kind == "attr_write":
        return AttributeWrite(primitive_id=record["primitive"],
                              num_attributes=record["attrs"],
                              opt_number=record["opt"],
                              last_use_rank=record["last"])
    if kind == "pmd_read":
        from repro.pbuffer.pmd import decode_tcor_pmd
        return PmdRead(tile_id=record["tile"], tile_rank=record["rank"],
                       position=record["position"],
                       pmd=decode_tcor_pmd(record["pmd"]))
    if kind == "attr_read":
        return AttributeRead(primitive_id=record["primitive"],
                             num_attributes=record["attrs"],
                             opt_number=record["opt"],
                             tile_rank=record["rank"],
                             last_use_rank=record["last"])
    if kind == "tile_done":
        return TileDone(tile_id=record["tile"], tile_rank=record["rank"])
    raise ValueError(f"unknown event kind: {kind!r}")


def trace_to_records(trace: TilingTrace) -> Iterable[dict]:
    for event in trace.build_events:
        yield _event_record("build", event)
    for event in trace.fetch_events:
        yield _event_record("fetch", event)


def dump_trace(trace: TilingTrace, stream: TextIO) -> int:
    """Write a trace as JSON Lines; returns the record count."""
    count = 0
    for record in trace_to_records(trace):
        stream.write(json.dumps(record, separators=(",", ":")) + "\n")
        count += 1
    return count


def load_trace(stream: TextIO) -> tuple[list[TilingEvent], list[TilingEvent]]:
    """Read a dumped trace; returns (build_events, fetch_events)."""
    build: list[TilingEvent] = []
    fetch: list[TilingEvent] = []
    for line in stream:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        event = _record_event(record)
        (build if record["phase"] == "build" else fetch).append(event)
    return build, fetch


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Export/inspect Tiling Engine traces")
    sub = parser.add_subparsers(dest="command", required=True)
    dump = sub.add_parser("dump", help="generate and export a trace")
    dump.add_argument("--benchmark", default="CCS")
    dump.add_argument("--scale", type=float, default=0.1)
    dump.add_argument("--out", required=True)
    stats = sub.add_parser("stats", help="summarize a dumped trace")
    stats.add_argument("path")
    args = parser.parse_args(argv)

    if args.command == "dump":
        from repro.workloads.suite import BENCHMARKS, build_workload
        workload = build_workload(BENCHMARKS[args.benchmark],
                                  scale=args.scale)
        with open(args.out, "w") as handle:
            count = dump_trace(workload.traces[0], handle)
        print(f"wrote {count} events to {args.out}")
        return 0

    with open(args.path) as handle:
        build, fetch = load_trace(handle)
    kinds: dict[str, int] = {}
    for event in build + fetch:
        name = type(event).__name__
        kinds[name] = kinds.get(name, 0) + 1
    print(f"{len(build)} build events, {len(fetch)} fetch events")
    for name, count in sorted(kinds.items()):
        print(f"  {name}: {count}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
