"""``tcor-metrics``: inspect and diff metrics dumps.

The regression gate CI runs::

    tcor-metrics diff BASELINE_METRICS.json current_metrics.json

exits 0 when every shared metric matches (newly *added* metrics are
fine — the surface may grow) and 1 on any drifted or missing metric,
printing one line per drift.  Baselines may be ``tcor-metrics`` dumps
(``--metrics-out``), pytest-benchmark ``BENCH_*.json`` exports, or
bare ``{name: value}`` dicts — :func:`repro.obs.load_metrics` detects
the format.

Other subcommands::

    tcor-metrics show metrics.json --prefix sim.tcor.CCS
    tcor-metrics summarize metrics.json
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.obs import diff_metrics, load_metrics

    baseline = load_metrics(args.baseline)
    current = load_metrics(args.current)
    report = diff_metrics(baseline, current, rel_tol=args.rel_tol,
                          prefix=args.prefix)
    print(report.describe())
    return 0 if report.clean else 1


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.obs import load_metrics

    metrics = load_metrics(args.dump)
    shown = 0
    for name in sorted(metrics):
        if args.prefix and not name.startswith(args.prefix):
            continue
        print(f"{name} = {metrics[name]}")
        shown += 1
    if not shown:
        print(f"(no metrics match prefix {args.prefix!r})")
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    from repro.obs import load_metrics

    metrics = load_metrics(args.dump)
    top: Counter = Counter()
    for name in metrics:
        top[".".join(name.split(".")[:args.depth])] += 1
    print(f"{len(metrics)} metrics in {args.dump}")
    for prefix, count in sorted(top.items()):
        print(f"  {prefix:<40} {count:6d}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tcor-metrics",
        description="Inspect and diff tcor-metrics dumps")
    sub = parser.add_subparsers(dest="command", required=True)

    diff = sub.add_parser(
        "diff", help="compare two dumps; exit 1 on drift or loss")
    diff.add_argument("baseline", help="baseline dump (tcor-metrics, "
                                       "pytest-benchmark, or flat JSON)")
    diff.add_argument("current", help="current dump to gate")
    diff.add_argument("--rel-tol", type=float, default=0.0,
                      help="relative tolerance for float metrics "
                           "(integer counters always compare exactly; "
                           "default: everything exact)")
    diff.add_argument("--prefix", default="",
                      help="only compare metrics under this dotted prefix")
    diff.set_defaults(func=_cmd_diff)

    show = sub.add_parser("show", help="print metrics, sorted by name")
    show.add_argument("dump")
    show.add_argument("--prefix", default="")
    show.set_defaults(func=_cmd_show)

    summarize = sub.add_parser(
        "summarize", help="count metrics per namespace")
    summarize.add_argument("dump")
    summarize.add_argument("--depth", type=int, default=2,
                           help="namespace depth to group by (default 2)")
    summarize.set_defaults(func=_cmd_summarize)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
