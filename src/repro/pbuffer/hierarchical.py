"""Hierarchical primitive lists (Hsiao et al. [20], paper Section VI).

A related-work alternative the paper positions TCOR against: instead of
repeating a PMD in every overlapped tile's list, primitives covering a
whole 2x2 *tile group* are recorded once in a coarse group-level list.
This shrinks the Parameter Buffer (fewer PMD copies) and the list-build
work, at the cost of a second list per group that the fetcher must merge
on every tile — and, for TCOR's purposes, it *breaks the one-PMD-per-
(tile, primitive) structure that OPT Numbers rely on*: a group-level PMD
is read by four tiles, so a single "next tile" field no longer captures
its next use exactly.

We implement it to quantify that trade-off: the footprint it saves vs.
the PMD-duplication the flat structure pays (see
``tests/test_pbuffer_hierarchical.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ParameterBufferConfig
from repro.geometry.scene import Scene


@dataclass(frozen=True)
class HierarchicalEntry:
    """One list entry: a primitive recorded at fine or coarse level."""

    primitive_id: int
    coarse: bool


class HierarchicalLists:
    """Two-level tile lists over 2x2 tile groups.

    A primitive overlapping *all four* tiles of a group is promoted to
    the group's coarse list (one PMD instead of four); everything else
    stays in the per-tile fine lists.
    """

    GROUP_SPAN = 2

    def __init__(self, scene: Scene,
                 pbuffer: ParameterBufferConfig | None = None) -> None:
        self.scene = scene
        self.pbuffer = pbuffer or ParameterBufferConfig()
        screen = scene.screen
        self.groups_x = (screen.tiles_x + self.GROUP_SPAN - 1) \
            // self.GROUP_SPAN
        self.groups_y = (screen.tiles_y + self.GROUP_SPAN - 1) \
            // self.GROUP_SPAN
        self.fine_lists: list[list[int]] = [
            [] for _ in range(screen.num_tiles)
        ]
        self.coarse_lists: list[list[int]] = [
            [] for _ in range(self.groups_x * self.groups_y)
        ]
        self._build()

    def group_of_tile(self, tile_id: int) -> int:
        tx = tile_id % self.scene.screen.tiles_x
        ty = tile_id // self.scene.screen.tiles_x
        return (ty // self.GROUP_SPAN) * self.groups_x + tx // self.GROUP_SPAN

    def _tiles_of_group(self, group_id: int) -> list[int]:
        screen = self.scene.screen
        gx = group_id % self.groups_x
        gy = group_id // self.groups_x
        tiles = []
        for dy in range(self.GROUP_SPAN):
            for dx in range(self.GROUP_SPAN):
                tx = gx * self.GROUP_SPAN + dx
                ty = gy * self.GROUP_SPAN + dy
                if tx < screen.tiles_x and ty < screen.tiles_y:
                    tiles.append(ty * screen.tiles_x + tx)
        return tiles

    def _build(self) -> None:
        for prim_id, tiles in enumerate(self.scene.coverage()):
            if not tiles:
                continue
            by_group: dict[int, list[int]] = {}
            for tile_id in tiles:
                by_group.setdefault(self.group_of_tile(tile_id),
                                    []).append(tile_id)
            for group_id, group_tiles in by_group.items():
                full_group = self._tiles_of_group(group_id)
                if len(group_tiles) == len(full_group) \
                        and len(full_group) == self.GROUP_SPAN ** 2:
                    self.coarse_lists[group_id].append(prim_id)
                else:
                    for tile_id in group_tiles:
                        self.fine_lists[tile_id].append(prim_id)

    # ------------------------------------------------------------------
    # Fetch-side view
    # ------------------------------------------------------------------
    def entries_for_tile(self, tile_id: int) -> list[HierarchicalEntry]:
        """The merged (fine + coarse) list the fetcher reads for a tile.

        Program order is restored by a merge on primitive ID, which is
        exactly the extra work the paper's related-work section notes
        this structure trades for its footprint savings.
        """
        fine = [HierarchicalEntry(p, coarse=False)
                for p in self.fine_lists[tile_id]]
        coarse = [HierarchicalEntry(p, coarse=True)
                  for p in self.coarse_lists[self.group_of_tile(tile_id)]]
        return sorted(fine + coarse, key=lambda e: e.primitive_id)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def total_pmds(self) -> int:
        return (sum(len(lst) for lst in self.fine_lists)
                + sum(len(lst) for lst in self.coarse_lists))

    def flat_pmds(self) -> int:
        """What the flat (paper-baseline/TCOR) structure would store."""
        return sum(len(tiles) for tiles in self.scene.coverage())

    def pmd_savings(self) -> float:
        flat = self.flat_pmds()
        if not flat:
            return 0.0
        return 1.0 - self.total_pmds() / flat
