"""Primitive MetaData (PMD) bit-level encodings.

A PMD is the 4-byte word stored in a tile's list for each primitive that
overlaps the tile.

Baseline (paper Figure 3)::

    | primitive id (26) | num attributes (4) | free (2) |

TCOR (paper Figure 6)::

    | primitive id (16) | num attributes (4) | OPT number (12) |

The OPT Number is the traversal rank of the next tile that will use the
primitive; the all-ones value means "no further use" (the frame has at
most 4095 tiles, so the sentinel never collides with a real rank).
"""

from __future__ import annotations

from dataclasses import dataclass

PMD_BITS = 32

_BASE_ID_BITS = 26
_ATTR_BITS = 4
_TCOR_ID_BITS = 16
_OPT_BITS = 12

NO_NEXT_TILE = (1 << _OPT_BITS) - 1  # 0xFFF: "never used again"


def _check(value: int, bits: int, what: str) -> None:
    if not (0 <= value < (1 << bits)):
        raise ValueError(f"{what} {value} does not fit in {bits} bits")


@dataclass(frozen=True, slots=True)
class BaselinePMD:
    """Decoded baseline PMD."""

    primitive_id: int
    num_attributes: int

    def encode(self) -> int:
        _check(self.primitive_id, _BASE_ID_BITS, "primitive id")
        _check(self.num_attributes, _ATTR_BITS, "attribute count")
        if self.num_attributes == 0:
            raise ValueError("a primitive has at least one attribute")
        return (self.primitive_id << (_ATTR_BITS + 2)) | (self.num_attributes << 2)


def decode_baseline_pmd(word: int) -> BaselinePMD:
    _check(word, PMD_BITS, "PMD word")
    return BaselinePMD(
        primitive_id=word >> (_ATTR_BITS + 2),
        num_attributes=(word >> 2) & ((1 << _ATTR_BITS) - 1),
    )


@dataclass(frozen=True, slots=True)
class TcorPMD:
    """Decoded TCOR PMD (with OPT Number)."""

    primitive_id: int
    num_attributes: int
    opt_number: int

    def encode(self) -> int:
        _check(self.primitive_id, _TCOR_ID_BITS, "primitive id")
        _check(self.num_attributes, _ATTR_BITS, "attribute count")
        _check(self.opt_number, _OPT_BITS, "OPT number")
        if self.num_attributes == 0:
            raise ValueError("a primitive has at least one attribute")
        return ((self.primitive_id << (_ATTR_BITS + _OPT_BITS))
                | (self.num_attributes << _OPT_BITS)
                | self.opt_number)

    @property
    def is_last_use(self) -> bool:
        return self.opt_number == NO_NEXT_TILE


def decode_tcor_pmd(word: int) -> TcorPMD:
    _check(word, PMD_BITS, "PMD word")
    return TcorPMD(
        primitive_id=word >> (_ATTR_BITS + _OPT_BITS),
        num_attributes=(word >> _OPT_BITS) & ((1 << _ATTR_BITS) - 1),
        opt_number=word & ((1 << _OPT_BITS) - 1),
    )
