"""PB-Attributes address map.

Attributes are written once, in binning order, each 48 bytes and block
aligned (paper Figure 4), so a primitive with n attributes owns n
consecutive 64-byte blocks.  The paper uses the address of a primitive's
first attribute as its Primitive ID; we keep integer primitive IDs and
expose the address mapping explicitly.

The 16 spare bytes of each attribute block carry the TCOR dead-line tag
(the 12-bit last-tile ID the Polygon List Builder stores there, paper
Section III-D.1); we model that as a lookup keyed by block address.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import ParameterBufferConfig


class PBAttributesMap:
    """Addresses of every primitive's attributes.

    Built from the per-primitive attribute counts in binning order.
    """

    def __init__(self, attribute_counts: Sequence[int],
                 pbuffer: ParameterBufferConfig | None = None) -> None:
        self.pbuffer = pbuffer or ParameterBufferConfig()
        self._counts = list(attribute_counts)
        stride = self.pbuffer.attribute_stride
        self._first_block: list[int] = []
        offset = 0
        for count in self._counts:
            if count <= 0:
                raise ValueError("every primitive has at least one attribute")
            self._first_block.append(offset)
            offset += count * stride
        self._total_bytes = offset
        self._last_tile_by_block: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @property
    def base(self) -> int:
        return self.pbuffer.pb_attributes_pointer

    @property
    def num_primitives(self) -> int:
        return len(self._counts)

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    def attribute_count(self, primitive_id: int) -> int:
        return self._counts[primitive_id]

    def primitive_base(self, primitive_id: int) -> int:
        """Address of the first attribute — the paper's Primitive ID."""
        return self.base + self._first_block[primitive_id]

    def attribute_address(self, primitive_id: int, slot: int) -> int:
        if not (0 <= slot < self._counts[primitive_id]):
            raise ValueError(
                f"primitive {primitive_id} has no attribute slot {slot}"
            )
        return (self.primitive_base(primitive_id)
                + slot * self.pbuffer.attribute_stride)

    def attribute_addresses(self, primitive_id: int) -> list[int]:
        return [self.attribute_address(primitive_id, slot)
                for slot in range(self._counts[primitive_id])]

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self._total_bytes

    # ------------------------------------------------------------------
    # Dead-line tags (stored in each block's spare bytes by the PLB)
    # ------------------------------------------------------------------
    def tag_last_tile(self, primitive_id: int, last_tile_rank: int) -> None:
        for address in self.attribute_addresses(primitive_id):
            self._last_tile_by_block[address] = last_tile_rank

    def last_tile_of_block(self, block_address: int) -> int | None:
        return self._last_tile_by_block.get(block_address)
