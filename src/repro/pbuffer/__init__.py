"""The Parameter Buffer: PMD encodings, memory layouts, construction.

The Parameter Buffer has two sections (paper Section II-B):

- **PB-Lists** — per-tile lists of PMDs (primitive metadata words);
- **PB-Attributes** — each primitive's attributes, 48 bytes apiece,
  block aligned, stored once regardless of how many tiles reuse it.

TCOR changes both: PMDs gain a 12-bit OPT Number, and the per-tile lists
are interleaved one block per tile per section instead of occupying 64
contiguous blocks per tile.
"""

from repro.pbuffer.pmd import (
    NO_NEXT_TILE,
    BaselinePMD,
    TcorPMD,
    decode_baseline_pmd,
    decode_tcor_pmd,
)
from repro.pbuffer.layout import (
    ContiguousPBListsLayout,
    InterleavedPBListsLayout,
    PBListsLayout,
)
from repro.pbuffer.attributes import PBAttributesMap
from repro.pbuffer.builder import ParameterBuffer, build_parameter_buffer
from repro.pbuffer.hierarchical import HierarchicalEntry, HierarchicalLists

__all__ = [
    "BaselinePMD",
    "ContiguousPBListsLayout",
    "HierarchicalEntry",
    "HierarchicalLists",
    "InterleavedPBListsLayout",
    "NO_NEXT_TILE",
    "PBAttributesMap",
    "PBListsLayout",
    "ParameterBuffer",
    "TcorPMD",
    "build_parameter_buffer",
    "decode_baseline_pmd",
    "decode_tcor_pmd",
]
