"""Parameter Buffer construction (what the Polygon List Builder computes).

Binning walks primitives in program order and appends a PMD to each
overlapped tile's list.  Because the tile traversal order is fixed and
known, the builder can also compute, per (tile, primitive) pair, the
traversal rank of the *next* tile that uses the primitive — the OPT
Number — plus each primitive's first-use rank (the OPT Number of its
attribute write) and last-use rank (the TCOR dead-line tag).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ParameterBufferConfig
from repro.geometry.scene import Scene
from repro.geometry.traversal import TraversalOrder, traversal_rank
from repro.pbuffer.attributes import PBAttributesMap
from repro.pbuffer.pmd import NO_NEXT_TILE, TcorPMD


@dataclass(frozen=True)
class PMDSlot:
    """One PMD in a tile's list, with everything TCOR derives for it."""

    tile_id: int
    position: int          # index within the tile's list
    pmd: TcorPMD           # opt_number = next-use rank (or NO_NEXT_TILE)


@dataclass(frozen=True)
class PrimitiveRecord:
    """Per-primitive summary in binning order."""

    primitive_id: int
    num_attributes: int
    first_use_rank: int    # OPT Number of the attribute write
    last_use_rank: int     # dead-line tag
    use_ranks: tuple[int, ...]  # all use ranks, ascending


class ParameterBuffer:
    """The built Parameter Buffer plus TCOR's derived future-use data."""

    def __init__(self, scene: Scene, order: TraversalOrder,
                 pbuffer: ParameterBufferConfig | None = None) -> None:
        self.scene = scene
        self.order = order
        self.pbuffer = pbuffer or ParameterBufferConfig()
        self.rank_of_tile = traversal_rank(scene.screen, order)

        coverage = scene.coverage()
        self.records: list[PrimitiveRecord] = []
        # tile_id -> list of PMDSlot, positions dense in binning order.
        self.tile_lists: list[list[PMDSlot]] = [
            [] for _ in range(scene.screen.num_tiles)
        ]
        # (primitive, binning order) slots grouped per primitive.
        self.slots_by_primitive: list[list[PMDSlot]] = []

        for prim, tiles in zip(scene.primitives, coverage):
            ranks = sorted(self.rank_of_tile[tile] for tile in tiles)
            if tiles:
                record = PrimitiveRecord(
                    primitive_id=prim.primitive_id,
                    num_attributes=prim.num_attributes,
                    first_use_rank=ranks[0],
                    last_use_rank=ranks[-1],
                    use_ranks=tuple(ranks),
                )
            else:
                # Clipped primitive: binned nowhere, written nowhere.
                record = PrimitiveRecord(prim.primitive_id,
                                         prim.num_attributes,
                                         NO_NEXT_TILE, NO_NEXT_TILE, ())
            self.records.append(record)

            slots: list[PMDSlot] = []
            rank_to_next: dict[int, int] = {}
            for i, rank in enumerate(ranks):
                rank_to_next[rank] = ranks[i + 1] if i + 1 < len(ranks) \
                    else NO_NEXT_TILE
            for tile_id in tiles:
                position = len(self.tile_lists[tile_id])
                if position >= self.pbuffer.max_primitives_per_tile:
                    raise OverflowError(
                        f"tile {tile_id} exceeds the "
                        f"{self.pbuffer.max_primitives_per_tile}-primitive "
                        "list limit"
                    )
                slot = PMDSlot(
                    tile_id=tile_id,
                    position=position,
                    pmd=TcorPMD(
                        primitive_id=prim.primitive_id,
                        num_attributes=prim.num_attributes,
                        opt_number=rank_to_next[self.rank_of_tile[tile_id]],
                    ),
                )
                self.tile_lists[tile_id].append(slot)
                slots.append(slot)
            self.slots_by_primitive.append(slots)

        self.attributes = PBAttributesMap(
            [record.num_attributes for record in self.records], self.pbuffer
        )
        for record in self.records:
            if record.use_ranks:
                self.attributes.tag_last_tile(record.primitive_id,
                                              record.last_use_rank)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_primitives(self) -> int:
        return len(self.records)

    def binned_primitives(self) -> list[PrimitiveRecord]:
        """Primitives that overlap at least one tile, in binning order."""
        return [record for record in self.records if record.use_ranks]

    def list_length(self, tile_id: int) -> int:
        return len(self.tile_lists[tile_id])

    def total_pmds(self) -> int:
        return sum(len(lst) for lst in self.tile_lists)

    def footprint_bytes(self) -> int:
        """Live Parameter Buffer bytes (attributes + PMDs actually written)."""
        attr_bytes = sum(
            record.num_attributes * self.pbuffer.attribute_stride
            for record in self.binned_primitives()
        )
        return attr_bytes + self.total_pmds() * self.pbuffer.pmd_bytes


def build_parameter_buffer(
    scene: Scene,
    order: TraversalOrder = TraversalOrder.Z_ORDER,
    pbuffer: ParameterBufferConfig | None = None,
) -> ParameterBuffer:
    """Bin a scene and derive all TCOR metadata."""
    return ParameterBuffer(scene, order, pbuffer)
