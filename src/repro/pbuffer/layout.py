"""PB-Lists memory layouts.

Baseline (paper Figure 3): each tile's list occupies 64 contiguous
blocks (1024 PMDs), so consecutive tiles' live data sits a large power
of two apart — with modulo indexing most of it maps to a few cache sets.

TCOR (paper Figure 6): lists are interleaved by *section*: section s
holds PMDs 16s..16s+15 of every tile, one block per tile, so the live
head of every list packs densely and spreads across sets.  The
interleaving also makes dead-tile inference trivial: the owning tile of
a block is its block index modulo the number of tiles.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.config import ParameterBufferConfig


class PBListsLayout(ABC):
    """Address computation for the PB-Lists section."""

    def __init__(self, num_tiles: int,
                 pbuffer: ParameterBufferConfig | None = None) -> None:
        if num_tiles <= 0:
            raise ValueError("need at least one tile")
        self.num_tiles = num_tiles
        self.pbuffer = pbuffer or ParameterBufferConfig()

    def _check_slot(self, tile_id: int, position: int) -> None:
        if not (0 <= tile_id < self.num_tiles):
            raise ValueError(f"tile {tile_id} out of range")
        if not (0 <= position < self.pbuffer.max_primitives_per_tile):
            raise ValueError(
                f"list position {position} exceeds the per-tile maximum "
                f"of {self.pbuffer.max_primitives_per_tile}"
            )

    @abstractmethod
    def pmd_address(self, tile_id: int, position: int) -> int:
        """Byte address of the ``position``-th PMD of ``tile_id``'s list."""

    @abstractmethod
    def tile_of_block(self, block_address: int) -> int | None:
        """Owning tile of a PB-Lists block, or None if not inferable
        without extra state."""

    @property
    def base(self) -> int:
        return self.pbuffer.pb_lists_pointer

    @property
    def total_bytes(self) -> int:
        return (self.num_tiles * self.pbuffer.max_primitives_per_tile
                * self.pbuffer.pmd_bytes)

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.total_bytes


class ContiguousPBListsLayout(PBListsLayout):
    """Baseline: 64 consecutive blocks per tile."""

    def pmd_address(self, tile_id: int, position: int) -> int:
        self._check_slot(tile_id, position)
        tile_bytes = (self.pbuffer.max_primitives_per_tile
                      * self.pbuffer.pmd_bytes)
        return self.base + tile_id * tile_bytes + position * self.pbuffer.pmd_bytes

    def tile_of_block(self, block_address: int) -> int | None:
        if not self.contains(block_address):
            return None
        tile_bytes = (self.pbuffer.max_primitives_per_tile
                      * self.pbuffer.pmd_bytes)
        return (block_address - self.base) // tile_bytes


class InterleavedPBListsLayout(PBListsLayout):
    """TCOR: one block per tile per section, sections concatenated."""

    def pmd_address(self, tile_id: int, position: int) -> int:
        self._check_slot(tile_id, position)
        per_block = self.pbuffer.pmds_per_block
        section, offset = divmod(position, per_block)
        block_index = section * self.num_tiles + tile_id
        return (self.base + block_index * self.pbuffer.block_bytes
                + offset * self.pbuffer.pmd_bytes)

    def tile_of_block(self, block_address: int) -> int | None:
        if not self.contains(block_address):
            return None
        block_index = (block_address - self.base) // self.pbuffer.block_bytes
        return block_index % self.num_tiles
