"""Main-memory model (the DRAMSim2 substitute).

A row-buffer-aware LPDDR-class DRAM: banks with open rows, where a
row-buffer hit costs the low end of Table I's 50-100 cycle band and a
row conflict (precharge + activate) the high end.  The traffic
simulations only need access *counts*; this model refines the timing
path (`repro.timing`) and the per-access energy split.
"""

from repro.dram.model import DRAMConfig, DRAMModel, DRAMStats

__all__ = ["DRAMConfig", "DRAMModel", "DRAMStats"]
