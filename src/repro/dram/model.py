"""Row-buffer-aware DRAM timing and energy."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.obs import trace as obs_trace


@dataclass(frozen=True)
class DRAMConfig:
    """An LPDDR-class part mapped onto Table I's 50-100 cycle band.

    Address mapping is row:bank:column — consecutive blocks walk a row
    before switching banks, the streaming-friendly mapping mobile
    memory controllers use.
    """

    num_banks: int = 8
    row_bytes: int = 2048
    block_bytes: int = 64
    row_hit_cycles: int = 50       # CAS only
    row_empty_cycles: int = 75     # activate + CAS
    row_conflict_cycles: int = 100  # precharge + activate + CAS
    # Energy (nJ per event, 32 nm LPDDR ballpark).
    activate_nj: float = 8.0
    read_nj: float = 12.0
    write_nj: float = 14.0

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise ValueError("need at least one bank")
        if self.row_bytes % self.block_bytes:
            raise ValueError("row size must be a multiple of the block size")
        if not (self.row_hit_cycles <= self.row_empty_cycles
                <= self.row_conflict_cycles):
            raise ValueError("latency ordering violated")

    @property
    def blocks_per_row(self) -> int:
        return self.row_bytes // self.block_bytes


@dataclass
class DRAMStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_empties: int = 0
    row_conflicts: int = 0
    activations: int = 0
    total_cycles: int = 0
    energy_nj: float = 0.0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_ratio(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0

    @property
    def average_latency(self) -> float:
        return self.total_cycles / self.accesses if self.accesses else 0.0

    def as_dict(self) -> dict:
        summary = dataclasses.asdict(self)
        summary["accesses"] = self.accesses
        summary["row_hit_ratio"] = self.row_hit_ratio
        summary["average_latency"] = self.average_latency
        return summary

    def register(self, registry, prefix: str) -> None:
        """Attach this live object to a metrics registry (StatsLike)."""
        registry.register(prefix, self)


class DRAMModel:
    """Per-bank open-row state machine (open-page policy)."""

    def __init__(self, config: DRAMConfig | None = None) -> None:
        self.config = config or DRAMConfig()
        self._open_rows: dict[int, int] = {}
        self.stats = DRAMStats()

    def _locate(self, address: int) -> tuple[int, int]:
        """(bank, row) of a byte address under row:bank:column mapping."""
        config = self.config
        block = address // config.block_bytes
        column_blocks = config.blocks_per_row
        bank = (block // column_blocks) % config.num_banks
        row = block // (column_blocks * config.num_banks)
        return bank, row

    def access(self, address: int, is_write: bool = False) -> int:
        """One 64-byte access; returns its latency in GPU cycles."""
        config = self.config
        bank, row = self._locate(address)
        open_row = self._open_rows.get(bank)
        if open_row == row:
            latency = config.row_hit_cycles
            self.stats.row_hits += 1
            energy = 0.0
            outcome = "hit"
        elif open_row is None:
            latency = config.row_empty_cycles
            self.stats.row_empties += 1
            self.stats.activations += 1
            energy = config.activate_nj
            outcome = "empty"
        else:
            latency = config.row_conflict_cycles
            self.stats.row_conflicts += 1
            self.stats.activations += 1
            energy = config.activate_nj
            outcome = "conflict"
        self._open_rows[bank] = row

        energy += config.write_nj if is_write else config.read_nj
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        self.stats.total_cycles += latency
        self.stats.energy_nj += energy
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.dram_access(self.stats, is_write=is_write, bank=bank,
                               row=row, outcome=outcome)
        return latency

    def reset(self) -> None:
        self._open_rows.clear()
        self.stats = DRAMStats()
