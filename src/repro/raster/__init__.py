"""The Raster Pipeline (paper Figure 2, right half).

The Tiling Engine's consumer: per tile, primitives are rasterized into
2x2-pixel quads, early-Z tested against the on-chip tile Z-Buffer,
shaded, and blended into the on-chip tile Color Buffer, which is flushed
to the Frame Buffer when the tile completes.

TCOR itself never touches fragment data — this package exists because a
full-system model needs the consumer side: it validates that the
Parameter Buffer round-trips geometry losslessly (render-from-PB equals
render-from-scene), generates the per-tile work the background traffic
model abstracts, and powers the end-to-end rendering example.
"""

from repro.raster.fragments import Fragment, Quad
from repro.raster.rasterizer import rasterize_in_tile
from repro.raster.zbuffer import DepthTest, TileZBuffer
from repro.raster.blend import BlendMode, blend
from repro.raster.pipeline import RasterPipeline, render_frame

__all__ = [
    "BlendMode",
    "DepthTest",
    "Fragment",
    "Quad",
    "RasterPipeline",
    "TileZBuffer",
    "blend",
    "rasterize_in_tile",
    "render_frame",
]
