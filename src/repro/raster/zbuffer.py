"""The on-chip tile Z-Buffer and the Early Z-Test.

The Z-Buffer has the size of one tile and stores the minimum depth seen
per pixel (paper Section II-A).  The Early Z-Test drops quads (or parts
of them) that lie behind previously processed opaque geometry; when a
shader changes fragment depth the test is disabled and the Late Z-Test
used instead — same structure, applied after shading.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.raster.fragments import Quad


class DepthTest(enum.Enum):
    EARLY = "early"
    LATE = "late"
    DISABLED = "disabled"


class TileZBuffer:
    """Per-tile minimum-depth store with quad-granularity testing."""

    def __init__(self, tile_size: int, far: float = 1.0) -> None:
        if tile_size <= 0 or tile_size % 2:
            raise ValueError("tile size must be positive and even")
        self.tile_size = tile_size
        self.far = far
        self._depth = np.full((tile_size, tile_size), far, dtype=np.float64)

    def clear(self) -> None:
        self._depth.fill(self.far)

    def depth_at(self, local_x: int, local_y: int) -> float:
        return float(self._depth[local_y, local_x])

    def test_and_update(self, quad: Quad, tile_origin_x: int,
                        tile_origin_y: int) -> int:
        """Run the depth test for one quad.

        Returns the surviving coverage mask; survivors' depths are
        written back (depth-write on pass, standard opaque rendering).
        """
        surviving = 0
        for bit, (dx, dy) in enumerate(((0, 0), (1, 0), (0, 1), (1, 1))):
            if not quad.mask & (1 << bit):
                continue
            local_x = quad.base_x + dx - tile_origin_x
            local_y = quad.base_y + dy - tile_origin_y
            if not (0 <= local_x < self.tile_size
                    and 0 <= local_y < self.tile_size):
                continue
            depth = quad.depths[bit]
            if depth < self._depth[local_y, local_x]:
                self._depth[local_y, local_x] = depth
                surviving |= 1 << bit
        return surviving

    def occupancy(self) -> float:
        """Fraction of pixels written since the last clear."""
        return float(np.mean(self._depth < self.far))
