"""Blending (paper Section II-A: the Blending Unit).

Computes the final color of a pixel from the shaded fragment color and
the color already in the tile Color Buffer, depending on transparency.
Colors are (r, g, b, a) tuples in [0, 1].
"""

from __future__ import annotations

import enum

Color = tuple[float, float, float, float]


class BlendMode(enum.Enum):
    REPLACE = "replace"              # opaque geometry
    ALPHA = "alpha"                  # src-over
    ADDITIVE = "additive"            # particles / glows


def _clamp(value: float) -> float:
    return 0.0 if value < 0.0 else 1.0 if value > 1.0 else value


def blend(source: Color, destination: Color,
          mode: BlendMode = BlendMode.REPLACE) -> Color:
    """Final pixel color of ``source`` drawn over ``destination``."""
    if mode is BlendMode.REPLACE:
        return source
    sr, sg, sb, sa = source
    dr, dg, db, da = destination
    if mode is BlendMode.ALPHA:
        inv = 1.0 - sa
        return (
            _clamp(sr * sa + dr * inv),
            _clamp(sg * sa + dg * inv),
            _clamp(sb * sa + db * inv),
            _clamp(sa + da * inv),
        )
    if mode is BlendMode.ADDITIVE:
        return (_clamp(sr + dr), _clamp(sg + dg), _clamp(sb + db),
                _clamp(max(sa, da)))
    raise ValueError(f"unknown blend mode: {mode!r}")
