"""Edge-function rasterization with the top-left fill rule.

Samples pixel centers (x + 0.5, y + 0.5) against the triangle's three
edge functions.  The top-left rule makes shared edges exclusive: a pixel
exactly on an edge belongs to the triangle only if that edge is a *top*
edge (horizontal, with the interior below it in screen space, i.e.
y grows downward) or a *left* edge — so two triangles sharing an edge
never double-shade a pixel and never leave a gap.

Depth is interpolated with barycentric weights from the vertices'
``z``.
"""

from __future__ import annotations

from repro.config import ScreenConfig
from repro.geometry.overlap import tile_rect
from repro.geometry.primitives import Primitive
from repro.raster.fragments import Quad


def _edge(ax: float, ay: float, bx: float, by: float,
          px: float, py: float) -> float:
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax)


def _is_top_left(ax: float, ay: float, bx: float, by: float) -> bool:
    """Top or left edge of a counter-clockwise triangle (y-down space)."""
    # Top edge: horizontal and pointing in -x... with CCW winding in a
    # y-down coordinate system, a top edge runs right-to-left is not the
    # usual phrasing; the robust form: top = dy == 0 and dx < 0 is for
    # y-up.  In y-down screen space with CCW area positive, a top edge
    # has dy == 0 and dx > 0, a left edge has dy > 0.
    dx = bx - ax
    dy = by - ay
    return (dy == 0 and dx > 0) or dy > 0


def rasterize_in_tile(prim: Primitive, screen: ScreenConfig,
                      tile_id: int) -> list[Quad]:
    """Quads of ``prim`` within one tile.

    Degenerate (zero-area) triangles produce nothing.  Winding is
    normalized internally so callers may submit either orientation.
    """
    area = prim.signed_area()
    if area == 0:
        return []
    v0, v1, v2 = prim.vertices
    if area < 0:  # normalize to counter-clockwise
        v1, v2 = v2, v1
        area = -area

    rect = tile_rect(screen, tile_id)
    bbox = prim.bounding_box()
    min_x = int(max(rect.min_x, bbox.min_x)) & ~1
    min_y = int(max(rect.min_y, bbox.min_y)) & ~1
    max_x = int(min(rect.max_x - 1, bbox.max_x))
    max_y = int(min(rect.max_y - 1, bbox.max_y))
    if min_x > max_x or min_y > max_y:
        return []

    edges = (
        (v0.x, v0.y, v1.x, v1.y),
        (v1.x, v1.y, v2.x, v2.y),
        (v2.x, v2.y, v0.x, v0.y),
    )
    biases = tuple(0.0 if _is_top_left(*edge) else -1e-9 for edge in edges)
    depths = (v0.z, v1.z, v2.z)

    quads: list[Quad] = []
    for base_y in range(min_y, max_y + 1, 2):
        for base_x in range(min_x, max_x + 1, 2):
            mask = 0
            quad_depths = [0.0, 0.0, 0.0, 0.0]
            for bit, (dx, dy) in enumerate(((0, 0), (1, 0), (0, 1), (1, 1))):
                px = base_x + dx + 0.5
                py = base_y + dy + 0.5
                if not (rect.min_x <= px < rect.max_x
                        and rect.min_y <= py < rect.max_y):
                    continue
                w0 = _edge(*edges[1], px, py)
                w1 = _edge(*edges[2], px, py)
                w2 = _edge(*edges[0], px, py)
                if (w0 + biases[1] >= 0 and w1 + biases[2] >= 0
                        and w2 + biases[0] >= 0):
                    mask |= 1 << bit
                    quad_depths[bit] = (
                        w0 * depths[0] + w1 * depths[1] + w2 * depths[2]
                    ) / area
            if mask:
                quads.append(Quad(base_x=base_x, base_y=base_y, mask=mask,
                                  depths=tuple(quad_depths),
                                  primitive_id=prim.primitive_id))
    return quads
