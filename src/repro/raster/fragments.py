"""Fragments and quads.

The Rasterizer emits *quads* — aligned 2x2 pixel groups with a coverage
mask — because derivative computation and texture LOD selection need
neighbouring fragments (paper Section II-A).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Fragment:
    """One covered pixel with interpolated depth."""

    x: int
    y: int
    depth: float
    primitive_id: int


@dataclass(frozen=True, slots=True)
class Quad:
    """An aligned 2x2 pixel group.

    ``base_x``/``base_y`` are even pixel coordinates; ``mask`` has bit i
    set when sub-pixel i is covered (order: (0,0), (1,0), (0,1), (1,1));
    ``depths`` holds the four interpolated depths (valid where covered).
    """

    base_x: int
    base_y: int
    mask: int
    depths: tuple[float, float, float, float]
    primitive_id: int

    def __post_init__(self) -> None:
        if self.base_x % 2 or self.base_y % 2:
            raise ValueError("quads are aligned to even pixel coordinates")
        if not (0 < self.mask <= 0xF):
            raise ValueError("a quad has 1..4 covered pixels")

    @property
    def coverage(self) -> int:
        return bin(self.mask).count("1")

    def fragments(self) -> list[Fragment]:
        offsets = ((0, 0), (1, 0), (0, 1), (1, 1))
        return [
            Fragment(self.base_x + dx, self.base_y + dy,
                     self.depths[bit], self.primitive_id)
            for bit, (dx, dy) in enumerate(offsets)
            if self.mask & (1 << bit)
        ]
