"""The tile-sequential Raster Pipeline.

Renders a frame the way a TBR GPU does: tile by tile, in the Tile
Fetcher's traversal order, from the per-tile primitive lists of the
Parameter Buffer.  For each tile the on-chip Color Buffer and Z-Buffer
are cleared, every listed primitive is rasterized, early-Z tested,
shaded (a procedural per-primitive color stands in for the fragment
program) and blended; the finished tile is flushed to the Frame Buffer.

The pipeline reads its work from a :class:`ParameterBuffer`, so a
successful render also certifies the whole binning/PB path: geometry in,
pixels out.
"""
# Raster counters (quads, fragments, flushes) are functional-model
# roll-ups of the pixel path; the trace stream deliberately observes
# only cache/memory/tile events, so these mutations have no hooked
# caller chain by design.
# lint: disable-file=SIM102

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.config import ScreenConfig
from repro.geometry.scene import Scene
from repro.geometry.traversal import TraversalOrder, tile_traversal
from repro.pbuffer.builder import ParameterBuffer, build_parameter_buffer
from repro.raster.blend import BlendMode, Color, blend
from repro.raster.rasterizer import rasterize_in_tile
from repro.raster.zbuffer import DepthTest, TileZBuffer


def _procedural_color(primitive_id: int) -> Color:
    """A stable, distinct color per primitive (the 'fragment shader')."""
    hue = (primitive_id * 0.61803398875) % 1.0
    r = 0.5 + 0.5 * np.cos(2 * np.pi * hue)
    g = 0.5 + 0.5 * np.cos(2 * np.pi * (hue + 1 / 3))
    b = 0.5 + 0.5 * np.cos(2 * np.pi * (hue + 2 / 3))
    return (float(r), float(g), float(b), 1.0)


@dataclass
class RasterStats:
    """Per-frame pipeline counters."""

    quads_rasterized: int = 0
    quads_after_z: int = 0
    fragments_shaded: int = 0
    tiles_rendered: int = 0
    framebuffer_flushes: int = 0

    @property
    def early_z_kill_ratio(self) -> float:
        if not self.quads_rasterized:
            return 0.0
        return 1.0 - self.quads_after_z / self.quads_rasterized

    def as_dict(self) -> dict:
        summary = dataclasses.asdict(self)
        summary["early_z_kill_ratio"] = self.early_z_kill_ratio
        return summary


class RasterPipeline:
    """Tile-sequential renderer over a built Parameter Buffer."""

    def __init__(self, pb: ParameterBuffer,
                 blend_mode: BlendMode = BlendMode.REPLACE,
                 depth_test: DepthTest = DepthTest.EARLY,
                 clear_color: Color = (0.0, 0.0, 0.0, 0.0)) -> None:
        self.pb = pb
        self.screen: ScreenConfig = pb.scene.screen
        self.blend_mode = blend_mode
        self.depth_test = depth_test
        self.clear_color = clear_color
        self.stats = RasterStats()
        self._framebuffer = np.zeros(
            (self.screen.height, self.screen.width, 4), dtype=np.float64)
        self._framebuffer[:, :] = clear_color

    @property
    def framebuffer(self) -> np.ndarray:
        """(height, width, rgba) final image in [0, 1]."""
        return self._framebuffer

    def render_tile(self, tile_id: int) -> bool:
        """Render one tile; returns True if any pixel was written."""
        tile_size = self.screen.tile_size
        origin_x = (tile_id % self.screen.tiles_x) * tile_size
        origin_y = (tile_id // self.screen.tiles_x) * tile_size
        slots = self.pb.tile_lists[tile_id]
        self.stats.tiles_rendered += 1
        if not slots:
            return False

        color_buffer = np.zeros((tile_size, tile_size, 4), dtype=np.float64)
        color_buffer[:, :] = self.clear_color
        zbuffer = TileZBuffer(tile_size)
        wrote = False

        for slot in slots:  # program order, as the FIFO delivers them
            prim = self.pb.scene.primitives[slot.pmd.primitive_id]
            color = _procedural_color(prim.primitive_id)
            for quad in rasterize_in_tile(prim, self.screen, tile_id):
                self.stats.quads_rasterized += 1
                if self.depth_test is DepthTest.EARLY:
                    # Early Z: reject before shading (paper Section II-A).
                    surviving = zbuffer.test_and_update(quad, origin_x,
                                                        origin_y)
                    shaded = surviving
                elif self.depth_test is DepthTest.LATE:
                    # Late Z: every covered fragment is shaded, then the
                    # depth test gates the write.
                    shaded = quad.mask
                    surviving = zbuffer.test_and_update(quad, origin_x,
                                                        origin_y)
                else:  # DepthTest.DISABLED: painter's order
                    shaded = surviving = quad.mask
                if not shaded:
                    continue
                if surviving:
                    self.stats.quads_after_z += 1
                for bit, (dx, dy) in enumerate(
                        ((0, 0), (1, 0), (0, 1), (1, 1))):
                    if shaded & (1 << bit):
                        self.stats.fragments_shaded += 1
                    if not surviving & (1 << bit):
                        continue
                    local_x = quad.base_x + dx - origin_x
                    local_y = quad.base_y + dy - origin_y
                    destination = tuple(color_buffer[local_y, local_x])
                    color_buffer[local_y, local_x] = blend(
                        color, destination, self.blend_mode)
                    wrote = True

        if wrote:
            # Flush the on-chip Color Buffer to the Frame Buffer.
            height = min(tile_size, self.screen.height - origin_y)
            width = min(tile_size, self.screen.width - origin_x)
            self._framebuffer[origin_y:origin_y + height,
                              origin_x:origin_x + width] = \
                color_buffer[:height, :width]
            self.stats.framebuffer_flushes += 1
        return wrote

    def render(self, order: TraversalOrder | None = None) -> np.ndarray:
        traversal = tile_traversal(
            self.screen, order if order is not None else self.pb.order)
        for tile_id in traversal:
            self.render_tile(tile_id)
        return self._framebuffer


def render_frame(scene: Scene,
                 order: TraversalOrder = TraversalOrder.Z_ORDER,
                 blend_mode: BlendMode = BlendMode.REPLACE) -> np.ndarray:
    """Convenience: bin a scene and render it; returns the framebuffer."""
    pb = build_parameter_buffer(scene, order)
    return RasterPipeline(pb, blend_mode=blend_mode).render()
