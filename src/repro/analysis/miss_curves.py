"""Replacement-policy miss curves over the PB-Attributes stream.

Figures 1 and 11-13 compare policies on the L1 Attribute Cache access
stream at *primitive* granularity: the Polygon List Builder's write per
primitive followed by the Tile Fetcher's read per (tile, primitive)
pair.  These helpers extract that stream from a workload and sweep cache
size / associativity / policy over it.

LRU fully-associative curves use single-pass Mattson stack analysis;
everything else is simulated directly (offline Belady via the lazy-heap
policy, so even multi-thousand-way sweeps stay fast).
"""

from __future__ import annotations

from repro.analysis.lower_bound import lower_bound_ratio, primitives_capacity
from repro.caches.mattson import MattsonStack
from repro.caches.policies import BeladyOPT, make_policy
from repro.caches.set_assoc import SetAssociativeCache
from repro.tiling.events import AttributeRead, AttributeWrite
from repro.workloads.suite import Workload

KIB = 1024


def attribute_access_trace(workload: Workload) -> list[int]:
    """Primitive-ID access stream of the Attribute Cache (one frame):
    binning-order writes, then traversal-order reads."""
    trace: list[int] = []
    tiling = workload.traces[0]
    for event in tiling.build_events:
        if isinstance(event, AttributeWrite):
            trace.append(event.primitive_id)
    for event in tiling.fetch_events:
        if isinstance(event, AttributeRead):
            trace.append(event.primitive_id)
    return trace


def policy_miss_ratio(trace: list[int], capacity_primitives: int,
                      policy_name: str, associativity: int | None = None,
                      **policy_kwargs) -> float:
    """Miss ratio of one policy on a primitive-ID trace.

    ``associativity=None`` means fully associative.  ``policy_name``
    accepts every :func:`~repro.caches.policies.make_policy` name plus
    ``"belady"``.
    """
    if not trace:
        return 0.0
    capacity = max(1, capacity_primitives)
    ways = capacity if associativity is None else min(associativity, capacity)
    num_sets = max(1, capacity // ways)
    if policy_name == "belady":
        policy = BeladyOPT.from_trace(trace)
    else:
        policy = make_policy(policy_name, **policy_kwargs)
    # One "line" per primitive; line_bytes=1 makes addresses primitive IDs.
    cache = SetAssociativeCache(num_sets=num_sets, ways=ways, line_bytes=1,
                                policy=policy, name=f"sweep-{policy_name}")
    for primitive_id in trace:
        cache.access(primitive_id)
    return cache.stats.miss_ratio


def lru_fully_associative_curve(trace: list[int],
                                capacities: list[int]) -> dict[int, float]:
    """Fully associative LRU miss ratios for many capacities, one pass."""
    stack = MattsonStack(trace_length_hint=len(trace))
    for primitive_id in trace:
        stack.record(primitive_id)
    total = max(1, len(trace))
    return {c: stack.misses_for_capacity(c) / total for c in capacities}


def suite_miss_curve(workloads: list[Workload], sizes_kib: list[int],
                     policy_name: str, associativity: int | None = None,
                     include_lower_bound: bool = False,
                     **policy_kwargs) -> dict:
    """Suite-average miss ratio per cache size.

    Returns ``{"sizes_kib": [...], "miss_ratio": [...]}`` (plus
    ``"lower_bound"`` when requested).  Capacity in primitives is derived
    per workload from its measured mean attribute count, so a KiB size
    means the same storage budget for every benchmark.
    """
    per_size: list[float] = [0.0] * len(sizes_kib)
    bounds: list[float] = [0.0] * len(sizes_kib)
    for workload in workloads:
        trace = attribute_access_trace(workload)
        mean_attrs = workload.scenes[0].average_attributes()
        capacities = [
            primitives_capacity(size * KIB, mean_attrs) for size in sizes_kib
        ]
        total_primitives = len(set(trace))
        if policy_name == "lru" and associativity is None:
            curve = lru_fully_associative_curve(trace, capacities)
            ratios = [curve[c] for c in capacities]
        else:
            ratios = [
                policy_miss_ratio(trace, capacity, policy_name,
                                  associativity, **policy_kwargs)
                for capacity in capacities
            ]
        for index, ratio in enumerate(ratios):
            per_size[index] += ratio / len(workloads)
        if include_lower_bound:
            for index, capacity in enumerate(capacities):
                bounds[index] += lower_bound_ratio(
                    total_primitives, capacity, len(trace)) / len(workloads)
    result = {"sizes_kib": list(sizes_kib), "miss_ratio": per_size}
    if include_lower_bound:
        result["lower_bound"] = bounds
    return result
