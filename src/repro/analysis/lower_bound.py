"""The miss-count lower bound (paper Section V-A).

Every primitive's attributes are written exactly once (a compulsory
miss) and read at least once.  A primitive not resident when the Polygon
List Builder finishes must miss on its first read.  With TP primitives
total and room for CP primitives in the Attribute Cache::

    LB >= TP + (TP - CP)   for CP < TP
    LB >= TP               for CP >= TP

This bound holds for every associativity and replacement policy, and is
the yardstick Figures 11-13 plot.
"""

from __future__ import annotations

from repro.config import ParameterBufferConfig


def lower_bound_misses(total_primitives: int, capacity_primitives: int) -> int:
    """Minimum misses any replacement policy can achieve."""
    if total_primitives < 0 or capacity_primitives < 0:
        raise ValueError("counts must be non-negative")
    shortfall = max(0, total_primitives - capacity_primitives)
    return total_primitives + shortfall


def lower_bound_ratio(total_primitives: int, capacity_primitives: int,
                      total_accesses: int) -> float:
    """The bound as a miss *ratio* over the full access stream."""
    if total_accesses <= 0:
        raise ValueError("need at least one access")
    return lower_bound_misses(total_primitives, capacity_primitives) \
        / total_accesses


def primitives_capacity(size_bytes: int, mean_attributes: float,
                        pbuffer: ParameterBufferConfig | None = None) -> int:
    """How many average primitives fit in ``size_bytes`` of attribute
    storage (each attribute occupies one block-aligned slot)."""
    pbuffer = pbuffer or ParameterBufferConfig()
    per_primitive = mean_attributes * pbuffer.attribute_stride
    if per_primitive <= 0:
        raise ValueError("primitives must have attributes")
    return max(1, int(size_bytes / per_primitive))
