"""Analysis helpers: the miss lower bound and policy miss-curve sweeps."""

from repro.analysis.lower_bound import (
    lower_bound_misses,
    lower_bound_ratio,
    primitives_capacity,
)
from repro.analysis.miss_curves import (
    attribute_access_trace,
    policy_miss_ratio,
    suite_miss_curve,
)
from repro.analysis.ascii_plot import ChartSeries, ascii_chart, chart_from_result

__all__ = [
    "ChartSeries",
    "ascii_chart",
    "attribute_access_trace",
    "chart_from_result",
    "lower_bound_misses",
    "lower_bound_ratio",
    "policy_miss_ratio",
    "primitives_capacity",
    "suite_miss_curve",
]
