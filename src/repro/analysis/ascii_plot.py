"""Terminal line charts for miss curves and sweeps.

The experiment CLI renders every figure as a table; for the curve
figures (1, 11-13) a picture is worth a lot of digits.  This renders
multi-series line charts with pure text — no plotting dependency — the
way the library's examples and the ``--plot`` runner flag display them.
"""

from __future__ import annotations

from dataclasses import dataclass

_MARKERS = "ox+*#@%&"


@dataclass(frozen=True)
class ChartSeries:
    name: str
    values: list[float]


def ascii_chart(x_values: list[float], series: list[ChartSeries],
                width: int = 64, height: int = 16,
                y_label: str = "", x_label: str = "") -> str:
    """Render aligned series as a text chart with a legend.

    Every series must have one value per ``x_values`` entry.  The y-axis
    is scaled to the data's min/max with a small margin.
    """
    if not x_values or not series:
        raise ValueError("need at least one x value and one series")
    for entry in series:
        if len(entry.values) != len(x_values):
            raise ValueError(f"series {entry.name!r} length mismatch")

    lo = min(min(s.values) for s in series)
    hi = max(max(s.values) for s in series)
    if hi == lo:
        hi = lo + 1.0
    margin = (hi - lo) * 0.05
    lo -= margin
    hi += margin

    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = min(x_values), max(x_values)
    x_span = (x_hi - x_lo) or 1.0

    def column(x: float) -> int:
        return min(width - 1, int((x - x_lo) / x_span * (width - 1)))

    def row(y: float) -> int:
        return min(height - 1,
                   int((hi - y) / (hi - lo) * (height - 1)))

    for index, entry in enumerate(series):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(x_values, entry.values):
            grid[row(y)][column(x)] = marker

    lines = []
    if y_label:
        lines.append(y_label)
    for r, cells in enumerate(grid):
        if r == 0:
            axis = f"{hi:8.3f} |"
        elif r == height - 1:
            axis = f"{lo:8.3f} |"
        else:
            axis = "         |"
        lines.append(axis + "".join(cells))
    lines.append("         +" + "-" * width)
    lines.append(f"          {x_lo:<10g}{' ' * max(0, width - 22)}{x_hi:>10g}"
                 + (f"  {x_label}" if x_label else ""))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {entry.name}"
        for i, entry in enumerate(series)
    )
    lines.append("          " + legend)
    return "\n".join(lines)


_SHADES = " .:-=+*#%@"


def ascii_heatmap(values: dict, tiles_x: int, tiles_y: int,
                  title: str = "") -> str:
    """Render per-tile values on the screen's tile grid.

    ``values`` maps tile IDs (row-major: ``tile_id = y * tiles_x + x``)
    to numbers; missing tiles render as blank.  Intensity is scaled to
    the data's max with a ten-step shade ramp, densest cell = ``@``.
    """
    if tiles_x <= 0 or tiles_y <= 0:
        raise ValueError("need a positive tile grid")
    numeric = {tile: value for tile, value in values.items()
               if tile is not None and 0 <= tile < tiles_x * tiles_y}
    peak = max(numeric.values(), default=0)
    lines = []
    if title:
        lines.append(title)
    lines.append("+" + "-" * tiles_x + "+")
    for y in range(tiles_y):
        cells = []
        for x in range(tiles_x):
            value = numeric.get(y * tiles_x + x)
            if value is None or peak == 0:
                cells.append(" ")
            else:
                step = int(value / peak * (len(_SHADES) - 1))
                cells.append(_SHADES[max(0, min(step, len(_SHADES) - 1))])
        lines.append("|" + "".join(cells) + "|")
    lines.append("+" + "-" * tiles_x + "+")
    lines.append(f"scale: blank=0 .. @={peak:g}")
    return "\n".join(lines)


def chart_from_result(result, x_column: str,
                      series_columns: list[str] | None = None,
                      **kwargs) -> str:
    """Chart an :class:`~repro.experiments.common.ExperimentResult`.

    Numeric columns only; ``series_columns`` defaults to every column
    except ``x_column``.  Rows with non-numeric cells (e.g. the
    "average" footer) are skipped.
    """
    numeric_rows = [
        row for row in result.rows
        if all(isinstance(cell, (int, float)) for cell in row)
    ]
    if not numeric_rows:
        raise ValueError("no fully numeric rows to chart")
    headers = result.headers
    x_index = headers.index(x_column)
    names = series_columns or [h for h in headers if h != x_column]
    x_values = [row[x_index] for row in numeric_rows]
    series = [
        ChartSeries(name, [row[headers.index(name)] for row in numeric_rows])
        for name in names
    ]
    return ascii_chart(x_values, series, **kwargs)
