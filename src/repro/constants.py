"""Shared simulator-wide constants.

Sentinels that several subsystems must agree on live here so that a
comparison in one module can never drift from the producer in another
(the ``repro.lint`` SIM004 rule enforces that these values are imported
rather than re-declared).
"""

from __future__ import annotations

# "Never used again" comparison rank.  The hardware OPT Number is a
# bounded field (12 bits in the PMD encoding); any software-side
# comparison that needs an effectively-infinite next-use distance uses
# this value.  It must compare greater than every real traversal rank.
NO_NEXT_USE_RANK = 1 << 30

__all__ = ["NO_NEXT_USE_RANK"]
