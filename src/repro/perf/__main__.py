"""``python -m repro.perf`` entry point."""

from repro.perf.profile import main

if __name__ == "__main__":
    raise SystemExit(main())
