"""Performance tooling: profiling harness and reference hot paths.

``python -m repro.perf`` prints a per-phase wall-clock breakdown of the
simulator (workload construction vs. baseline vs. TCOR replay), the
evidence base for hot-path work.  :mod:`repro.perf.reference` preserves
the straightforward pre-tuning implementations of the tuned helpers so
the equivalence suite can assert bit-identical counters forever, not
just at the commit that introduced the tuning.
"""

from repro.perf.profile import (
    PhaseTimer,
    format_breakdown,
    profile_suite,
)

__all__ = ["PhaseTimer", "format_breakdown", "profile_suite"]
