"""Per-phase timing of the simulator core.

Usage::

    python -m repro.perf --benchmarks GTr CCS --scale 0.1
    python -m repro.perf --scale 0.2 --cprofile   # + top functions

For every benchmark the harness times three phases — workload
construction (geometry + tiling trace), the baseline replay, and the
TCOR replay — and prints a fixed-width breakdown with totals.  The
optional cProfile pass aggregates the simulation phases only (workload
construction is dominated by numpy and not a tuning target) and prints
the top functions by cumulative time.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from typing import Iterator

from repro.config import TCORConfig
from repro.experiments.common import TILE_CACHE_SIZES
from repro.tcor.system import simulate_baseline, simulate_tcor
from repro.workloads.suite import BENCHMARK_ORDER, BENCHMARKS, build_workload


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def get(self, name: str) -> float:
        return self.seconds.get(name, 0.0)


def profile_suite(aliases: tuple[str, ...] | None = None,
                  scale: float = 0.2,
                  tile_cache_bytes: int = TILE_CACHE_SIZES["64KiB"],
                  profiler: cProfile.Profile | None = None) -> list[dict]:
    """Time build/baseline/tcor per benchmark; returns one row each.

    ``profiler``, when given, is enabled around the simulation phases
    only so its output is not swamped by workload construction.
    """
    rows = []
    for alias in aliases or BENCHMARK_ORDER:
        timer = PhaseTimer()
        with timer.phase("build"):
            workload = build_workload(BENCHMARKS[alias], scale=scale)
        if profiler is not None:
            profiler.enable()
        with timer.phase("baseline"):
            simulate_baseline(workload, tile_cache_bytes=tile_cache_bytes)
        with timer.phase("tcor"):
            simulate_tcor(workload,
                          tcor=TCORConfig.for_total_size(tile_cache_bytes))
        if profiler is not None:
            profiler.disable()
        rows.append({
            "alias": alias,
            "build_s": timer.get("build"),
            "baseline_s": timer.get("baseline"),
            "tcor_s": timer.get("tcor"),
        })
    return rows


def format_breakdown(rows: list[dict]) -> str:
    """Fixed-width per-benchmark phase table with a totals row."""
    headers = ["bench", "build_s", "baseline_s", "tcor_s", "total_s"]
    table = [headers]
    totals = {"build_s": 0.0, "baseline_s": 0.0, "tcor_s": 0.0}
    for row in rows:
        for key in totals:
            totals[key] += row[key]
        total = row["build_s"] + row["baseline_s"] + row["tcor_s"]
        table.append([row["alias"], f"{row['build_s']:.2f}",
                      f"{row['baseline_s']:.2f}", f"{row['tcor_s']:.2f}",
                      f"{total:.2f}"])
    table.append(["total", f"{totals['build_s']:.2f}",
                  f"{totals['baseline_s']:.2f}", f"{totals['tcor_s']:.2f}",
                  f"{sum(totals.values()):.2f}"])
    widths = [max(len(row[col]) for row in table)
              for col in range(len(headers))]
    lines = ["== simulator phase breakdown =="]
    for index, row in enumerate(table):
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _top_functions(profiler: cProfile.Profile, limit: int = 20) -> str:
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(limit)
    return stream.getvalue()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Per-phase timing of the TCOR simulator core")
    parser.add_argument("--benchmarks", nargs="+", default=None,
                        help="benchmark aliases (default: all 10)")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="geometry scale (1.0 = paper scale)")
    parser.add_argument("--size", choices=sorted(TILE_CACHE_SIZES),
                        default="64KiB", help="tile cache budget")
    parser.add_argument("--cprofile", action="store_true",
                        help="also cProfile the simulation phases")
    args = parser.parse_args(argv)

    aliases = tuple(args.benchmarks) if args.benchmarks else None
    profiler = cProfile.Profile() if args.cprofile else None
    rows = profile_suite(aliases=aliases, scale=args.scale,
                         tile_cache_bytes=TILE_CACHE_SIZES[args.size],
                         profiler=profiler)
    print(format_breakdown(rows))
    print(f"[scale {args.scale}, tile cache {args.size}]")
    if profiler is not None:
        print(_top_functions(profiler))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
