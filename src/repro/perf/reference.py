"""Reference (pre-tuning) implementations of the simulator hot paths.

The tuned helpers in :mod:`repro.tcor.system` hoist allocations and
batch counter updates; these are the straightforward originals, kept as
an executable specification.  ``tests/test_perf_equivalence.py`` swaps
them in for full-system runs and asserts that every
:class:`~repro.tcor.system.SystemResult` counter is bit-identical to
the tuned path across the whole benchmark suite — the gate under which
any future hot-path change must pass.

These functions intentionally mirror the historical code, including the
private ``_evict`` reach-through the public ``evict_matching`` API
replaced (suppressed below, so the lint pass documents rather than
forbids it here).
"""
# The reference path predates the dead_line_drop trace hook and is only
# ever run by the equivalence tests with tracing off; its counter
# mutations deliberately have no hooked caller chain.
# lint: disable-file=SIM102

from __future__ import annotations

from repro.caches.hierarchy import SharedL2
from repro.caches.line import LineMeta
from repro.tcor.l2_policy import TileProgress, line_is_dead
from repro.tcor.requests import L2Request
from repro.workloads.trace import Region

_PB_REGIONS = (Region.PB_LISTS, Region.PB_ATTRIBUTES)


def reference_send(shared: SharedL2,
                   requests: list[L2Request] | tuple[L2Request, ...],
                   counters: dict) -> None:
    """Original ``_send``: one fresh LineMeta and one dict update per
    request."""
    for request in requests:
        meta = LineMeta(region=request.region,
                        last_tile_rank=request.last_tile_rank)
        shared.access(request.address, is_write=request.is_write, meta=meta)
        if request.region in _PB_REGIONS:
            if request.is_write:
                counters["pb_l2_writes"] += 1
            else:
                counters["pb_l2_reads"] += 1


def reference_send_background(shared: SharedL2, accesses) -> None:
    """Original ``_send_background``: allocates a LineMeta per access."""
    for access in accesses:
        shared.access(access.address, is_write=access.is_write,
                      meta=LineMeta(region=access.region))


def reference_writeback_pb_lines(shared: SharedL2,
                                 progress: TileProgress | None) -> None:
    """Original ``_writeback_pb_lines``: snapshot + per-line ``_evict``."""
    l2 = shared.l2
    pb_lines = [
        (set_index, line) for set_index, line in l2.iter_lines()
        if line.meta.region in _PB_REGIONS
    ]
    for set_index, line in pb_lines:
        evicted = l2._evict(set_index, line.tag)  # lint: disable=SIM009
        if not evicted.dirty:
            continue
        if progress is not None and line_is_dead(evicted.meta, progress):
            l2.stats.dead_writebacks_avoided += 1  # lint: disable=SIM010
        else:
            shared.memory.record(is_write=True, region=evicted.meta.region)
