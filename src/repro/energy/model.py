"""Per-access energy model (CACTI-style, 32 nm).

Dynamic energy per access of an SRAM array grows roughly with the square
root of its capacity (bitline/wordline lengths) and mildly with
associativity (parallel tag+data way reads).  DRAM access energy is
dominated by I/O and row activation and is two to three orders of
magnitude above a small SRAM read — which is why the paper's energy wins
track DRAM-traffic reductions so closely.

Anchor points (64-byte transfers, 32 nm, 1 V — the ballpark McPAT/CACTI
report for mobile-class parts):

====================  ==============
32 KiB 4-way SRAM     ~0.045 nJ/read
1 MiB 8-way SRAM      ~0.40 nJ/read
LPDDR main memory     ~25 nJ/access
====================  ==============

Writes cost ~15% more than reads (bitline full-swing).  Leakage is folded
into the per-access constants, the usual simplification when comparing
organizations with identical array inventories.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.config import CacheConfig

KIB = 1024

# Calibration anchor: a 32 KiB, 4-way array costs this many nJ per read.
_SRAM_ANCHOR_KIB = 32.0
_SRAM_ANCHOR_NJ = 0.045
_WRITE_FACTOR = 1.15
_ASSOC_FACTOR = 0.03          # relative cost per extra way beyond 1
_DRAM_ACCESS_NJ = 25.0

# Non-memory (compute) energy anchors used for total-GPU accounting.
_SHADER_INSTRUCTION_NJ = 0.28    # ALU op + operand movement per pixel-inst
_GEOMETRY_PER_PRIMITIVE_NJ = 3.0  # vertex shading + binning arithmetic
_FIXED_FUNCTION_PER_PIXEL_NJ = 0.30   # raster/z/blend per pixel


def sram_read_energy_nj(size_bytes: int, associativity: int = 1) -> float:
    """Dynamic read energy of one access to an SRAM array."""
    if size_bytes <= 0:
        raise ValueError("array size must be positive")
    size_kib = size_bytes / KIB
    scale = math.sqrt(size_kib / _SRAM_ANCHOR_KIB)
    assoc_scale = 1.0 + _ASSOC_FACTOR * max(0, associativity - 4)
    return _SRAM_ANCHOR_NJ * scale * assoc_scale


@dataclass(frozen=True)
class StructureEnergy:
    """Read/write energy of one hardware structure."""

    name: str
    read_nj: float
    write_nj: float

    @classmethod
    def for_sram(cls, name: str, size_bytes: int,
                 associativity: int = 1) -> "StructureEnergy":
        read = sram_read_energy_nj(size_bytes, associativity)
        return cls(name=name, read_nj=read, write_nj=read * _WRITE_FACTOR)

    @property
    def access_nj(self) -> float:
        """Mean cost assuming a typical read-dominated mix."""
        return 0.7 * self.read_nj + 0.3 * self.write_nj


@dataclass
class EnergyModel:
    """Energy costs of every structure in the modelled GPU.

    ``structures`` maps the access-count keys produced by
    :class:`~repro.tcor.system.SystemResult` to per-access energies.
    """

    structures: dict[str, StructureEnergy] = field(default_factory=dict)
    dram_access_nj: float = _DRAM_ACCESS_NJ
    shader_instruction_nj: float = _SHADER_INSTRUCTION_NJ
    geometry_per_primitive_nj: float = _GEOMETRY_PER_PRIMITIVE_NJ
    fixed_function_per_pixel_nj: float = _FIXED_FUNCTION_PER_PIXEL_NJ

    @classmethod
    def default(cls, tile_cache: CacheConfig | None = None,
                attribute_buffer_bytes: int = 48 * KIB) -> "EnergyModel":
        """Costs for the paper's Table I machine.

        Baseline and TCOR structure keys are both present; each system's
        report only consumes the keys it actually touched.
        """
        from repro.config import DEFAULT_GPU, DEFAULT_TCOR

        gpu = DEFAULT_GPU
        tile = tile_cache or gpu.tile_cache
        tcor = DEFAULT_TCOR
        structures = {
            "tile_cache": StructureEnergy.for_sram(
                "tile_cache", tile.size_bytes, tile.associativity),
            "primitive_list_cache": StructureEnergy.for_sram(
                "primitive_list_cache",
                tcor.primitive_list_cache.size_bytes,
                tcor.primitive_list_cache.associativity),
            # The Primitive Buffer is a small tag/pointer array: ~8 bytes
            # of state per line.
            "primitive_buffer": StructureEnergy.for_sram(
                "primitive_buffer",
                max(1024, tcor.primitive_buffer_entries * 8)),
            # The Attribute Buffer moves one 48-byte entry per access.
            "attribute_buffer": StructureEnergy.for_sram(
                "attribute_buffer", attribute_buffer_bytes),
            "texture_l1": StructureEnergy.for_sram(
                "texture_l1", gpu.texture_cache.size_bytes,
                gpu.texture_cache.associativity),
            "vertex_l1": StructureEnergy.for_sram(
                "vertex_l1", gpu.vertex_cache.size_bytes,
                gpu.vertex_cache.associativity),
            "instruction_l1": StructureEnergy.for_sram(
                "instruction_l1", 16 * KIB),
            "l2": StructureEnergy.for_sram(
                "l2", gpu.l2_cache.size_bytes, gpu.l2_cache.associativity),
            # Rendering Elimination's signature table: one 56-bit
            # signature per screen tile plus the comparator.
            "signature_unit": StructureEnergy.for_sram(
                "signature_unit", max(1024, gpu.screen.num_tiles * 8)),
        }
        return cls(structures=structures)

    def access_energy_nj(self, structure: str, accesses: int) -> float:
        if structure == "dram":
            return accesses * self.dram_access_nj
        try:
            entry = self.structures[structure]
        except KeyError:
            raise KeyError(f"no energy entry for structure {structure!r}") \
                from None
        return accesses * entry.access_nj
