"""System-level energy accounting (Figures 20-22).

Memory-hierarchy energy is the per-access cost of every cache and DRAM
access a frame performs; total GPU energy adds the compute side (shader
instructions, geometry processing, fixed-function raster work), which is
identical between baseline and TCOR and therefore dilutes the relative
saving — exactly the paper's ~14% memory-hierarchy vs ~5.5% total-GPU
split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.model import EnergyModel
from repro.tcor.system import SystemResult
from repro.workloads.suite import Workload


@dataclass(frozen=True)
class EnergyReport:
    """Energy of one simulated frame, in nanojoules."""

    label: str
    alias: str
    memory_hierarchy_nj: float
    compute_nj: float
    breakdown: dict

    @property
    def total_gpu_nj(self) -> float:
        return self.memory_hierarchy_nj + self.compute_nj

    @property
    def memory_share(self) -> float:
        return self.memory_hierarchy_nj / self.total_gpu_nj


def memory_hierarchy_energy(result: SystemResult,
                            model: EnergyModel | None = None) -> float:
    """Total nJ spent in caches + DRAM for one simulated configuration."""
    model = model or EnergyModel.default()
    return sum(
        model.access_energy_nj(structure, accesses)
        for structure, accesses in result.structure_accesses.items()
    )


def compute_energy(workload: Workload,
                   model: EnergyModel | None = None,
                   result: SystemResult | None = None) -> float:
    """Non-memory GPU energy (same for every cache organization).

    Pixel-side work (shader instructions, fixed-function raster) is
    charged per *rendered* frame; geometry work is charged for every
    frame, because vertices are shaded and binned during the build
    phase — before Rendering Elimination can discard a tile.  When
    ``result`` carries RE accounting, the discarded tiles' share of
    the pixel work is removed: a skipped tile pays only its signature
    compare (charged on the memory side as ``signature_unit``
    accesses) and zero raster energy.
    """
    model = model or EnergyModel.default()
    spec = workload.spec
    screen = workload.screen
    frames = max(1, len(workload.traces))
    rendered_frames = float(frames)
    if result is not None and result.tiles_total:
        rendered_frames = (frames
                           * (result.tiles_total - result.tiles_skipped)
                           / result.tiles_total)
    pixels = screen.width * screen.height * workload.scale
    shader_nj = (pixels * rendered_frames * spec.shader_insts_per_pixel
                 * model.shader_instruction_nj)
    geometry_nj = (workload.num_primitives * frames
                   * model.geometry_per_primitive_nj)
    fixed_nj = (pixels * rendered_frames
                * model.fixed_function_per_pixel_nj)
    return shader_nj + geometry_nj + fixed_nj


def gpu_energy(result: SystemResult, workload: Workload,
               model: EnergyModel | None = None) -> EnergyReport:
    """Full GPU energy report for one simulated configuration."""
    model = model or EnergyModel.default()
    breakdown = {
        structure: model.access_energy_nj(structure, accesses)
        for structure, accesses in result.structure_accesses.items()
    }
    return EnergyReport(
        label=result.label,
        alias=result.alias,
        memory_hierarchy_nj=sum(breakdown.values()),
        compute_nj=compute_energy(workload, model, result=result),
        breakdown=breakdown,
    )
