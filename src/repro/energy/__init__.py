"""Energy models: per-access costs and system-level accounting.

The paper uses McPAT at 32 nm; we substitute an analytical CACTI-style
model whose constants sit in the published 32 nm ballpark.  The
evaluation's energy deltas are driven by access-count changes (L2 and
DRAM traffic), which the model preserves exactly.
"""

from repro.energy.model import EnergyModel, StructureEnergy
from repro.energy.accounting import (
    EnergyReport,
    gpu_energy,
    memory_hierarchy_energy,
)

__all__ = [
    "EnergyModel",
    "EnergyReport",
    "StructureEnergy",
    "gpu_energy",
    "memory_hierarchy_energy",
]
