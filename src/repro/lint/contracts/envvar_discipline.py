"""SIM304 — environment-variable discipline.

Every ``REPRO_*`` knob is declared once, in :mod:`repro.envvars`,
with its semantics documented next to it.  A raw string literal like
``os.environ.get("REPRO_NO_REPLAY")`` elsewhere re-derives the
contract by hand: a typo silently reads an unset variable (the knob
just never takes effect), and the central table stops being a
complete inventory of the runtime surface.

This rule flags any constant string matching the ``REPRO_[A-Z0-9_]*``
shape outside the declaring module, and — when the table itself is in
the scanned set — names the constant to use instead.  Literals that
merely *mention* a variable inside prose (docstrings, error messages)
do not match: only an exact, whole-string variable name does, and the
approved pattern ``f"{envvars.NO_REPLAY} is set"`` interpolates the
constant rather than spelling the name.

Fix by importing the constant (``os.environ.get(envvars.NO_REPLAY)``)
or, for a genuinely new knob, declaring it in ``repro/envvars.py``
first.  Suppression is not expected to be needed.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.contracts import spec
from repro.lint.core import Violation
from repro.lint.semantic.rules import SemanticRule, register_semantic


@register_semantic
class EnvVarDisciplineRule(SemanticRule):
    code = "SIM304"
    name = "envvar-discipline"
    description = ("raw REPRO_* environment-variable literal outside "
                   "the central repro.envvars table")
    scope = "program"

    def check_program(self, program) -> Iterable[Violation]:
        declared: dict[str, str] = {}
        table = program.modules.get(spec.ENVVARS_MODULE)
        if table is not None:
            for const, value in table["const_tables"].items():
                if isinstance(value, str) and value.startswith("REPRO_"):
                    declared[value] = const
        for module, facts in sorted(program.modules.items()):
            if module == spec.ENVVARS_MODULE:
                continue
            for literal in facts["env_literals"]:
                known = declared.get(literal["name"])
                hint = f"repro.envvars.{known}" if known else \
                    f"a constant declared in {spec.ENVVARS_MODULE}"
                yield self.violation(
                    facts["path"], literal["lineno"], 0,
                    f"raw environment-variable literal "
                    f"`{literal['name']}`; read it through {hint} so "
                    "the knob table stays the complete inventory")
