"""The contract registry the SIM3xx rules enforce.

Everything project-specific about the contract analysis lives here:
which stats classes pair with which cache models (SIM301), where the
metric tables and wire tables are declared (SIM302/SIM303), which
receiver names carry wire payloads, where the env-var and version
constants live (SIM304/SIM305).  The rules in the sibling modules are
generic over this table, so adding a new model, metric namespace or
versioned protocol is a spec edit, not a rule edit.

Waivers are part of the contract: a live counter listed in a model's
``waived_live`` set is *statically* reachable from that model but
*dynamically* dead under every configuration the replay kernels
accept, so its absence from the replay constructor is not drift.
Every waiver must say why.
"""

from __future__ import annotations

# --- SIM301: live <-> replay stats-footprint parity -------------------

#: The shared set-associative core can bypass an access (no evictable
#: candidate / explicit policy bypass), so ``CacheStats.bypasses`` is
#: statically reachable from every cache built on it.  But the tile,
#: primitive-list and L2 configurations never produce a bypass — only
#: the OPT-number policy's write path does, and that policy accounts
#: through ``AttributeCacheStats.write_bypasses`` instead — so the
#: replay kernels rightly never reconstruct it.
_BYPASS_WAIVER = {
    "bypasses": "only the OPT-number attribute policy bypasses; this "
                "model's configurations never take that path",
}

#: model name -> contract.  ``live_modules`` are the entry points whose
#: reachable closure defines the live footprint; ``stats_cls`` is the
#: stats class whose fields the model writes; ``waived_live`` are live
#: fields the replay constructor is excused from (reason attached).
STATS_MODELS = {
    "tile": {
        "stats_cls": "CacheStats",
        "live_modules": ("repro.tcor.baseline_tile_cache",),
        "waived_live": _BYPASS_WAIVER,
    },
    "primitive_list": {
        "stats_cls": "CacheStats",
        "live_modules": ("repro.tcor.primitive_list_cache",),
        "waived_live": _BYPASS_WAIVER,
    },
    "attribute": {
        "stats_cls": "AttributeCacheStats",
        "live_modules": ("repro.tcor.attribute_cache",),
        "waived_live": {},
    },
    "l2": {
        "stats_cls": "CacheStats",
        "live_modules": ("repro.tcor.l2_policy", "repro.caches.hierarchy"),
        "waived_live": _BYPASS_WAIVER,
    },
    "dram": {
        "stats_cls": "MemoryCounters",
        "live_modules": ("repro.caches.hierarchy",),
        "waived_live": {},
    },
    "re": {
        "stats_cls": "REStats",
        "live_modules": ("repro.anim.elimination",),
        "waived_live": {},
    },
}

#: The module holding the replay kernels whose constructor calls are
#: the replay side of the footprint.
REPLAY_MODULE = "repro.replay.kernels"

#: (top-level function in REPLAY_MODULE, stats class) -> model name.
#: A stats-class constructor call in the replay module that this table
#: does not map is itself a SIM301 finding: an unaccounted kernel.
REPLAY_SITES = {
    ("replay_baseline", "CacheStats"): "tile",
    ("replay_tcor", "CacheStats"): "primitive_list",
    ("replay_tcor", "AttributeCacheStats"): "attribute",
    ("_l2_engine", "CacheStats"): "l2",
    ("_l2_engine", "MemoryCounters"): "dram",
    ("_finalize_re", "REStats"): "re",
}

#: Container-mutating method names: a call ``self.<field>.<method>``
#: inside the stats class counts as a write of ``<field>``.
CONTAINER_MUTATORS = ("setdefault", "append", "add", "update",
                      "insert", "extend")

# --- SIM302: metric-name discipline -----------------------------------

#: Where the pre-registered name tables live.
METRICS_MODULE = "repro.serve.metrics"

#: metrics class -> its namespace prefix and the module-level tables
#: declaring its counter/gauge names.  Subclasses inherit membership.
METRIC_NAMESPACES = {
    "ServeMetrics": {
        "prefix": "serve",
        "counters": "COUNTERS",
        "gauges": "GAUGES",
    },
    "ClusterMetrics": {
        "prefix": "serve.cluster",
        "counters": "CLUSTER_COUNTERS",
        "gauges": "CLUSTER_GAUGES",
    },
}

#: Histogram names each namespace registers alongside its tables.
HISTOGRAM_NAMES = ("batch_size", "latency_s")

#: Per-shard forwarding counters are minted dynamically (one per
#: backend name); absolute literals matching these prefixes are
#: legitimate even though no table lists them.
DYNAMIC_METRIC_PREFIXES = ("serve.cluster.shard.",)

#: Absolute metric names must live in one of these namespaces.
ABSOLUTE_PREFIXES = ("live.", "sim.", "serve.", "anim.", "re.")

#: Modules whose metric literals SIM302 checks.
METRIC_MODULE_PREFIXES = ("repro.serve", "repro.obs", "repro.replay",
                          "repro.anim")

#: Receivers of these classes take absolute names; the ``serve.*``
#: subset must be pre-registered.
REGISTRY_CLASSES = ("MetricsRegistry",)

# --- SIM303: wire-schema contract -------------------------------------

WIRE_SCHEMA_MODULE = "repro.serve.schema"
WIRE_FIELDS_TABLE = "WIRE_FIELDS"
WIRE_VERSION_CONST = "SCHEMA_VERSION"
WIRE_SPAN_CONST = "VERSION_COMPAT_SPAN"

#: module -> local receiver names that hold wire payloads there.  A
#: constant string key read/written through one of these receivers must
#: be declared by some schema version within the compat span.
WIRE_READERS = {
    "repro.serve.server": ("payload", "response", "body", "health",
                           "error", "data"),
    "repro.serve.client": ("payload", "response", "error", "data"),
    "repro.serve.cluster": ("payload", "response", "error", "record",
                            "entry", "spec", "body", "data"),
    "repro.serve.schema": ("payload", "data"),
}

#: Modules that originate requests ("op"-keyed dict literals) and the
#: modules whose ``op == "..."`` comparisons constitute handling.
OP_SENDERS = ("repro.serve.client", "repro.serve.cluster")
OP_HANDLERS = ("repro.serve.server",)

# --- SIM304: env-var discipline ---------------------------------------

#: The one module allowed to spell ``REPRO_*`` literals; everything
#: else must read the constants it exports.
ENVVARS_MODULE = "repro.envvars"

# --- SIM305: version-constant discipline ------------------------------

#: version constant -> its home module and the helper functions that
#: may compare it.  Comparing one of these constants anywhere else —
#: or comparing a wire version *field* against a raw int literal —
#: bypasses the negotiated compat span.
VERSION_CONSTANTS = {
    "SCHEMA_VERSION": {
        "module": "repro.serve.schema",
        "helpers": ("versions_compatible",),
    },
    "TRACE_IR_VERSION": {
        "module": "repro.replay.ir",
        "helpers": ("trace_ir_compatible",),
    },
    # The facts format has no compat span at all: the semantic cache is
    # invalidated wholesale by rules_signature(), so nothing anywhere
    # may branch on FACTS_VERSION.
    "FACTS_VERSION": {
        "module": "repro.lint.semantic.model",
        "helpers": (),
    },
}

#: Modules where a dict field named ``v``/``version``/``schema_version``
#: is a protocol version, so comparing it to a raw int is a finding.
#: (Elsewhere those key names may mean something unrelated.)
VERSIONED_MODULE_PREFIXES = ("repro.serve", "repro.replay",
                             "repro.parallel", "repro.lint")


def module_matches(module: str, prefixes) -> bool:
    """True when ``module`` is one of ``prefixes`` or nested under one."""
    return any(module == p or module.startswith(p + ".") for p in prefixes)
