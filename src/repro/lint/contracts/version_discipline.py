"""SIM305 — version-constant discipline.

Version negotiation has exactly one correct implementation per
protocol, and it lives next to the constant: ``versions_compatible``
for the wire schema (which honours ``VERSION_COMPAT_SPAN``),
``trace_ir_compatible`` for the trace IR (exact match — kernels index
arrays positionally), and *nothing* for the facts format (the
semantic cache is invalidated wholesale by ``rules_signature()``).
A raw comparison anywhere else — ``payload["v"] == 2`` or
``meta["version"] == TRACE_IR_VERSION`` inline — freezes today's
number into a call site that the next version bump silently breaks:
the comparison keeps "working", it just starts rejecting (or worse,
accepting) the wrong peers.

Two patterns are findings:

1. a comparison whose one side is a spec'd version constant
   (``spec.VERSION_CONSTANTS``) outside its declared helper function —
   the fix is to call the helper;
2. inside version-bearing modules (``spec.VERSIONED_MODULE_PREFIXES``),
   a comparison of a version-named dict field (``v``/``version``/
   ``schema_version``) against a raw integer literal — the fix is to
   compare against the constant via its helper.

Unspec'd constants (e.g. the lint caches' own format versions, which
are pure invalidation cookies with no compat semantics) are exempt by
construction: they compare key-vs-constant, not key-vs-literal.
Suppress with ``# lint: disable=SIM305`` only for a comparison that is
deliberately version-exact *and* documented as such.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.contracts import spec
from repro.lint.core import Violation
from repro.lint.semantic.rules import SemanticRule, register_semantic


@register_semantic
class VersionDisciplineRule(SemanticRule):
    code = "SIM305"
    name = "version-discipline"
    description = ("version constant compared outside its helper, or a "
                   "version field compared against a raw int literal")
    scope = "program"

    def check_program(self, program) -> Iterable[Violation]:
        for module, facts in sorted(program.modules.items()):
            versioned = spec.module_matches(
                module, spec.VERSIONED_MODULE_PREFIXES)
            path = facts["path"]
            for qual, func in sorted(facts["functions"].items()):
                for compare in func["version_compares"]:
                    yield from self._check_compare(
                        module, path, qual, func, compare, versioned)

    def _check_compare(self, module, path, qual, func, compare,
                       versioned) -> Iterable[Violation]:
        sides = (compare["left"], compare["right"])
        kinds = [side.partition(":")[0] for side in sides]
        values = [side.partition(":")[2] for side in sides]

        for kind, value in zip(kinds, values):
            if kind != "const" or value not in spec.VERSION_CONSTANTS:
                continue
            home = spec.VERSION_CONSTANTS[value]
            allowed = module == home["module"] and (
                func["name"] in home["helpers"] or qual in home["helpers"])
            if allowed:
                continue
            if home["helpers"]:
                fix = (f"route the check through "
                       f"{home['module']}.{home['helpers'][0]}()")
            else:
                fix = (f"{value} has no compat semantics; nothing may "
                       "branch on it")
            yield self.violation(
                path, compare["lineno"], 0,
                f"`{value}` compared directly in `{qual}`; {fix} — an "
                "inline comparison freezes the current number past the "
                "next version bump")

        if versioned and "key" in kinds and "int" in kinds:
            key = values[kinds.index("key")]
            literal = values[kinds.index("int")]
            yield self.violation(
                path, compare["lineno"], 0,
                f"version field `{key}` compared against the raw "
                f"literal {literal} in `{qual}`; compare against the "
                "protocol's constant through its helper so version "
                "bumps stay one-line changes")
