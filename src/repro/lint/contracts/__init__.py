"""Contract analysis: the SIM3xx family (see DESIGN.md §14).

Cross-implementation contracts — live caches vs. replay kernels, metric
producers vs. the registered namespaces, wire speakers vs. the schema
tables — are runtime-checked by equivalence tests, which catch drift
late and only on exercised paths.  This family proves the contracts at
lint time, from the same cached per-module facts the SIM1xx/SIM2xx
passes use:

- SIM301 — live↔replay stats-footprint parity, per cache model;
- SIM302 — metric-name literals resolve against the pre-registered
  ``serve.*`` tables and the ``live.*``/``sim.*`` conventions;
- SIM303 — wire fields read/written by the serve handlers exist in
  some schema version within the compat span; every op a client sends
  has a server handler;
- SIM304 — ``REPRO_*`` environment variables resolve through the
  central ``repro.envvars`` table;
- SIM305 — version constants are compared only via their helper
  functions, never against raw integer literals.

The contracts themselves (model maps, module lists, waivers) live in
:mod:`repro.lint.contracts.spec`; the rules are generic over them.
"""
