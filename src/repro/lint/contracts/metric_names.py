"""SIM302 — metric-name discipline.

Metric names are stringly-typed: ``metrics.count("admited")`` exports
a fresh, permanently-zero series next to the real ``admitted`` counter
and nothing fails.  The serve layer already pre-registers every name
(``repro/serve/metrics.py`` builds its instruments from the
``COUNTERS``/``GAUGES`` tables at construction), so the ground truth
exists; this rule closes the loop by resolving every constant metric
literal against it.

For each ``count``/``gauge``/``histogram`` call with a constant name,
the receiver's class is resolved through the same inference the
SIM1xx rules use (``self`` attributes, annotated parameters, module
globals).  Receivers typed as a metrics namespace class (or a subclass)
take *relative* names, which must appear in that namespace's declared
tables.  Receivers typed as a raw registry take *absolute* names,
which must live under an approved prefix (``live.``/``sim.``/
``serve.``) — and ``serve.*`` names must additionally be
pre-registered, because the serve snapshot machinery only exports
declared instruments.  Unresolvable receivers are only held to the
absolute-prefix convention when the name already looks absolute;
other string literals passed to unrelated ``count`` methods (e.g.
``str.count``) are left alone.

Dynamically-minted families (per-shard forwarding counters) are
declared in ``spec.DYNAMIC_METRIC_PREFIXES``.  Suppress with
``# lint: disable=SIM302`` for intentionally out-of-band names.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.contracts import spec
from repro.lint.core import Violation
from repro.lint.semantic.rules import SemanticRule, register_semantic


@register_semantic
class MetricNameRule(SemanticRule):
    code = "SIM302"
    name = "metric-name-discipline"
    description = ("metric-name literal that is not pre-registered or "
                   "violates the namespace conventions")
    scope = "program"

    def check_program(self, program) -> Iterable[Violation]:
        namespaces, registered, table_findings = \
            self._namespace_tables(program)
        yield from table_findings
        for module, facts in sorted(program.modules.items()):
            if not spec.module_matches(module, spec.METRIC_MODULE_PREFIXES):
                continue
            path = facts["path"]
            for _qual, func in sorted(facts["functions"].items()):
                for metric in func["metric_strings"]:
                    if metric["role"] != "own":
                        continue
                    yield from self._check_literal(
                        program, module, facts, func, metric, path,
                        namespaces, registered)

    # -- table loading -------------------------------------------------
    @staticmethod
    def _namespace_tables(program):
        """(class -> namespace info, registered absolute names, table
        findings).  ``registered`` is None when the metrics module is
        outside the scan (absolute serve.* checks then stay quiet)."""
        findings: list[Violation] = []
        metrics = program.modules.get(spec.METRICS_MODULE)
        if metrics is None:
            return {}, None, findings
        tables = metrics["const_tables"]
        namespaces: dict[str, dict] = {}
        registered: set[str] = set()
        rule = MetricNameRule
        for cls_name, ns in spec.METRIC_NAMESPACES.items():
            counters = tables.get(ns["counters"])
            gauges = tables.get(ns["gauges"])
            if not isinstance(counters, list) or not isinstance(gauges,
                                                                list):
                findings.append(Violation(
                    path=metrics["path"], line=1, col=0, rule=rule.code,
                    message=(f"expected literal name tables "
                             f"`{ns['counters']}`/`{ns['gauges']}` for "
                             f"{cls_name} in {spec.METRICS_MODULE}; "
                             "SIM302 cannot validate metric names "
                             "without them")))
                continue
            names = set(counters) | set(gauges) | set(spec.HISTOGRAM_NAMES)
            namespaces[cls_name] = {"prefix": ns["prefix"], "names": names}
            registered.update(f"{ns['prefix']}.{name}" for name in names)
        return namespaces, registered, findings

    # -- per-literal check ---------------------------------------------
    def _check_literal(self, program, module, facts, func, metric, path,
                       namespaces, registered) -> Iterable[Violation]:
        name = metric["name"]
        call = metric.get("call") or ""
        recv = call.rsplit(".", 1)[0] if "." in call else ""
        cls = self._receiver_class(program, module, facts, func, recv)
        ns = self._namespace_of(program, cls, namespaces)
        if ns is not None:
            if name in ns["names"]:
                return
            yield self.violation(
                path, metric["lineno"], 0,
                f"`{name}` is not a declared {ns['prefix']}.* metric; "
                f"register it in {spec.METRICS_MODULE} or fix the typo "
                "— an unregistered name exports a fresh series the "
                "snapshot machinery never aggregates")
            return
        absolute = cls in spec.REGISTRY_CLASSES \
            or name.startswith(spec.ABSOLUTE_PREFIXES)
        if not absolute:
            return  # unresolved receiver, non-metric-looking name
        if not name.startswith(spec.ABSOLUTE_PREFIXES):
            yield self.violation(
                path, metric["lineno"], 0,
                f"absolute metric name `{name}` is outside the "
                f"{'/'.join(spec.ABSOLUTE_PREFIXES)} namespaces")
            return
        if registered is None or not name.startswith("serve."):
            return  # live./sim. names are owned by Stats.register()
        if name in registered \
                or name.startswith(spec.DYNAMIC_METRIC_PREFIXES):
            return
        yield self.violation(
            path, metric["lineno"], 0,
            f"`{name}` is not pre-registered in {spec.METRICS_MODULE}; "
            "serve.* metrics must come from the declared tables")

    # -- receiver resolution -------------------------------------------
    @staticmethod
    def _receiver_class(program, module, facts, func, recv) -> str | None:
        if not recv:
            return None
        parts = recv.split(".")
        if parts[0] in ("self", "cls"):
            cls = func.get("cls")
            attrs = parts[1:]
        elif parts[0] in func.get("param_annotations", {}):
            cls = func["param_annotations"][parts[0]].split(".")[-1]
            attrs = parts[1:]
        elif parts[0] in facts["module_global_types"]:
            cls = facts["module_global_types"][parts[0]]
            attrs = parts[1:]
        else:
            return None
        for attr in attrs:
            if cls is None:
                return None
            cls = program.attr_type_of(module, cls, attr)
        return cls

    @staticmethod
    def _namespace_of(program, cls, namespaces) -> dict | None:
        """Namespace info for ``cls``, following base classes."""
        seen: set[str] = set()
        frontier = [cls] if cls else []
        while frontier:
            current = frontier.pop()
            if current in seen or current is None:
                continue
            seen.add(current)
            if current in namespaces:
                return namespaces[current]
            for _module, cls_facts in program.classes_named(current):
                frontier.extend(base.split(".")[-1]
                                for base in cls_facts["bases"])
        return None
