"""SIM301 — live↔replay stats-footprint parity.

The replay kernels (DESIGN.md §12) reconstruct each cache model's
``*Stats`` object from raw counter arrays, so equivalence with the
live simulator rests on an unwritten contract: *the set of stats
fields the live model writes is exactly the set the kernel's
constructor call supplies*.  Drift is silent in both directions — a
counter added to the live cache but not the kernel replays as a
structural zero; a kwarg the live model stopped writing makes the
kernel invent history.  The equivalence tests only catch the subset a
workload happens to exercise.

This rule proves the contract statically, per model.  The **live
footprint** is computed from the reachable closure of the model's
entry modules (``spec.STATS_MODELS``): every resolved mutation of the
model's stats class — augmented stores inside the class, container
mutations like ``self.by_region.setdefault``, and typed
``<recv>.stats.<field>`` writes — restricted to the class's declared
fields.  The **replay footprint** is the keyword set of the stats
class's constructor call in ``repro.replay.kernels`` (positional args
are themselves findings: they couple the kernel to field order).  The
two sets must match up to the spec's per-model waivers, each of which
documents why a statically-reachable live counter is dynamically dead.

Findings anchor at the replay constructor so the fix site is in view.
Suppress with ``# lint: disable=SIM301`` only alongside a new waiver
in ``repro.lint.contracts.spec`` explaining the asymmetry.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.contracts import spec
from repro.lint.core import Violation
from repro.lint.semantic.rules import SemanticRule, register_semantic

_CONTAINER_TYPES = ("dict", "list", "set")


@register_semantic
class StatsFootprintParityRule(SemanticRule):
    code = "SIM301"
    name = "stats-footprint-parity"
    description = ("stats field written by a live cache model but absent "
                   "from its replay constructor (or vice versa)")
    scope = "program"

    def check_program(self, program) -> Iterable[Violation]:
        replay = program.modules.get(spec.REPLAY_MODULE)
        if replay is None:
            return  # partial scan: no replay side to diff against
        replay_path = replay["path"]
        stats_classes = {model["stats_cls"]
                         for model in spec.STATS_MODELS.values()}

        # Replay side: constructor calls of the stats classes, grouped
        # by the model the spec maps their site to.
        sites: dict[str, list[dict]] = {}
        for qual, func in sorted(replay["functions"].items()):
            top = qual.split(".")[0]
            for call in func["calls"]:
                leaf = call["name"].split(".")[-1]
                if leaf not in stats_classes:
                    continue
                model = spec.REPLAY_SITES.get((top, leaf))
                if model is None:
                    yield self.violation(
                        replay_path, call["lineno"], call.get("col", 0),
                        f"`{leaf}` constructed in `{qual}` maps to no "
                        "model in contracts.spec.REPLAY_SITES — an "
                        "unaccounted replay kernel escapes the parity "
                        "check")
                    continue
                if call.get("pos"):
                    yield self.violation(
                        replay_path, call["lineno"], call.get("col", 0),
                        f"`{leaf}` for model `{model}` takes positional "
                        "arguments; pass stats fields by keyword so the "
                        "footprint is checkable and field order is free "
                        "to change")
                sites.setdefault(model, []).append(
                    {"lineno": call["lineno"], "col": call.get("col", 0),
                     "cls": leaf, "kwargs": set(call.get("kw", ()))})

        for model_name, model in sorted(spec.STATS_MODELS.items()):
            if any(entry not in program.modules
                   for entry in model["live_modules"]):
                continue  # partial scan: live footprint unprovable
            footprint = self._live_footprint(program, model)
            if footprint is None:
                continue  # stats class not in the scanned set
            valid, live = footprint
            model_sites = sites.get(model_name)
            if not model_sites:
                yield self.violation(
                    replay_path, 1, 0,
                    f"no `{model['stats_cls']}` constructor in the replay "
                    f"kernels maps to model `{model_name}`; the kernel "
                    "no longer reconstructs its stats")
                continue
            waived = set(model["waived_live"])
            for site in model_sites:
                kwargs = site["kwargs"]
                for field in sorted(kwargs - valid):
                    yield self.violation(
                        replay_path, site["lineno"], site["col"],
                        f"replay kernel for model `{model_name}` passes "
                        f"`{field}=`, which is not a declared field of "
                        f"{site['cls']}")
                for field in sorted(live - kwargs - waived):
                    yield self.violation(
                        replay_path, site["lineno"], site["col"],
                        f"model `{model_name}`: live code writes "
                        f"{site['cls']}.{field} but the replay "
                        "constructor never sets it — replay reports a "
                        "structural zero for this counter")
                for field in sorted((kwargs & valid) - live - waived):
                    yield self.violation(
                        replay_path, site["lineno"], site["col"],
                        f"model `{model_name}`: replay constructor sets "
                        f"{site['cls']}.{field} but no reachable live "
                        "mutation writes it — replay invents history "
                        "the live model cannot produce")

    @staticmethod
    def _live_footprint(program, model) -> tuple[set, set] | None:
        """(valid fields, live-written fields) for one model, or None
        when the stats class is outside the scanned set."""
        stats_cls = model["stats_cls"]
        homes = program.classes_named(stats_cls)
        if not homes:
            return None
        valid: set[str] = set()
        containers: set[str] = set()
        for _module, cls in homes:
            valid.update(cls["counter_fields"])
            for field, typed in cls["attr_types"].items():
                if typed in _CONTAINER_TYPES:
                    valid.add(field)
                    containers.add(field)

        closure: set[str] = set()
        for entry in model["live_modules"]:
            for qual in program.modules[entry]["functions"]:
                closure.update(program.reachable_from(f"{entry}:{qual}"))

        written: set[str] = set()
        for fq in sorted(closure):
            func = program.function(fq)
            if func is None:
                continue
            for mutation in func["stats_mutations"]:
                if mutation.get("stats_cls") == stats_cls \
                        and mutation["field"] in valid:
                    written.add(mutation["field"])
            if func.get("cls") != stats_cls:
                continue
            # Inside the stats class itself: plain self.<field> stores
            # (dataclasses have no *Stats-suffix heuristic to rely on)
            # and container mutations (`self.by_region.setdefault`).
            for site in func["attr_write_sites"]:
                if site["recv"] == "self" and not site["self_ctx"] \
                        and site["via"] == "store" \
                        and site["field"] in valid:
                    written.add(site["field"])
            for call in func["calls"]:
                parts = call["name"].split(".")
                if len(parts) == 3 and parts[0] == "self" \
                        and parts[1] in containers \
                        and parts[2] in spec.CONTAINER_MUTATORS:
                    written.add(parts[1])
        return valid, written
