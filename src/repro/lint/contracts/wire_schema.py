"""SIM303 — wire-schema contract.

The serve protocol negotiates a schema version per connection
(``versions_compatible`` with a compat span), but the field names each
side actually reads and writes are plain dict accesses — a server that
reads ``payload["prio"]`` while clients send ``priority`` fails only
at runtime, and only on the path that reads it.  The schema module
declares the ground truth: ``WIRE_FIELDS`` maps each schema version to
the field names it introduces.

This rule checks three things against that table:

1. **Field reads/writes** — every constant string key read or written
   through a wire-payload receiver (the per-module receiver names in
   ``spec.WIRE_READERS``) must be declared by some schema version
   within the compat span of the current ``SCHEMA_VERSION``.  Fields
   of retired versions (outside the span) count as undeclared: the
   code path can never see them from a compatible peer.
2. **Envelope literals** — every key of a dict literal containing an
   ``"op"`` entry (the request/response envelope shape) must likewise
   be declared.
3. **Op parity** — every constant ``op`` a client-side module sends
   must have a matching ``op == "..."`` handler comparison in the
   server.  An op without a handler is a guaranteed ``unknown_op``
   error for every client on the current code.

Receiver names are scoped per module so that unrelated dicts that
happen to share a name elsewhere are not dragged in.  Suppress with
``# lint: disable=SIM303`` for deliberately schema-less payloads
(and say why), or add the field to ``WIRE_FIELDS`` under the version
that introduces it.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.contracts import spec
from repro.lint.core import Violation
from repro.lint.semantic.rules import SemanticRule, register_semantic


@register_semantic
class WireSchemaRule(SemanticRule):
    code = "SIM303"
    name = "wire-schema-contract"
    description = ("wire field not declared by any schema version in the "
                   "compat span, or an op sent with no server handler")
    scope = "program"

    def check_program(self, program) -> Iterable[Violation]:
        schema = program.modules.get(spec.WIRE_SCHEMA_MODULE)
        if schema is None:
            return  # partial scan: no table to check against
        tables = schema["const_tables"]
        wire_fields = tables.get(spec.WIRE_FIELDS_TABLE)
        version = tables.get(spec.WIRE_VERSION_CONST)
        span = tables.get(spec.WIRE_SPAN_CONST)
        if not isinstance(wire_fields, dict) or not isinstance(version, int) \
                or not isinstance(span, int):
            yield self.violation(
                schema["path"], 1, 0,
                f"expected literal `{spec.WIRE_FIELDS_TABLE}`, "
                f"`{spec.WIRE_VERSION_CONST}` and "
                f"`{spec.WIRE_SPAN_CONST}` in {spec.WIRE_SCHEMA_MODULE}; "
                "SIM303 cannot validate wire fields without them")
            return
        allowed: set[str] = set()
        span_versions: list[int] = []
        for raw, names in wire_fields.items():
            declared = int(raw)  # facts round-trip dict keys as strings
            if abs(declared - version) <= span:
                span_versions.append(declared)
                allowed.update(names)
        span_label = ",".join(f"v{v}" for v in sorted(span_versions))

        handlers_scanned = all(module in program.modules
                               for module in spec.OP_HANDLERS)
        ops_handled: set[str] = set()
        for module in spec.OP_HANDLERS:
            facts = program.modules.get(module)
            if facts is None:
                continue
            for func in facts["functions"].values():
                for compare in func["str_compares"]:
                    if compare["name"].split(".")[-1] == "op":
                        ops_handled.add(compare["value"])

        for module, receivers in sorted(spec.WIRE_READERS.items()):
            facts = program.modules.get(module)
            if facts is None:
                continue
            path = facts["path"]
            sender = module in spec.OP_SENDERS
            for _qual, func in sorted(facts["functions"].items()):
                for access in func["str_keys"]:
                    if access["recv"].split(".")[-1] not in receivers:
                        continue
                    if access["key"] in allowed:
                        continue
                    verb = "writes" if access["via"] == "index_store" \
                        else "reads"
                    yield self.violation(
                        path, access["lineno"], 0,
                        f"`{access['recv']}` {verb} wire field "
                        f"`{access['key']}`, which no schema version in "
                        f"the compat span ({span_label}) declares; add "
                        f"it to {spec.WIRE_FIELDS_TABLE} under the "
                        "version that introduces it")
                for envelope in func["dict_ops"]:
                    for key in envelope["keys"]:
                        if key not in allowed:
                            yield self.violation(
                                path, envelope["lineno"], 0,
                                f"envelope literal carries undeclared "
                                f"wire field `{key}` (compat span "
                                f"{span_label})")
                    op = envelope["op"]
                    if sender and handlers_scanned and op is not None \
                            and op not in ops_handled:
                        yield self.violation(
                            path, envelope["lineno"], 0,
                            f"op `{op}` is sent here but no handler in "
                            f"{'/'.join(spec.OP_HANDLERS)} compares "
                            "against it; every request with this op "
                            "fails as unknown_op")
