"""SIM006 — statically illegal cache geometries.

``CacheConfig.__post_init__`` raises at runtime, but a sweep script can
burn an hour of simulation before it reaches the bad configuration.
When a ``CacheConfig(...)`` call site is constant-foldable we replay the
legality checks at lint time, plus the indexing-hardware constraint the
runtime cannot know in isolation: the set count must be a power of two,
because set indices are bit-sliced (modulo) or XOR-folded from the line
address and every Table I geometry obeys it.

``TCORConfig`` sites are checked for a power-of-two Primitive Buffer
associativity and for ``for_total_size`` budgets that cannot cover the
fixed 16 KiB Primitive List Cache.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import (ConstFolder, FileContext, FileRule, Violation,
                             dotted_name, module_int_env, register)

_SEED_ENV = {"KIB": 1024, "MIB": 1024 * 1024,
             "KB": 1000, "MB": 1000 * 1000}

_CACHECONFIG_PARAMS = ("name", "size_bytes", "line_bytes", "associativity",
                       "latency_cycles")
_PL_CACHE_BYTES = 16 * 1024  # fixed split in TCORConfig.for_total_size


def _power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


def _call_args(node: ast.Call, params: tuple[str, ...],
               folder: ConstFolder) -> dict[str, int]:
    """Constant-foldable arguments of a call, by parameter name."""
    folded: dict[str, int] = {}
    for position, arg in enumerate(node.args):
        if position < len(params):
            value = folder.fold(arg)
            if value is not None:
                folded[params[position]] = value
    for keyword in node.keywords:
        if keyword.arg is not None:
            value = folder.fold(keyword.value)
            if value is not None:
                folded[keyword.arg] = value
    return folded


@register
class ConfigLegalityRule(FileRule):
    code = "SIM006"
    name = "config-legality"
    description = ("cache configuration whose literal geometry the "
                   "indexing scheme cannot build")

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        folder = ConstFolder(module_int_env(ctx.tree, _SEED_ENV))
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            tail = name.rsplit(".", 1)[-1]
            if tail == "CacheConfig":
                yield from self._check_cache_config(ctx, node, folder)
            elif tail == "TCORConfig":
                yield from self._check_tcor_config(ctx, node, folder)
            elif name.endswith("for_total_size"):
                yield from self._check_total_size(ctx, node, folder)

    def _check_cache_config(self, ctx: FileContext, node: ast.Call,
                            folder: ConstFolder) -> Iterable[Violation]:
        args = _call_args(node, _CACHECONFIG_PARAMS, folder)
        size = args.get("size_bytes")
        line = args.get("line_bytes", 64)
        ways = args.get("associativity", 4)
        if line is not None and not _power_of_two(line):
            yield self.violation(
                ctx, node,
                f"line size {line} is not a power of two; tag/index "
                "bit-slicing requires it",
            )
            return
        if size is None:
            return  # not foldable at this site; runtime checks remain
        if size <= 0 or size % line:
            yield self.violation(
                ctx, node,
                f"size {size} is not a positive multiple of the "
                f"{line}-byte line",
            )
            return
        lines = size // line
        if ways <= 0 or lines % ways:
            yield self.violation(
                ctx, node,
                f"{lines} lines cannot be split into {ways} ways",
            )
            return
        sets = lines // ways
        if not _power_of_two(sets):
            yield self.violation(
                ctx, node,
                f"{sets} sets is not a power of two; modulo/XOR set "
                "indexing bit-slices the line address (every paper "
                "Table I geometry is power-of-two)",
            )

    def _check_tcor_config(self, ctx: FileContext, node: ast.Call,
                           folder: ConstFolder) -> Iterable[Violation]:
        for keyword in node.keywords:
            if keyword.arg != "primitive_buffer_associativity":
                continue
            ways = folder.fold(keyword.value)
            if ways is not None and not _power_of_two(ways):
                yield self.violation(
                    ctx, node,
                    f"Primitive Buffer associativity {ways} is not a "
                    "power of two",
                )

    def _check_total_size(self, ctx: FileContext, node: ast.Call,
                          folder: ConstFolder) -> Iterable[Violation]:
        if not node.args:
            return
        total = folder.fold(node.args[0])
        if total is not None and total <= _PL_CACHE_BYTES:
            yield self.violation(
                ctx, node,
                f"total Tile Cache budget {total} B cannot exceed the "
                f"fixed {_PL_CACHE_BYTES} B Primitive List Cache",
            )
