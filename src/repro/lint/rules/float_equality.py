"""SIM003 — float equality in timing/energy code.

Cycle and nanojoule totals are accumulated floats; `x == 0.05` style
comparisons flip with summation order and make figures non-portable
across platforms.  Compare against tolerances (``math.isclose``) or
keep the quantity integral (cycles).

Scoped to ``timing/`` and ``energy/`` modules, where accumulated floats
are the rule rather than the exception.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import FileContext, FileRule, Violation, register

_SCOPED_DIRS = ("timing/", "energy/")


def _is_float_constant(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _is_float_constant(node.operand)
    return False


@register
class FloatEqualityRule(FileRule):
    code = "SIM003"
    name = "float-equality"
    description = ("exact float equality comparison in timing/energy "
                   "code; use a tolerance (math.isclose)")

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        if not any(part in ctx.path for part in _SCOPED_DIRS):
            return
        for node in ctx.walk():
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, right in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if any(_is_float_constant(operand) for operand in operands):
                    yield self.violation(
                        ctx, node,
                        "exact equality against a float constant; "
                        "accumulated cycle/energy floats need "
                        "`math.isclose` or an integer representation",
                    )
                    break
