"""SIM004 — re-declared sentinel / cache-geometry literals.

``repro.constants`` is the single source of truth for cross-module
sentinels (the ``NO_NEXT_USE_RANK = 1 << 30`` "never used again" rank).
A second module writing its own ``1 << 30`` compiles fine and then
drifts the first time someone widens the field — OPT comparisons
silently stop agreeing with the Polygon List Builder.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import (ConstFolder, FileContext, FileRule, Violation,
                             register)

# value -> (canonical name, home module)
CANONICAL_SENTINELS = {
    1 << 30: ("NO_NEXT_USE_RANK", "repro.constants"),  # lint: disable=SIM004
}

_HOME_MODULES = ("repro/constants.py",)


def _is_hex_literal(ctx: FileContext, node: ast.Constant) -> bool:
    """Hex/binary/octal literals are address-map constants, not ranks."""
    segment = ast.get_source_segment(ctx.source, node)
    return segment is not None and segment.lstrip("+-").lower().startswith(
        ("0x", "0b", "0o"))


@register
class MagicSentinelRule(FileRule):
    code = "SIM004"
    name = "magic-sentinel"
    description = ("magic sentinel literal duplicated instead of imported "
                   "from repro.constants")

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        if any(ctx.path.endswith(home) for home in _HOME_MODULES):
            return
        folder = ConstFolder()
        for node in ctx.walk():
            value = None
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.LShift):
                value = folder.fold(node)
            elif isinstance(node, ast.Constant) and isinstance(node.value, int) \
                    and not isinstance(node.value, bool) \
                    and not _is_hex_literal(ctx, node):
                value = node.value
            if value in CANONICAL_SENTINELS:
                name, home = CANONICAL_SENTINELS[value]
                yield self.violation(
                    ctx, node,
                    f"literal {value} duplicates the `{name}` sentinel; "
                    f"import it from `{home}` so comparisons cannot drift",
                )
