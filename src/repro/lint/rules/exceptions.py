"""SIM007 — swallowed exceptions in the simulation path.

A bare ``except:`` (or an ``except Exception: pass``) in a simulator
turns an invariant violation — the exact thing the oracle tests exist to
surface — into a silently wrong figure.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import (FileContext, FileRule, Violation, dotted_name,
                             register)

_BROAD = ("Exception", "BaseException")


def _body_is_noop(body: list[ast.stmt]) -> bool:
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) \
                and isinstance(statement.value, ast.Constant):
            continue  # docstring / ellipsis
        if isinstance(statement, ast.Continue):
            continue
        return False
    return True


@register
class SwallowedExceptionRule(FileRule):
    code = "SIM007"
    name = "swallowed-exception"
    description = "bare except / broad exception handler that discards errors"

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ctx.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    ctx, node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt "
                    "and hides simulator invariant failures; catch the "
                    "specific exception",
                )
                continue
            type_name = dotted_name(node.type)
            if type_name in _BROAD and _body_is_noop(node.body):
                yield self.violation(
                    ctx, node,
                    f"`except {type_name}: pass` swallows invariant "
                    "violations; handle or re-raise",
                )
