"""SIM001 — module-global / unseeded RNG use.

A simulator that claims to be an OPT oracle must replay bit-identically:
``random.random()`` (the module-global Mersenne Twister) or
``np.random.rand()`` (the legacy global NumPy state) make results depend
on everything else that ran in the interpreter.  Entropy must flow
through an injected ``random.Random(seed)`` or
``np.random.default_rng(seed)``.

Workload *generator* modules (``workloads/``, ``*generator*.py``) are
the sanctioned entropy seams and are exempt — they still must seed, but
their call sites are reviewed as a unit.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import (FileContext, FileRule, Violation,
                             import_aliases, register, resolve_call)

_GLOBAL_RANDOM_FNS = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
}

_GLOBAL_NUMPY_FNS = {
    "beta", "binomial", "choice", "exponential", "normal", "permutation",
    "poisson", "rand", "randint", "randn", "random", "random_sample",
    "seed", "shuffle", "standard_normal", "uniform",
}

_EXEMPT_PATH_PARTS = ("workloads/",)
_EXEMPT_BASENAME_PART = "generator"


def _is_exempt(path: str) -> bool:
    if any(part in path for part in _EXEMPT_PATH_PARTS):
        return True
    basename = path.rsplit("/", 1)[-1]
    return _EXEMPT_BASENAME_PART in basename


@register
class GlobalRandomRule(FileRule):
    code = "SIM001"
    name = "global-rng"
    description = ("module-global or unseeded RNG use outside the "
                   "workload-generator seams (determinism hazard)")

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        exempt = _is_exempt(ctx.path)
        aliases = import_aliases(ctx.tree)
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call(node, aliases)
            if target is None:
                continue
            # random.seed() reseeds shared global state: never OK, even
            # in the exempt seams.
            if target == "random.seed" or target == "numpy.random.seed":
                yield self.violation(
                    ctx, node,
                    f"`{target}()` mutates interpreter-global RNG state; "
                    "construct a local generator with an explicit seed",
                )
                continue
            if exempt:
                continue
            head, _, fn = target.rpartition(".")
            if head == "random" and fn in _GLOBAL_RANDOM_FNS:
                yield self.violation(
                    ctx, node,
                    f"`random.{fn}()` uses the module-global RNG; inject "
                    "a `random.Random(seed)` instance instead",
                )
            elif head == "numpy.random" and fn in _GLOBAL_NUMPY_FNS:
                yield self.violation(
                    ctx, node,
                    f"`numpy.random.{fn}()` uses the legacy global NumPy "
                    "RNG; use `numpy.random.default_rng(seed)`",
                )
            elif target in ("random.Random", "numpy.random.default_rng") \
                    and not node.args and not node.keywords:
                yield self.violation(
                    ctx, node,
                    f"`{target}()` without a seed draws OS entropy; pass "
                    "an explicit seed so runs are reproducible",
                )
