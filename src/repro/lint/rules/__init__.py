"""Rule catalogue.  Importing this package registers every rule."""

from repro.lint.rules import (  # noqa: F401  (registration side effect)
    config_legality,
    determinism,
    exceptions,
    float_equality,
    magic_literals,
    mutable_defaults,
    printing,
    private_access,
    stats_conservation,
    stats_reach,
)
