"""SIM005 — stats conservation (project-wide rule).

Every counter field of a ``*Stats`` dataclass must be

1. **fed** — stored or incremented somewhere in the tree (a counter
   nothing writes reports a structural zero and silently breaks
   conservation identities like ``evictions == writebacks +
   clean_evictions``), and
2. **surfaced** — readable from the outside: either the class exposes a
   ``report()``/``as_dict()`` method (assumed to flatten every field),
   or the field is attribute-read somewhere in the tree.

The match is by attribute *name*, not by type — a deliberate
over-approximation that keeps the rule single-pass without type
inference.  Same-named counters on two Stats classes therefore vouch
for each other; distinct names per concept keep the check sharp.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import (FileContext, ProjectRule, Violation,
                             dotted_name, register)

_REPORTER_METHODS = {"as_dict", "report", "as_row", "to_dict"}
_COUNTER_ANNOTATIONS = {"int", "float"}


def _dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        if dotted_name(target) in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def _counter_fields(node: ast.ClassDef) -> list[dict]:
    fields = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = statement.annotation
        if not (isinstance(annotation, ast.Name)
                and annotation.id in _COUNTER_ANNOTATIONS):
            continue
        fields.append({"name": statement.target.id,
                       "line": statement.lineno})
    return fields


@register
class StatsConservationRule(ProjectRule):
    code = "SIM005"
    name = "stats-conservation"
    description = ("Stats counter field never incremented, or never "
                   "surfaced by a report()/as_dict() or external read")

    # -- per-file fact collection (cached) -----------------------------
    def collect(self, ctx: FileContext) -> dict:
        classes = []
        stored: set[str] = set()
        loaded: set[str] = set()
        for node in ctx.walk():
            if isinstance(node, ast.ClassDef) \
                    and node.name.endswith("Stats") \
                    and _dataclass_decorated(node):
                methods = {item.name for item in node.body
                           if isinstance(item, ast.FunctionDef)}
                classes.append({
                    "name": node.name,
                    "fields": _counter_fields(node),
                    "has_reporter": bool(methods & _REPORTER_METHODS),
                })
            elif isinstance(node, ast.Attribute):
                if isinstance(node.ctx, ast.Store):
                    stored.add(node.attr)
                elif isinstance(node.ctx, ast.Load):
                    loaded.add(node.attr)
        return {"classes": classes,
                "stored": sorted(stored),
                "loaded": sorted(loaded)}

    # -- whole-project judgement ---------------------------------------
    def finalize(self, facts: dict[str, dict]) -> Iterable[Violation]:
        stored: set[str] = set()
        loaded: set[str] = set()
        for file_facts in facts.values():
            stored.update(file_facts.get("stored", ()))
            loaded.update(file_facts.get("loaded", ()))
        for path, file_facts in sorted(facts.items()):
            for cls in file_facts.get("classes", ()):
                for field in cls["fields"]:
                    name = field["name"]
                    if name not in stored:
                        yield Violation(
                            path=path, line=field["line"], col=0,
                            rule=self.code,
                            message=(f"{cls['name']}.{name} is defined but "
                                     "never incremented anywhere in the "
                                     "tree; the counter reports a "
                                     "structural zero"),
                        )
                    elif not cls["has_reporter"] and name not in loaded:
                        yield Violation(
                            path=path, line=field["line"], col=0,
                            rule=self.code,
                            message=(f"{cls['name']}.{name} is incremented "
                                     "but never surfaced (no "
                                     "report()/as_dict() on the class and "
                                     "no external read)"),
                        )
