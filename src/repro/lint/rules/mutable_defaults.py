"""SIM002 — mutable defaults.

A mutable default argument (or a bare mutable dataclass field default)
is shared across every call/instance: one simulation run's stats leak
into the next, which silently breaks back-to-back experiment sweeps.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import (FileContext, FileRule, Violation, dotted_name,
                             register)

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "deque",
                  "defaultdict", "OrderedDict", "Counter",
                  "collections.deque", "collections.defaultdict",
                  "collections.OrderedDict", "collections.Counter"}


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in _MUTABLE_CALLS
    return False


def _dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = dotted_name(target)
        if name in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


@register
class MutableDefaultRule(FileRule):
    code = "SIM002"
    name = "mutable-default"
    description = ("mutable default argument or dataclass field default "
                   "shared across calls/instances")

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ctx.walk():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)
            elif isinstance(node, ast.ClassDef) and _dataclass_decorated(node):
                yield from self._check_dataclass(ctx, node)

    def _check_function(self, ctx: FileContext,
                        node: ast.FunctionDef) -> Iterable[Violation]:
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults
            if default is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                yield self.violation(
                    ctx, default,
                    f"mutable default in `{node.name}()` is evaluated "
                    "once and shared by every call; default to None or "
                    "copy inside the function",
                )

    def _check_dataclass(self, ctx: FileContext,
                         node: ast.ClassDef) -> Iterable[Violation]:
        for statement in node.body:
            if not isinstance(statement, ast.AnnAssign) \
                    or statement.value is None:
                continue
            value = statement.value
            if isinstance(value, ast.Call):
                name = dotted_name(value.func)
                if name in ("field", "dataclasses.field"):
                    continue  # field(default_factory=...) is the fix
            if _is_mutable_literal(value):
                target = getattr(statement.target, "id", "<field>")
                yield self.violation(
                    ctx, value,
                    f"dataclass field `{target}` has a mutable default "
                    "shared by every instance; use "
                    "`field(default_factory=...)`",
                )
