"""SIM008 — ``print()`` in library code.

Simulator results must flow through the stats/reporting path so they
are machine-checkable; stray prints in library modules corrupt piped
reporter output and hide numbers from conservation checks.  CLI modules
(anything with an ``if __name__ == "__main__"`` guard) and pytest files
are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import FileContext, FileRule, Violation, register


def _is_test_file(path: str) -> bool:
    basename = path.rsplit("/", 1)[-1]
    return basename.startswith("test_") or basename == "conftest.py"


@register
class LibraryPrintRule(FileRule):
    code = "SIM008"
    name = "library-print"
    description = ("print() in library code; route output through the "
                   "stats/reporting path")

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        if _is_test_file(ctx.path) or ctx.has_main_guard():
            return
        for node in ctx.walk():
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                yield self.violation(
                    ctx, node,
                    "print() in library code bypasses the reporting path; "
                    "return data or use the experiment reporters",
                )
