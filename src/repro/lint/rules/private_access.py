"""SIM009 — cross-module reach-through to private attributes.

``l2._evict(...)`` from the system simulator was a latent bug factory:
the callee's invariants (policy bookkeeping, stats accounting) live
behind its public API, and a reach-through silently couples modules to
internals that are free to change.  This rule flags any access to an
underscore-prefixed attribute on an object other than ``self``/``cls``
unless the attribute is defined somewhere in the *same file* (same-
module collaboration between a class and its helpers is conventional
Python).  Intentional exceptions — e.g. the preserved pre-tuning
reference implementation — carry a ``# lint: disable=SIM009``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import FileContext, FileRule, Violation, register

# Stdlib-sanctioned underscore names (namedtuple's public API, enum
# internals) that are not reach-throughs.
_EXEMPT = {"_replace", "_asdict", "_fields", "_field_defaults", "_make",
           "_name_", "_value_"}


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _locally_defined_private(tree: ast.Module) -> set[str]:
    """Private names this file itself defines: methods/functions, class
    attributes, and ``self._x`` assignments anywhere in the file."""
    defined: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if node.name.startswith("_"):
                defined.add(node.name)
        elif isinstance(node, ast.Attribute) \
                and isinstance(node.ctx, ast.Store) \
                and isinstance(node.value, ast.Name) \
                and node.value.id in ("self", "cls"):
            if node.attr.startswith("_"):
                defined.add(node.attr)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and \
                        target.id.startswith("_"):
                    defined.add(target.id)
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name) \
                and node.target.id.startswith("_"):
            defined.add(node.target.id)
    return defined


@register
class PrivateReachThroughRule(FileRule):
    code = "SIM009"
    name = "private-reach-through"
    description = ("access to another object's underscore-prefixed "
                   "attribute; use (or add) a public API")

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        defined = _locally_defined_private(ctx.tree)
        for node in ctx.walk():
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if not attr.startswith("_") or _is_dunder(attr) \
                    or attr in _EXEMPT:
                continue
            receiver = node.value
            if isinstance(receiver, ast.Name) \
                    and receiver.id in ("self", "cls"):
                continue
            if attr in defined:
                continue  # same-module collaboration
            yield self.violation(
                ctx, node,
                f"reach-through to private attribute `{attr}`; expose a "
                "public method on the owning class instead",
            )
