"""SIM010 — mutation of another object's stats counters.

Every counter has exactly one owner: the ``*Stats`` object of the
structure where the event happens.  Code that writes
``l2.stats.dead_writebacks_avoided += 1`` from another module
double-counts the moment the owner also learns to count that event,
and it bypasses the owner's note-methods — which are where the
tracer/registry hook points live, so reach-through writes silently
drop observability events too.

The rule flags any assignment or in-place update whose target is
``<receiver>.stats.<counter>`` where the receiver is not
``self``/``cls``.  Reading a foreign stats counter is fine (reports
do it everywhere); mutating one is not — call a ``note_*`` method on
the owning stats object instead.  Deliberate exceptions (the frozen
pre-tuning reference simulator) carry ``# lint: disable=SIM010``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import FileContext, FileRule, Violation, register


def _foreign_stats_target(node: ast.AST) -> ast.Attribute | None:
    """The ``<recv>.stats.<attr>`` attribute node, if this is one and
    ``recv`` is not ``self``/``cls``."""
    if not isinstance(node, ast.Attribute):
        return None
    owner = node.value
    if not (isinstance(owner, ast.Attribute) and owner.attr == "stats"):
        return None
    receiver = owner.value
    if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
        return None
    return node


@register
class StatsReachThroughRule(FileRule):
    code = "SIM010"
    name = "stats-reach-through"
    description = ("write to another object's stats counter; call a "
                   "note_* method on the owning stats object")

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ctx.walk():
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                hit = _foreign_stats_target(target)
                if hit is None:
                    continue
                yield self.violation(
                    ctx, node,
                    f"mutates `{ast.unparse(hit)}` from outside the "
                    "owning structure; add/call a note_* method on the "
                    "stats object (that is where trace hooks live)",
                )
