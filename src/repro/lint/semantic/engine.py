"""Semantic pass driver: fact extraction, caching, rule dispatch.

Two cache tiers live in one JSON file (``.lint-semantic-cache.json``,
git-ignored, invalidated wholesale when the lint package's own sources
change — same signature discipline as the file-rule cache):

- ``facts``    — per file, keyed by content sha.  Extraction is purely
  intraprocedural, so a file's facts survive any edit elsewhere.
- ``findings`` — per file, keyed by the module's *dependency
  signature* (digest over its transitive project imports).  Editing a
  module invalidates findings only for the module itself and its
  dependents — everything upstream replays.

Program-scope rules (reverse reachability, global cross-checks) are
recomputed every pass from facts; they are cheap once extraction is
cached.  Hit/miss counters for both tiers ride on
:class:`SemanticResult` and are asserted by the warm-cache tests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.core import FileContext, Violation
from repro.lint.semantic.model import (Program, dependency_signatures,
                                       extract_module_facts,
                                       project_imports)
from repro.lint.semantic.rules import semantic_rules

SEMANTIC_CACHE_VERSION = 3
DEFAULT_SEMANTIC_CACHE = ".lint-semantic-cache.json"


@dataclass
class SemanticResult:
    violations: list[Violation] = field(default_factory=list)
    modules_analyzed: int = 0
    facts_from_cache: int = 0
    facts_computed: int = 0
    findings_from_cache: int = 0
    findings_computed: int = 0


class SemanticCache:
    """sha-keyed facts and depsig-keyed findings, best-effort on disk."""

    def __init__(self, cache_file: Path | None, signature: str) -> None:
        self.cache_file = cache_file
        self.signature = signature
        self.facts: dict[str, dict] = {}
        self.findings: dict[str, dict] = {}
        self.dirty = False
        if cache_file is not None and cache_file.is_file():
            try:
                payload = json.loads(cache_file.read_text())
            except (OSError, ValueError):
                payload = {}
            if payload.get("version") == SEMANTIC_CACHE_VERSION \
                    and payload.get("signature") == signature:
                self.facts = payload.get("facts", {})
                self.findings = payload.get("findings", {})

    def get_facts(self, rel: str, sha: str) -> dict | None:
        entry = self.facts.get(rel)
        if entry is not None and entry.get("sha") == sha:
            return entry["facts"]
        return None

    def put_facts(self, rel: str, sha: str, facts: dict) -> None:
        self.facts[rel] = {"sha": sha, "facts": facts}
        self.dirty = True

    def get_findings(self, rel: str, depsig: str) -> list | None:
        entry = self.findings.get(rel)
        if entry is not None and entry.get("depsig") == depsig:
            return entry["violations"]
        return None

    def put_findings(self, rel: str, depsig: str,
                     violations: list) -> None:
        self.findings[rel] = {"depsig": depsig, "violations": violations}
        self.dirty = True

    def save(self) -> None:
        if self.cache_file is None or not self.dirty:
            return
        payload = {"version": SEMANTIC_CACHE_VERSION,
                   "signature": self.signature,
                   "facts": self.facts, "findings": self.findings}
        try:
            self.cache_file.write_text(json.dumps(payload))
        except OSError:
            pass  # caching is best-effort; the pass result is unaffected


def _sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8", "replace")).hexdigest()


def semantic_pass(sources: dict[str, str], *,
                  cache: SemanticCache | None = None,
                  select: set[str] | None = None,
                  ignore: set[str] | None = None) -> SemanticResult:
    """Run the semantic families (SIM1xx + SIM2xx + SIM3xx) over
    ``{rel_path: source}``.

    Files that fail to parse are skipped here — the file pass already
    reported them as PARSE violations.
    """
    result = SemanticResult()
    facts_by_path: dict[str, dict] = {}
    shas: dict[str, str] = {}
    for rel in sorted(sources):
        source = sources[rel]
        sha = _sha(source)
        cached = cache.get_facts(rel, sha) if cache is not None else None
        if cached is not None:
            result.facts_from_cache += 1
            facts_by_path[rel] = cached
            shas[rel] = sha
            continue
        try:
            ctx = FileContext.parse(rel, source)
        except SyntaxError:
            continue
        facts = extract_module_facts(ctx)
        result.facts_computed += 1
        facts_by_path[rel] = facts
        shas[rel] = sha
        if cache is not None:
            cache.put_facts(rel, sha, facts)

    program = Program(facts_by_path)
    result.modules_analyzed = len(facts_by_path)

    module_shas = {facts["module"]: shas[rel]
                   for rel, facts in facts_by_path.items()}
    known = set(module_shas)
    deps = {facts["module"]: project_imports(facts, known)
            for facts in facts_by_path.values()}
    depsigs = dependency_signatures(module_shas, deps)

    rules = semantic_rules()
    if select:
        rules = [rule for rule in rules if rule.code in select]
    if ignore:
        rules = [rule for rule in rules if rule.code not in ignore]
    module_rules = [rule for rule in rules if rule.scope == "module"]
    program_rules = [rule for rule in rules if rule.scope == "program"]
    # A filtered run must not poison the findings cache.
    findings_cache = cache if cache is not None and not select \
        and not ignore else None

    for rel, facts in sorted(facts_by_path.items()):
        depsig = depsigs[facts["module"]]
        cached_findings = findings_cache.get_findings(rel, depsig) \
            if findings_cache is not None else None
        if cached_findings is not None:
            result.findings_from_cache += 1
            result.violations.extend(
                Violation(path=path, line=line, col=col, rule=rule,
                          message=message)
                for rule, path, line, col, message in cached_findings)
            continue
        module_violations: list[Violation] = []
        for rule in module_rules:
            module_violations.extend(
                rule.check_module(program, facts["module"]))
        result.findings_computed += 1
        result.violations.extend(module_violations)
        if findings_cache is not None:
            findings_cache.put_findings(rel, depsig, [
                [v.rule, v.path, v.line, v.col, v.message]
                for v in module_violations])

    for rule in program_rules:
        result.violations.extend(rule.check_program(program))

    if cache is not None:
        cache.save()
    result.violations.sort()
    return result
