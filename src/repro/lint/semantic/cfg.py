"""Per-function control-flow graphs.

A :class:`CFG` is a set of basic blocks over a function body's
*statements* (expressions never split a block).  The builder covers the
full statement grammar the simulator uses: ``if``/``elif``,
``while``/``else`` and ``for``/``else`` with ``break``/``continue``,
``try``/``except``/``else``/``finally``, ``with``, ``match``, and
early ``return``/``raise`` exits.  Comprehensions are expressions and
stay inside their statement's block — their binding behaviour is the
dataflow pass's concern, not the CFG's.

Exception edges use the standard conservative approximation: every
block inside a ``try`` body gets an edge to every handler's entry, so a
definition made before the raise point correctly reaches the handler
while one made after it does not necessarily.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class Block:
    """One basic block: a maximal straight-line statement run."""

    bid: int
    stmts: list[ast.stmt] = field(default_factory=list)
    succs: set[int] = field(default_factory=set)

    def __repr__(self) -> str:  # compact, test-friendly
        kinds = ",".join(type(s).__name__ for s in self.stmts)
        return f"Block({self.bid}:[{kinds}]->{sorted(self.succs)})"


class CFG:
    """Blocks, entry/exit ids, and a statement -> block index."""

    def __init__(self) -> None:
        self.blocks: dict[int, Block] = {}
        self.entry: int = self._new_block().bid
        self.exit: int = self._new_block().bid
        self.block_of_stmt: dict[int, int] = {}  # id(stmt) -> bid

    def _new_block(self) -> Block:
        block = Block(bid=len(self.blocks))
        self.blocks[block.bid] = block
        return block

    def preds(self, bid: int) -> list[int]:
        return [b.bid for b in self.blocks.values() if bid in b.succs]

    def reachable(self) -> set[int]:
        seen: set[int] = set()
        frontier = [self.entry]
        while frontier:
            bid = frontier.pop()
            if bid in seen:
                continue
            seen.add(bid)
            frontier.extend(self.blocks[bid].succs)
        return seen


_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


class _Builder:
    """Recursive-descent CFG construction with loop/finally frames."""

    def __init__(self) -> None:
        self.cfg = CFG()
        # (break target bid, continue target bid) per enclosing loop.
        self.loops: list[tuple[int, int]] = []
        # Entry bids of handlers of every enclosing try (exception edges).
        self.handler_entries: list[list[int]] = []

    # -- plumbing ------------------------------------------------------
    def _block(self) -> Block:
        return self.cfg._new_block()

    def _link(self, src: int, dst: int) -> None:
        self.cfg.blocks[src].succs.add(dst)

    def _place(self, stmt: ast.stmt, bid: int) -> None:
        self.cfg.blocks[bid].stmts.append(stmt)
        self.cfg.block_of_stmt[id(stmt)] = bid
        # A raise anywhere inside a try body may transfer to a handler.
        for entries in self.handler_entries:
            for handler_bid in entries:
                self._link(bid, handler_bid)

    # -- statement sequences -------------------------------------------
    def seq(self, stmts: list[ast.stmt], current: int) -> int:
        """Emit a statement list starting in block ``current``; returns
        the block control falls out of (a fresh dead block after a
        terminator)."""
        for stmt in stmts:
            current = self.stmt(stmt, current)
        return current

    def stmt(self, stmt: ast.stmt, current: int) -> int:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._place(stmt, current)
            return self.seq(stmt.body, current)

        self._place(stmt, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._link(current, self.cfg.exit)
            return self._block().bid  # unreachable continuation
        if isinstance(stmt, ast.Break):
            if self.loops:
                self._link(current, self.loops[-1][0])
            return self._block().bid
        if isinstance(stmt, ast.Continue):
            if self.loops:
                self._link(current, self.loops[-1][1])
            return self._block().bid
        return current

    # -- control statements --------------------------------------------
    def _if(self, stmt: ast.If, current: int) -> int:
        self._place(stmt, current)  # the test evaluates in `current`
        join = self._block().bid
        then_entry = self._block().bid
        self._link(current, then_entry)
        self._link(self.seq(stmt.body, then_entry), join)
        if stmt.orelse:
            else_entry = self._block().bid
            self._link(current, else_entry)
            self._link(self.seq(stmt.orelse, else_entry), join)
        else:
            self._link(current, join)
        return join

    def _loop(self, stmt: ast.While | ast.For | ast.AsyncFor,
              current: int) -> int:
        header = self._block().bid
        self._link(current, header)
        self._place(stmt, header)  # test / iter evaluates in the header
        after = self._block().bid
        body_entry = self._block().bid
        self._link(header, body_entry)
        self.loops.append((after, header))
        body_exit = self.seq(stmt.body, body_entry)
        self.loops.pop()
        self._link(body_exit, header)  # back edge
        if stmt.orelse:
            # `else` runs on normal loop exhaustion; `break` skips it.
            else_entry = self._block().bid
            self._link(header, else_entry)
            self._link(self.seq(stmt.orelse, else_entry), after)
        else:
            self._link(header, after)
        return after

    def _try(self, stmt: ast.Try, current: int) -> int:
        after = self._block().bid
        handler_entries = [self._block().bid for _ in stmt.handlers]
        self.handler_entries.append(handler_entries)
        body_exit = self.seq(stmt.body, current)
        self.handler_entries.pop()
        # The try statement itself anchors to its first body block.
        self.cfg.block_of_stmt.setdefault(id(stmt), current)

        exits = []
        if stmt.orelse:
            else_entry = self._block().bid
            self._link(body_exit, else_entry)
            exits.append(self.seq(stmt.orelse, else_entry))
        else:
            exits.append(body_exit)
        for handler, entry in zip(stmt.handlers, handler_entries):
            self._place(handler, entry)  # `except E as e:` binds here
            exits.append(self.seq(handler.body, entry))

        if stmt.finalbody:
            final_entry = self._block().bid
            for exit_bid in exits:
                self._link(exit_bid, final_entry)
            # An unhandled exception also reaches finally, then leaves.
            self._link(body_exit, final_entry)
            final_exit = self.seq(stmt.finalbody, final_entry)
            self._link(final_exit, self.cfg.exit)
            self._link(final_exit, after)
            return after
        for exit_bid in exits:
            self._link(exit_bid, after)
        return after

    def _match(self, stmt: ast.Match, current: int) -> int:
        self._place(stmt, current)  # the subject evaluates in `current`
        after = self._block().bid
        fallthrough = True
        for case in stmt.cases:
            case_entry = self._block().bid
            self._link(current, case_entry)
            self._link(self.seq(case.body, case_entry), after)
            if _is_irrefutable(case.pattern) and case.guard is None:
                fallthrough = False
                break
        if fallthrough:  # no case may match at all
            self._link(current, after)
        return after


def _is_irrefutable(pattern: ast.pattern) -> bool:
    return isinstance(pattern, ast.MatchAs) and pattern.pattern is None


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """The CFG of one function body (nested defs are single statements
    in the enclosing graph — each gets its own CFG when analysed)."""
    builder = _Builder()
    body_entry = builder._block().bid
    builder._link(builder.cfg.entry, body_entry)
    final = builder.seq(func.body, body_entry)
    builder._link(final, builder.cfg.exit)
    return builder.cfg
