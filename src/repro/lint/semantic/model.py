"""Project model: per-module facts, symbol table, call graph.

Extraction (:func:`extract_module_facts`) is purely intraprocedural —
one file in, one JSON-serializable fact dict out — which is what makes
facts cacheable by file content hash.  Everything cross-module (name
resolution, the call graph, reverse reachability) lives in
:class:`Program`, rebuilt from facts on every pass; rules never touch
an AST directly.

Dependency signatures (:func:`dependency_signatures`) digest a module's
transitive project imports, so cached per-module *findings* invalidate
exactly when the module or something it (transitively) imports changed.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re

from repro.lint.concurrency import facts as concurrency
from repro.lint.core import FileContext, dotted_name, import_aliases
from repro.lint.semantic.dataflow import FunctionDataflow

FACTS_VERSION = 6

# Environment-variable discipline (SIM304): a string constant that *is*
# a knob name, as opposed to prose mentioning one — hence fullmatch.
_ENV_VAR_RE = re.compile(r"REPRO_[A-Z][A-Z0-9_]*")

# Dict keys that carry a wire-schema version (SIM305).
_VERSION_KEYS = ("v", "version", "schema_version")

# Method leaves that count as an obs.trace hook carrier (the Tracer's
# simulator-facing surface) plus the ACTIVE global itself.
TRACE_HOOK_METHODS = frozenset({
    "cache_access", "eviction", "opt_decision", "dead_line_drop",
    "memory_traffic", "dram_access", "tile_done", "set_tile",
})
_POOL_ORIGINS = ("call:concurrent.futures.ProcessPoolExecutor",
                 "call:ProcessPoolExecutor")
_REPORTER_METHODS = {"as_dict", "report", "as_row", "to_dict"}


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a repo-relative posix path."""
    name = rel_path[:-3] if rel_path.endswith(".py") else rel_path
    for prefix in ("src/",):
        if name.startswith(prefix):
            name = name[len(prefix):]
    parts = [part for part in name.split("/") if part]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or rel_path


def _is_config_class(name: str | None) -> bool:
    return bool(name) and name.endswith("Config")


def _config_like_origin(origin: str,
                        attr_types: dict[str, str],
                        param_annotations: dict[str, str]) -> str | None:
    """The config class name an origin descriptor points at, if any."""
    kind, _, payload = origin.partition(":")
    leaf = payload.split(".")[-1] if payload else ""
    if kind == "call":
        for part in payload.split("."):
            if _is_config_class(part):
                return part
    elif kind == "param":
        annotation = param_annotations.get(payload, "")
        if _is_config_class(annotation.split(".")[-1]):
            return annotation.split(".")[-1]
    elif kind == "attr":
        typed = attr_types.get(payload, "")
        if _is_config_class(typed):
            return typed
    elif kind in ("const", "free") and _is_config_class(leaf):
        return leaf
    return None


def _annotation_name(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.BinOp):  # "TCORConfig | None"
        left = _annotation_name(node.left)
        return left or _annotation_name(node.right)
    if isinstance(node, ast.Subscript):  # Optional[TCORConfig]
        return _annotation_name(node.slice)
    return dotted_name(node)


def _literal_value(node: ast.expr) -> tuple[bool, object]:
    """(ok, JSON-safe value) of a pure-literal expression.

    Tuples/sets become lists and dict keys become strings, so a value
    round-trips unchanged through the JSON fact cache — byte-stable
    warm reruns depend on that.
    """
    if isinstance(node, ast.Constant):
        value = node.value
        if value is None or isinstance(value, (str, int, float, bool)):
            return True, value
        return False, None
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        items = []
        for element in node.elts:
            ok, value = _literal_value(element)
            if not ok:
                return False, None
            items.append(value)
        return True, items
    if isinstance(node, ast.Dict):
        table = {}
        for key, value_node in zip(node.keys, node.values):
            if not isinstance(key, ast.Constant):
                return False, None
            ok, value = _literal_value(value_node)
            if not ok:
                return False, None
            table[str(key.value)] = value
        return True, table
    return False, None


def _version_side(expr: ast.expr) -> str:
    """Descriptor of one comparison operand for SIM305: ``int:<n>`` for
    an integer literal, ``key:<k>`` for a versionish dict access,
    ``const:<NAME>`` for a ``*VERSION`` constant, else ``expr``."""
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, int) and not isinstance(expr.value, bool):
            return f"int:{expr.value}"
        return "expr"
    if isinstance(expr, ast.Call):
        raw = dotted_name(expr.func)
        if raw == "int" and expr.args:
            return _version_side(expr.args[0])
        if raw and raw.split(".")[-1] == "get" and expr.args \
                and isinstance(expr.args[0], ast.Constant) \
                and expr.args[0].value in _VERSION_KEYS:
            return f"key:{expr.args[0].value}"
        return "expr"
    if isinstance(expr, ast.Subscript) \
            and isinstance(expr.slice, ast.Constant) \
            and expr.slice.value in _VERSION_KEYS:
        return f"key:{expr.slice.value}"
    name = dotted_name(expr)
    if name and name.split(".")[-1].endswith("VERSION"):
        return f"const:{name.split('.')[-1]}"
    return "expr"


def _literal_strings(node: ast.expr) -> list[str]:
    """String literals in a (possibly nested) literal container."""
    found: list[str] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Constant) and isinstance(child.value, str):
            found.append(child.value)
    return found


class _FunctionExtractor:
    """Summarizes one function body with its dataflow solution."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef,
                 qual: str, cls: dict | None, aliases: dict[str, str],
                 module_function_names: set[str], nested: bool,
                 module_locks: dict[str, str] | None = None) -> None:
        self.func = func
        self.qual = qual
        self.cls = cls
        self.aliases = aliases
        self.module_function_names = module_function_names
        self.nested = nested
        self.module_locks = module_locks or {}
        self.flow = FunctionDataflow(func, aliases)
        self._parents: dict[int, ast.AST] = {}
        for node in self._own_nodes():
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node

    # -- helpers -------------------------------------------------------
    def _own_nodes(self):
        """Nodes of this function's body, nested defs excluded.

        A nested def is yielded (so the parent sees the binding) but
        never entered: its body belongs to its own extractor, and
        counting it here too would double every fact inside it.
        """
        stack = list(self.func.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef, ast.Lambda)):
                continue
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                stack.append(child)

    def _enclosing_stmt(self, node: ast.AST) -> ast.stmt | None:
        # Origins only need *a* statement in the right block; the CFG
        # indexes statements by identity, so walk the block map.
        lineno = getattr(node, "lineno", None)
        if lineno is None:
            return None
        best = None
        for block in self.flow.cfg.blocks.values():
            for stmt in block.stmts:
                if getattr(stmt, "lineno", -1) <= lineno \
                        <= getattr(stmt, "end_lineno", -1):
                    best = stmt
        return best

    def _origins(self, expr: ast.expr, near: ast.AST) -> set[str]:
        return self.flow.origin_of_expr(expr, self._enclosing_stmt(near))

    # -- the summary ---------------------------------------------------
    def summarize(self) -> dict:
        func = self.func
        param_annotations = {}
        for arg in (list(func.args.posonlyargs) + list(func.args.args)
                    + list(func.args.kwonlyargs)):
            annotation = _annotation_name(arg.annotation)
            if annotation:
                param_annotations[arg.arg] = annotation

        calls: list[dict] = []
        global_writes: list[dict] = []
        module_attr_writes: list[dict] = []
        submits: list[dict] = []
        attr_write_sites: list[dict] = []
        stats_mutations: list[dict] = []
        metric_strings: list[dict] = []
        str_keys: list[dict] = []
        dict_ops: list[dict] = []
        str_compares: list[dict] = []
        version_compares: list[dict] = []
        task_spawns: list[dict] = []
        dispatches: list[dict] = []
        trace_hook = False
        is_generator = False
        declared_globals = {
            name for node in self._own_nodes()
            if isinstance(node, ast.Global) for name in node.names}

        cls_name = self.cls["name"] if self.cls else None
        attr_types = self.cls["attr_types"] if self.cls else {}
        in_stats_class = bool(cls_name) and cls_name.endswith("Stats")
        init_like = func.name in ("__init__", "__post_init__")
        local_sym = self._local_symbolic_bindings()

        for node in self._own_nodes():
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.ctx, ast.Load) \
                    and node.attr == "ACTIVE":
                trace_hook = True
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                is_generator = True

            if isinstance(node, ast.Subscript) \
                    and isinstance(node.slice, ast.Constant) \
                    and isinstance(node.slice.value, str):
                recv = dotted_name(node.value)
                if recv:
                    str_keys.append({
                        "recv": recv, "key": node.slice.value,
                        "lineno": node.lineno,
                        "via": "index" if isinstance(node.ctx, ast.Load)
                        else "index_store"})

            if isinstance(node, ast.Dict):
                keys = [key.value for key in node.keys
                        if isinstance(key, ast.Constant)
                        and isinstance(key.value, str)]
                if "op" in keys:  # a wire envelope literal
                    op_value = None
                    for key, value in zip(node.keys, node.values):
                        if isinstance(key, ast.Constant) \
                                and key.value == "op" \
                                and isinstance(value, ast.Constant) \
                                and isinstance(value.value, str):
                            op_value = value.value
                    dict_ops.append({"keys": keys, "op": op_value,
                                     "lineno": node.lineno})

            if isinstance(node, ast.Compare) and len(node.ops) == 1:
                sides = (node.left, node.comparators[0])
                if isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
                    for this, other in (sides, sides[::-1]):
                        if isinstance(other, ast.Constant) \
                                and isinstance(other.value, str):
                            name = dotted_name(this)
                            if name:
                                str_compares.append(
                                    {"name": name, "value": other.value,
                                     "lineno": node.lineno})
                left = _version_side(node.left)
                right = _version_side(node.comparators[0])
                if left.partition(":")[0] in ("key", "const") \
                        or right.partition(":")[0] in ("key", "const"):
                    version_compares.append(
                        {"left": left, "right": right,
                         "lineno": node.lineno})

            if isinstance(node, ast.Call):
                raw = dotted_name(node.func)
                if raw is not None:
                    head, _, tail = raw.partition(".")
                    recorded = raw
                    if head in local_sym:
                        # l2 = shared.l2; l2.stats.m() records as
                        # shared.l2.stats.m so chains resolve.
                        recorded = f"{local_sym[head]}.{tail}" if tail \
                            else local_sym[head]
                    entry: dict = {"name": recorded, "lineno": node.lineno,
                                   "col": node.col_offset}
                    if node.args:
                        entry["pos"] = [
                            "|".join(sorted(self._origins(arg, node)))
                            for arg in node.args[:8]]
                    if node.keywords:
                        entry["kw"] = {
                            kw.arg: "|".join(sorted(self._origins(kw.value,
                                                                  node)))
                            for kw in node.keywords if kw.arg}
                    parent = self._parents.get(id(node))
                    if isinstance(parent, ast.Await):
                        entry["awaited"] = True
                    elif isinstance(parent, ast.Expr):
                        entry["discarded"] = True
                    calls.append(entry)
                    leaf = raw.split(".")[-1]
                    if leaf == "result" and "." in raw:
                        entry["recv"] = sorted(
                            self._origins(node.func.value, node))
                    spawn = concurrency.spawn_entry(
                        node, raw, self.aliases, self._parents)
                    if spawn is not None:
                        task_spawns.append(spawn)
                    dispatch = concurrency.dispatch_entry(
                        node, raw, self.aliases, self._origins)
                    if dispatch is not None:
                        dispatches.append(dispatch)
                    if leaf in TRACE_HOOK_METHODS:
                        trace_hook = True
                    if leaf in ("submit", "map") and "." in raw:
                        self._maybe_submit(node, raw, submits)
                    if leaf == "expect_sum":
                        for arg in node.args[1:3]:
                            for name in _literal_strings(arg):
                                metric_strings.append(
                                    {"name": name, "lineno": node.lineno,
                                     "role": "expect"})
                    if leaf in ("count", "gauge", "histogram") \
                            and node.args \
                            and isinstance(node.args[0], ast.Constant) \
                            and isinstance(node.args[0].value, str):
                        metric_strings.append(
                            {"name": node.args[0].value,
                             "lineno": node.lineno, "role": "own",
                             "call": recorded})
                    if leaf in ("get", "pop", "setdefault") \
                            and "." in recorded and node.args \
                            and isinstance(node.args[0], ast.Constant) \
                            and isinstance(node.args[0].value, str):
                        str_keys.append(
                            {"recv": recorded.rsplit(".", 1)[0],
                             "key": node.args[0].value,
                             "lineno": node.lineno, "via": leaf})
                    if leaf == "setattr" and raw == "setattr" \
                            and len(node.args) >= 2:
                        attr_write_sites.append(self._attr_site(
                            node.args[0], "<setattr>", node, "setattr",
                            init_like, cls_name))
                    if raw == "object.__setattr__" and len(node.args) >= 2:
                        site = self._attr_site(
                            node.args[0], "<object.__setattr__>", node,
                            "object_setattr", init_like, cls_name)
                        attr_write_sites.append(site)

            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                self._classify_store(node, target, declared_globals,
                                     global_writes, module_attr_writes,
                                     attr_write_sites, stats_mutations,
                                     in_stats_class, init_like, cls_name,
                                     attr_types)

        for spawn in task_spawns:
            if spawn["sink"] == "local" and spawn.get("target"):
                spawn["uses"] = sum(
                    1 for node in self._own_nodes()
                    if isinstance(node, ast.Name)
                    and node.id == spawn["target"]
                    and isinstance(node.ctx, ast.Load))

        summary = {
            "qual": self.qual,
            "name": func.name,
            "lineno": func.lineno,
            "cls": cls_name,
            "nested": self.nested,
            "is_async": isinstance(func, ast.AsyncFunctionDef),
            "is_generator": is_generator,
            "params": self.flow.params,
            "param_annotations": param_annotations,
            "decorators": [dotted_name(d.func if isinstance(d, ast.Call)
                                       else d) or "?"
                           for d in func.decorator_list],
            "calls": calls,
            "global_writes": global_writes,
            "module_attr_writes": module_attr_writes,
            "submits": submits,
            "task_spawns": task_spawns,
            "dispatches": dispatches,
            "attr_write_sites": attr_write_sites,
            "stats_mutations": stats_mutations,
            "metric_strings": metric_strings,
            "str_keys": str_keys,
            "dict_ops": dict_ops,
            "str_compares": str_compares,
            "version_compares": version_compares,
            "trace_hook": trace_hook,
        }
        if summary["is_async"]:
            lock_attrs = self.cls.get("lock_types", {}) if self.cls \
                else {}
            summary["async"] = concurrency.async_summary(
                func, self.flow.cfg, lock_attrs, self.module_locks)
        return summary

    def _local_symbolic_bindings(self) -> dict[str, str]:
        """Single-assignment locals bound to a self/param attribute chain
        (``l2 = shared.l2``), as dotted chains for call resolution."""
        roots = set(self.flow.params) | {"self", "cls"}
        store_counts: dict[str, int] = {}
        candidates: dict[str, str] = {}
        for node in self._own_nodes():
            if isinstance(node, ast.Name) and isinstance(node.ctx,
                                                         ast.Store):
                store_counts[node.id] = store_counts.get(node.id, 0) + 1
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and isinstance(node.value, ast.Attribute):
                dotted = dotted_name(node.value)
                if dotted and dotted.split(".")[0] in roots:
                    candidates[node.targets[0].id] = dotted
        return {name: chain for name, chain in candidates.items()
                if store_counts.get(name) == 1 and name not in roots}

    def _maybe_submit(self, node: ast.Call, raw: str,
                      submits: list[dict]) -> None:
        receiver = raw.rsplit(".", 1)[0]
        origins = self.flow.origins_of_name(receiver.split(".")[0],
                                            self._enclosing_stmt(node))
        if not any(origin in _POOL_ORIGINS for origin in origins):
            return
        if not node.args:
            return
        fn = node.args[0]
        entry = {"lineno": node.lineno, "col": node.col_offset,
                 "method": raw.split(".")[-1], "target": None,
                 "kind": "other"}
        if isinstance(fn, ast.Lambda):
            entry["kind"] = "lambda"
        elif isinstance(fn, ast.Name):
            entry["target"] = fn.id
            fn_origins = self.flow.origins_of_name(
                fn.id, self._enclosing_stmt(node))
            if any(origin == "bind:def" for origin in fn_origins):
                entry["kind"] = "nested"
            else:
                entry["kind"] = "name"
        elif isinstance(fn, ast.Attribute):
            entry["kind"] = "attr"
            entry["target"] = dotted_name(fn)
        submits.append(entry)

    def _attr_site(self, receiver: ast.expr, field: str, node: ast.AST,
                   via: str, init_like: bool, cls_name: str | None) -> dict:
        origins = sorted(self._origins(receiver, node))
        is_self = isinstance(receiver, ast.Name) and receiver.id == "self"
        return {"field": field, "lineno": node.lineno,
                "col": getattr(node, "col_offset", 0), "via": via,
                "recv_origins": origins,
                "recv": dotted_name(receiver) or "?",
                "self_ctx": bool(is_self and init_like),
                "cls": cls_name}

    def _classify_store(self, stmt: ast.AST, target: ast.expr,
                        declared_globals: set[str],
                        global_writes: list[dict],
                        module_attr_writes: list[dict],
                        attr_write_sites: list[dict],
                        stats_mutations: list[dict],
                        in_stats_class: bool, init_like: bool,
                        cls_name: str | None,
                        attr_types: dict[str, str]) -> None:
        if isinstance(target, ast.Name):
            if target.id in declared_globals:
                global_writes.append({"name": target.id,
                                      "lineno": stmt.lineno})
            return
        if isinstance(target, ast.Subscript):
            # x.__dict__["f"] = v  /  vars(x)["f"] = v
            base = target.value
            if isinstance(base, ast.Attribute) and base.attr == "__dict__":
                attr_write_sites.append(self._attr_site(
                    base.value, "<__dict__>", stmt, "dict",
                    init_like, cls_name))
            elif isinstance(base, ast.Call) \
                    and dotted_name(base.func) == "vars" and base.args:
                attr_write_sites.append(self._attr_site(
                    base.args[0], "<vars()>", stmt, "dict",
                    init_like, cls_name))
            return
        if not isinstance(target, ast.Attribute):
            return

        dotted = dotted_name(target)
        if dotted:
            head = dotted.split(".")[0]
            canonical = self.aliases.get(head)
            if canonical and len(dotted.split(".")) == 2:
                module_attr_writes.append(
                    {"target": f"{canonical}.{target.attr}",
                     "lineno": stmt.lineno})

        attr_write_sites.append(self._attr_site(
            target.value, target.attr, stmt, "store", init_like, cls_name))

        # Stats counter mutations, three shapes:
        #   self.<f>            (inside a *Stats class method)
        #   <recv>.stats.<f>    (through the owning structure)
        #   self.<attr>.<f>     (attr whose __init__-assigned type is *Stats)
        receiver = target.value
        if in_stats_class and isinstance(receiver, ast.Name) \
                and receiver.id == "self":
            stats_mutations.append({"field": target.attr,
                                    "lineno": stmt.lineno,
                                    "stats_cls": cls_name})
        elif isinstance(receiver, ast.Attribute):
            if receiver.attr == "stats":
                stats_mutations.append({"field": target.attr,
                                        "lineno": stmt.lineno,
                                        "stats_cls":
                                            attr_types.get("stats")})
            elif attr_types.get(receiver.attr, "").endswith("Stats"):
                stats_mutations.append({"field": target.attr,
                                        "lineno": stmt.lineno,
                                        "stats_cls":
                                            attr_types[receiver.attr]})


def _class_facts(node: ast.ClassDef) -> dict:
    methods: list[str] = []
    properties: list[str] = []
    counter_fields: dict[str, int] = {}
    attr_types: dict[str, str] = {}
    is_dataclass = False
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        if dotted_name(target) in ("dataclass", "dataclasses.dataclass"):
            is_dataclass = True
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            decorators = {dotted_name(d) for d in item.decorator_list}
            if "property" in decorators or "cached_property" in decorators:
                properties.append(item.name)
            else:
                methods.append(item.name)
            if item.name in ("__init__", "__post_init__"):
                init_params = {}
                for arg in (list(item.args.posonlyargs)
                            + list(item.args.args)
                            + list(item.args.kwonlyargs)):
                    annotation = _annotation_name(arg.annotation)
                    if annotation:
                        init_params[arg.arg] = annotation.split(".")[-1]
                for sub in ast.walk(item):
                    if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                        targets = sub.targets \
                            if isinstance(sub, ast.Assign) else [sub.target]
                        value = sub.value
                        if isinstance(value, ast.IfExp):
                            # ``x if x is not None else Default()`` —
                            # either branch names the type; prefer the
                            # default-constructor branch.
                            value = (value.orelse
                                     if isinstance(value.orelse, ast.Call)
                                     else value.body)
                        typed = None
                        if isinstance(value, ast.Call):
                            called = dotted_name(value.func)
                            if called:
                                typed = called.split(".")[-1]
                        elif isinstance(value, ast.Name):
                            # self.l2 = l2   (annotated constructor param)
                            typed = init_params.get(value.id)
                        elif isinstance(value, (ast.Dict, ast.DictComp)):
                            typed = "dict"
                        elif isinstance(value, (ast.List, ast.ListComp)):
                            typed = "list"
                        elif isinstance(value, (ast.Set, ast.SetComp)):
                            typed = "set"
                        elif isinstance(value, ast.Constant):
                            # bool first: True is an int to isinstance.
                            if isinstance(value.value, bool):
                                typed = "bool"
                            elif isinstance(value.value, int):
                                typed = "int"
                            elif isinstance(value.value, float):
                                typed = "float"
                        if typed is None and isinstance(sub, ast.AnnAssign):
                            annotation = _annotation_name(sub.annotation)
                            if annotation:
                                typed = annotation.split(".")[-1]
                        if typed is None:
                            continue
                        for tgt in targets:
                            if isinstance(tgt, ast.Attribute) \
                                    and isinstance(tgt.value, ast.Name) \
                                    and tgt.value.id == "self":
                                attr_types[tgt.attr] = typed
        elif isinstance(item, ast.AnnAssign) \
                and isinstance(item.target, ast.Name):
            annotation = _annotation_name(item.annotation)
            if annotation in ("int", "float"):
                counter_fields[item.target.id] = item.lineno
            elif annotation:
                attr_types[item.target.id] = annotation.split(".")[-1]
    return {
        "name": node.name,
        "lineno": node.lineno,
        "bases": [dotted_name(base) or "?" for base in node.bases],
        "is_dataclass": is_dataclass,
        "methods": methods,
        "properties": properties,
        "counter_fields": counter_fields,
        "attr_types": attr_types,
        "has_reporter": bool(set(methods) & _REPORTER_METHODS),
    }


def extract_module_facts(ctx: FileContext) -> dict:
    """One file's semantic facts (JSON-serializable, sha-cacheable)."""
    tree = ctx.tree
    aliases = import_aliases(tree)
    module = module_name_for(ctx.path)

    relative_imports: list[str] = []
    package = module.rsplit(".", 1)[0] if "." in module else ""
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.level:
            base = package
            for _ in range(node.level - 1):
                base = base.rsplit(".", 1)[0] if "." in base else ""
            stem = f"{base}.{node.module}" if node.module else base
            for item in node.names:
                relative_imports.append(f"{stem}.{item.name}")

    module_globals: dict[str, int] = {}
    module_aliases: dict[str, str] = {}
    module_global_types: dict[str, str] = {}
    const_tables: dict[str, object] = {}
    for node in tree.body:
        targets = []
        value = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            module_globals[target.id] = node.lineno
            if isinstance(value, ast.Name):
                module_aliases[target.id] = value.id
            elif isinstance(value, ast.Call):
                called = dotted_name(value.func)
                if called:
                    module_global_types[target.id] = called.split(".")[-1]
            if value is not None:
                ok, literal = _literal_value(value)
                if ok:
                    const_tables[target.id] = literal

    env_literals: list[dict] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str) \
                and _ENV_VAR_RE.fullmatch(node.value):
            env_literals.append({"name": node.value,
                                 "lineno": getattr(node, "lineno", 1)})

    classes: dict[str, dict] = {}
    functions: dict[str, dict] = {}
    module_function_names = {
        node.name for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}

    attr_loads: set[str] = set()
    attr_stores: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            if isinstance(node.ctx, ast.Load):
                attr_loads.add(node.attr)
            elif isinstance(node.ctx, ast.Store):
                attr_stores.add(node.attr)

    module_locks = concurrency.lock_globals(tree, aliases)

    def visit_function(func, cls: dict | None, prefix: str,
                       nested: bool) -> None:
        qual = f"{prefix}{func.name}"
        extractor = _FunctionExtractor(func, qual, cls, aliases,
                                       module_function_names, nested,
                                       module_locks)
        functions[qual] = extractor.summarize()
        for child in ast.walk(func):
            if child is func:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner_qual = f"{qual}.<locals>.{child.name}"
                if inner_qual not in functions:
                    inner = _FunctionExtractor(
                        child, inner_qual, cls, aliases,
                        module_function_names, True, module_locks)
                    functions[inner_qual] = inner.summarize()

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visit_function(node, None, "", False)
        elif isinstance(node, ast.ClassDef):
            cls = _class_facts(node)
            cls["lock_types"] = concurrency.lock_attrs_of_class(node,
                                                                aliases)
            classes[node.name] = cls
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    visit_function(item, cls, f"{node.name}.", False)

    return {
        "version": FACTS_VERSION,
        "module": module,
        "path": ctx.path,
        "imports": aliases,
        "relative_imports": relative_imports,
        "module_globals": module_globals,
        "module_aliases": module_aliases,
        "module_global_types": module_global_types,
        "const_tables": const_tables,
        "env_literals": env_literals,
        "lock_globals": module_locks,
        "classes": classes,
        "functions": functions,
        "attr_loads": sorted(attr_loads),
        "attr_stores": sorted(attr_stores),
    }


# ----------------------------------------------------------------------
# Whole-program model
# ----------------------------------------------------------------------
class Program:
    """Facts of every scanned module, indexed, with a call graph."""

    def __init__(self, facts_by_path: dict[str, dict]) -> None:
        self.facts_by_path = facts_by_path
        self.modules: dict[str, dict] = {
            facts["module"]: facts for facts in facts_by_path.values()}
        self.path_of_module: dict[str, str] = {
            facts["module"]: path
            for path, facts in facts_by_path.items()}
        self._class_index: dict[str, list[tuple[str, dict]]] = {}
        for name, facts in self.modules.items():
            for cls_name, cls in facts["classes"].items():
                self._class_index.setdefault(cls_name, []).append(
                    (name, cls))
        self._edges: dict[str, set[str]] | None = None
        self._reverse: dict[str, set[str]] | None = None

    # -- lookups -------------------------------------------------------
    def function(self, fq: str) -> dict | None:
        module, _, qual = fq.partition(":")
        facts = self.modules.get(module)
        return facts["functions"].get(qual) if facts else None

    def functions(self):
        for module, facts in self.modules.items():
            for qual, func in facts["functions"].items():
                yield f"{module}:{qual}", func

    def module_of_target(self, canonical: str) -> str | None:
        """Longest scanned module that prefixes a canonical dotted name."""
        best = None
        for module in self.modules:
            if canonical == module or canonical.startswith(module + "."):
                if best is None or len(module) > len(best):
                    best = module
        return best

    def classes_named(self, name: str) -> list[tuple[str, dict]]:
        return self._class_index.get(name, [])

    def attr_type_of(self, module: str, cls_name: str,
                     attr: str) -> str | None:
        """Inferred type name of ``cls.attr`` (base classes included)."""
        return self._attr_type_of(module, cls_name, attr)

    def lock_type_of(self, module: str, cls_name: str,
                     attr: str) -> str | None:
        """Canonical lock constructor behind ``self.<attr>``, if any."""
        for _cand_module, cls in self._class_candidates(module, cls_name):
            typed = cls.get("lock_types", {}).get(attr)
            if typed:
                return typed
        return None

    # -- call resolution -----------------------------------------------
    def _resolve_method(self, module: str, cls_name: str,
                        method: str, seen: set[str] | None = None) -> str | None:
        seen = seen or set()
        key = f"{module}.{cls_name}"
        if key in seen:
            return None
        seen.add(key)
        facts = self.modules.get(module)
        if facts is None:
            return None
        cls = facts["classes"].get(cls_name)
        if cls is None:
            return None
        if method in cls["methods"] or method in cls["properties"]:
            return f"{module}:{cls_name}.{method}"
        for base in cls["bases"]:
            base_leaf = base.split(".")[-1]
            canonical = self._canonical_in(facts, base)
            base_module = self.module_of_target(canonical) if canonical \
                else None
            if base_module and base_leaf in \
                    self.modules[base_module]["classes"]:
                found = self._resolve_method(base_module, base_leaf,
                                             method, seen)
                if found:
                    return found
            else:
                for cand_module, _cls in self.classes_named(base_leaf):
                    found = self._resolve_method(cand_module, base_leaf,
                                                 method, seen)
                    if found:
                        return found
        return None

    def _class_candidates(self, module: str,
                          cls_name: str) -> list[tuple[str, dict]]:
        """(module, class facts) pairs, the caller's module first."""
        out: list[tuple[str, dict]] = []
        facts = self.modules.get(module)
        if facts and cls_name in facts["classes"]:
            out.append((module, facts["classes"][cls_name]))
        for candidate in self.classes_named(cls_name):
            if candidate not in out:
                out.append(candidate)
        return out

    def _attr_type_of(self, module: str, cls_name: str, attr: str,
                      seen: set | None = None) -> str | None:
        """Class name of ``cls_name.<attr>``, searching base classes."""
        seen = seen if seen is not None else set()
        if (module, cls_name) in seen:
            return None
        seen.add((module, cls_name))
        candidates = self._class_candidates(module, cls_name)
        for cand_module, cls in candidates:
            typed = cls["attr_types"].get(attr)
            if typed:
                return typed
        for cand_module, cls in candidates:
            for base in cls["bases"]:
                typed = self._attr_type_of(cand_module,
                                           base.split(".")[-1], attr, seen)
                if typed:
                    return typed
        return None

    def _walk_attr_chain(self, module: str, cls_name: str,
                         attrs: list[str], method: str) -> str | None:
        """Resolve ``<cls>.attr...attr.method`` through attr_types."""
        cur_module, cur_cls = module, cls_name
        for attr in attrs:
            typed = self._attr_type_of(cur_module, cur_cls, attr)
            if typed is None:
                return None
            homes = self.classes_named(typed)
            cur_module = homes[0][0] if homes else cur_module
            cur_cls = typed
        return self._resolve_method_anywhere(cur_module, cur_cls, method)

    def _resolve_method_anywhere(self, home_module: str, cls_name: str,
                                 method: str) -> str | None:
        """Resolve ``cls_name.method`` preferring the caller's module,
        else any scanned module defining a class of that name."""
        found = self._resolve_method(home_module, cls_name, method)
        if found:
            return found
        for cand_module, _cls in self.classes_named(cls_name):
            found = self._resolve_method(cand_module, cls_name, method)
            if found:
                return found
        return None

    @staticmethod
    def _canonical_in(facts: dict, dotted: str) -> str | None:
        head, _, rest = dotted.partition(".")
        canonical = facts["imports"].get(head)
        if canonical is None:
            return None
        return f"{canonical}.{rest}" if rest else canonical

    def resolve_call(self, module: str, caller_qual: str,
                     raw: str) -> str | None:
        """Fully-qualified callee of a raw dotted call target, if it
        resolves to a scanned project function/method."""
        facts = self.modules.get(module)
        if facts is None:
            return None
        head, _, rest = raw.partition(".")

        func = facts["functions"].get(caller_qual)

        if head in ("self", "cls") and rest:
            cls_name = func.get("cls") if func else None
            if cls_name is None:
                return None
            parts = rest.split(".")
            if len(parts) == 1:
                return self._resolve_method(module, cls_name, parts[0])
            # self.<attr>...<method>() — type each hop through the
            # classes' attr_types (self.stats = CacheStats(); self.l2
            # from an annotated constructor param).
            return self._walk_attr_chain(module, cls_name, parts[:-1],
                                         parts[-1])

        # Annotated-parameter receivers: shared.l2.stats.m() where
        # ``shared: SharedL2``.  A parameter shadows any module alias.
        if func and rest and head in func.get("param_annotations", {}):
            root_cls = func["param_annotations"][head].split(".")[-1]
            parts = rest.split(".")
            if len(parts) == 1:
                return self._resolve_method_anywhere(module, root_cls,
                                                     parts[0])
            return self._walk_attr_chain(module, root_cls, parts[:-1],
                                         parts[-1])

        # Module-level alias chains: runner = main; runner()
        alias_target = facts["module_aliases"].get(head)
        hops = 0
        while alias_target and hops < 5:
            raw = f"{alias_target}.{rest}" if rest else alias_target
            head, _, rest = raw.partition(".")
            alias_target = facts["module_aliases"].get(head)
            hops += 1

        if not rest:
            if head in facts["functions"]:
                return f"{module}:{head}"
            if head in facts["classes"]:
                init = self._resolve_method(module, head, "__init__")
                return init or f"{module}:{head}"
            canonical = facts["imports"].get(head)
            if canonical:
                return self._resolve_canonical(canonical)
            return None

        canonical = self._canonical_in(facts, raw)
        if canonical:
            return self._resolve_canonical(canonical)
        if head in facts["classes"]:  # ClassName.method(...)
            return self._resolve_method(module, head, rest.split(".")[0])
        return None

    def _resolve_canonical(self, canonical: str) -> str | None:
        target_module = self.module_of_target(canonical)
        if target_module is None:
            return None
        remainder = canonical[len(target_module):].lstrip(".")
        target_facts = self.modules[target_module]
        if not remainder:
            return None
        parts = remainder.split(".")
        if parts[0] in target_facts["functions"]:
            return f"{target_module}:{parts[0]}"
        if parts[0] in target_facts["classes"]:
            if len(parts) > 1:
                return self._resolve_method(target_module, parts[0],
                                            parts[1])
            init = self._resolve_method(target_module, parts[0], "__init__")
            return init or f"{target_module}:{parts[0]}"
        alias = target_facts["module_aliases"].get(parts[0])
        if alias and alias in target_facts["functions"]:
            return f"{target_module}:{alias}"
        return None

    # -- call graph ----------------------------------------------------
    def _build_edges(self) -> None:
        self._edges = {}
        self._reverse = {}
        for fq, func in self.functions():
            module, _, qual = fq.partition(":")
            targets = set()
            for call in func["calls"]:
                resolved = self.resolve_call(module, qual, call["name"])
                if resolved:
                    targets.add(resolved)
            self._edges[fq] = targets
            for target in targets:
                self._reverse.setdefault(target, set()).add(fq)

    @property
    def call_edges(self) -> dict[str, set[str]]:
        if self._edges is None:
            self._build_edges()
        return self._edges

    @property
    def reverse_edges(self) -> dict[str, set[str]]:
        if self._reverse is None:
            self._build_edges()
        return self._reverse

    def reachable_from(self, fq: str) -> set[str]:
        """Transitive closure over call edges, ``fq`` included."""
        seen: set[str] = set()
        frontier = [fq]
        edges = self.call_edges
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(edges.get(current, ()))
        return seen

    def callers_of(self, fq: str) -> set[str]:
        """Transitive closure over *reverse* call edges, ``fq`` included."""
        seen: set[str] = set()
        frontier = [fq]
        reverse = self.reverse_edges
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(reverse.get(current, ()))
        return seen


def project_imports(facts: dict, known_modules: set[str]) -> set[str]:
    """Scanned modules this module's imports point into."""
    deps: set[str] = set()
    candidates = list(facts["imports"].values()) \
        + list(facts.get("relative_imports", ()))
    for canonical in candidates:
        best = None
        for module in known_modules:
            if canonical == module or canonical.startswith(module + "."):
                if best is None or len(module) > len(best):
                    best = module
        if best and best != facts["module"]:
            deps.add(best)
    return deps


def dependency_signatures(shas: dict[str, str],
                          deps: dict[str, set[str]]) -> dict[str, str]:
    """Per-module digest over (module, transitive deps) content hashes.

    ``shas`` maps module name -> content sha; ``deps`` maps module name
    -> direct project dependencies.  Cycles are handled by the closure
    construction (a cycle's members simply share their closure).
    """
    closures: dict[str, set[str]] = {}
    for module in shas:
        closure: set[str] = set()
        frontier = [module]
        while frontier:
            current = frontier.pop()
            if current in closure:
                continue
            closure.add(current)
            frontier.extend(deps.get(current, ()))
        closures[module] = closure
    signatures: dict[str, str] = {}
    for module, closure in closures.items():
        digest = hashlib.sha256()
        payload = sorted((name, shas.get(name, "")) for name in closure)
        digest.update(json.dumps(payload).encode())
        signatures[module] = digest.hexdigest()
    return signatures
