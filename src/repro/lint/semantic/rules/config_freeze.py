"""SIM103 — configuration freeze (taint on config-typed values).

``GPUConfig``/``TCORConfig``/every ``*Config`` dataclass is frozen by
contract: simulators read machine parameters, they never tune them
mid-run (a mutated config silently desynchronizes the memo-table keys
the result caches are addressed by).  The frozen dataclass raises at
runtime for plain attribute assignment — but ``setattr``,
``object.__setattr__`` and ``__dict__``/``vars()`` writes slip past,
and so does every path the tests never execute.  This rule proves the
absence statically: reaching definitions give each store's receiver an
origin set, and any origin that resolves to a config class — a direct
constructor call, a ``*Config``-annotated parameter, an attribute whose
``__init__`` assigns a config, or an imported module-level config
instance — flags the store.

Construction itself is exempt: ``self.field = ...`` /
``object.__setattr__(self, ...)`` inside the config class's own
``__init__``/``__post_init__``.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.core import Violation
from repro.lint.semantic.model import _is_config_class
from repro.lint.semantic.rules import SemanticRule, register_semantic


@register_semantic
class ConfigFreezeRule(SemanticRule):
    code = "SIM103"
    name = "config-freeze"
    description = ("write to a *Config field after construction "
                   "(including setattr/__dict__/object.__setattr__)")
    scope = "module"

    def check_module(self, program, module: str) -> Iterable[Violation]:
        facts = program.modules[module]
        path = facts["path"]
        for qual, func in facts["functions"].items():
            cls = facts["classes"].get(func["cls"] or "")
            attr_types = cls["attr_types"] if cls else {}
            for site in func["attr_write_sites"]:
                config_cls = self._config_receiver(
                    program, site, func["param_annotations"], attr_types)
                if config_cls is None:
                    continue
                if site["self_ctx"] and _is_config_class(site["cls"] or ""):
                    continue  # the class's own construction
                via = {"store": "assignment", "setattr": "setattr()",
                       "dict": "__dict__ write",
                       "object_setattr": "object.__setattr__"}[site["via"]]
                field = site["field"]
                shown = "" if field.startswith("<") else f".{field}"
                yield self.violation(
                    path, site["lineno"], site["col"],
                    f"{via} mutates `{site['recv']}{shown}` "
                    f"({config_cls} is frozen by contract); build a new "
                    "config with dataclasses.replace() instead")

    @staticmethod
    def _config_receiver(program, site: dict,
                         param_annotations: dict[str, str],
                         attr_types: dict[str, str]) -> str | None:
        for origin in site["recv_origins"]:
            kind, _, payload = origin.partition(":")
            leaf = payload.split(".")[-1] if payload else ""
            if kind == "call":
                for part in payload.split("."):
                    if _is_config_class(part):
                        return part
            elif kind == "param":
                annotation = param_annotations.get(payload, "")
                if _is_config_class(annotation.split(".")[-1]):
                    return annotation.split(".")[-1]
            elif kind == "attr":
                typed = attr_types.get(payload, "")
                if _is_config_class(typed):
                    return typed
            elif kind in ("const", "free"):
                if _is_config_class(leaf):
                    return leaf
                # Imported module-level instance: resolve its
                # constructor type in the defining module.
                owner = program.module_of_target(payload) \
                    if "." in payload else None
                if owner:
                    name = payload[len(owner):].lstrip(".")
                    typed = program.modules[owner][
                        "module_global_types"].get(name, "")
                    if _is_config_class(typed):
                        return typed
        return None
