"""SIM105 — OPT-number provenance in tcor call chains.

TCOR's replacement decisions are only optimal because every OPT number
flowing into the Attribute Cache / replacement policies originates from
the Polygon List Builder's PMDs (``pmd.opt_number``, propagated through
tile-fetch events) or the ``NO_NEXT_USE_RANK`` sentinel.  A fresh
integer literal handed to an ``opt_number`` parameter forges a next-use
distance the builder never computed — simulations keep running and
quietly stop being OPT.

The rule resolves every call through the project call graph; when the
callee is a ``tcor``/``caches``/``replay`` function with an OPT-named
parameter, the argument's reaching-definition origin set must be
literal-free (attribute loads, parameters, sentinel constants and
computed expressions all pass — ``lit:int``/``lit:float`` does not).
``replay`` is in the set because the replay kernels consume the same
OPT numbers from the trace compiler's arrays: array loads and the
parameters they flow through are legitimate provenance, fresh literals
into a kernel's ``opt`` slots are exactly as forged as in the live
path.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.core import Violation
from repro.lint.semantic.rules import SemanticRule, register_semantic

_MODULE_PARTS = {"tcor", "caches", "replay"}
_BAD_ORIGINS = {"lit:int", "lit:float"}


def _is_opt_param(name: str | None) -> bool:
    return bool(name) and ("opt_number" in name or name == "opt")


@register_semantic
class OptProvenanceRule(SemanticRule):
    code = "SIM105"
    name = "opt-provenance"
    description = ("integer literal passed as an OPT number into a "
                   "tcor/caches call chain (must come from PMD fields "
                   "or NO_NEXT_USE_RANK)")
    scope = "module"

    def check_module(self, program, module: str) -> Iterable[Violation]:
        facts = program.modules[module]
        path = facts["path"]
        for qual, func in facts["functions"].items():
            for call in func["calls"]:
                if "pos" not in call and "kw" not in call:
                    continue
                resolved = program.resolve_call(module, qual, call["name"])
                if resolved is None:
                    continue
                callee_module, _, callee_qual = resolved.partition(":")
                if not _MODULE_PARTS & set(callee_module.split(".")):
                    continue
                callee = program.function(resolved)
                if callee is None:
                    continue
                yield from self._check_call(path, call, callee,
                                            callee_qual)

    def _check_call(self, path: str, call: dict, callee: dict,
                    callee_qual: str) -> Iterable[Violation]:
        params = callee["params"]
        # Bound calls (self.m(...), obj.m(...), ClassName(...)) skip the
        # self/cls slot; explicit unbound calls (ClassName.m(obj, ...))
        # bind it positionally.
        parts = call["name"].split(".")
        unbound = len(parts) >= 2 and parts[-2] == callee.get("cls") \
            and parts[-1] != "__init__" and callee["name"] != "__init__"
        offset = 1 if params and params[0] in ("self", "cls") \
            and not unbound else 0
        for index, origin in enumerate(call.get("pos", ())):
            slot = index + offset
            if slot < len(params) and _is_opt_param(params[slot]):
                yield from self._judge(path, call, callee_qual,
                                       params[slot], origin)
        for kw_name, origin in call.get("kw", {}).items():
            if _is_opt_param(kw_name):
                yield from self._judge(path, call, callee_qual, kw_name,
                                       origin)

    def _judge(self, path: str, call: dict, callee_qual: str,
               param: str, origin: str) -> Iterable[Violation]:
        origins = set(origin.split("|"))
        bad = origins & _BAD_ORIGINS
        if not bad:
            return
        yield self.violation(
            path, call["lineno"], call["col"],
            f"`{param}` of `{callee_qual}` receives a fresh numeric "
            f"literal (origins: {origin}); OPT numbers must flow from "
            "PMD fields or NO_NEXT_USE_RANK")
