"""SIM102 — trace-hook coverage of stats counter mutations.

Every ``*Stats`` counter mutation must be observable: some function on
a caller chain above the mutating statement has to carry an
``obs.trace`` hook (a load of ``trace.ACTIVE`` or a call to one of the
Tracer's hook methods), otherwise the counter moves while the event
stream stays silent and the trace-vs-registry conservation bridge
(``TileSummarySink``) under-counts.

This is reverse reachability over the whole-program call graph —
single-file rules (SIM010 polices *who* mutates, not *whether anyone
watching can see it*) cannot express it.  Counters that are deliberate
non-events (pure accounting roll-ups never crossed with a trace) carry
a ``# lint: disable=SIM102`` with a justification.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.core import Violation
from repro.lint.semantic.rules import SemanticRule, register_semantic


@register_semantic
class TraceCoverageRule(SemanticRule):
    code = "SIM102"
    name = "trace-hook-coverage"
    description = ("stats counter mutated on a path no obs.trace hook "
                   "can observe (no trace-carrying caller chain)")
    scope = "program"

    def check_program(self, program) -> Iterable[Violation]:
        # A function is trace-covered when itself or any transitive
        # caller carries a hook.  Compute coverage once by flooding
        # forward from every hook carrier along call edges.
        covered: set[str] = set()
        frontier = [fq for fq, func in program.functions()
                    if func["trace_hook"]]
        edges = program.call_edges
        while frontier:
            fq = frontier.pop()
            if fq in covered:
                continue
            covered.add(fq)
            frontier.extend(edges.get(fq, ()))

        for fq, func in program.functions():
            if not func["stats_mutations"] or fq in covered:
                continue
            module = fq.partition(":")[0]
            path = program.modules[module]["path"]
            for mutation in func["stats_mutations"]:
                owner = mutation.get("stats_cls") or "*Stats"
                yield self.violation(
                    path, mutation["lineno"], 0,
                    f"counter `{owner}.{mutation['field']}` is mutated in "
                    f"`{func['qual']}` but no caller chain carries an "
                    "obs.trace hook; route the event through a hooked "
                    "note_* path or justify with a suppression")
