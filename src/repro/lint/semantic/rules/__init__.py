"""Semantic rule catalogue (SIM101–SIM105, SIM201–SIM206, SIM301–SIM305).

Semantic rules live in their own registry — they need a
:class:`~repro.lint.semantic.model.Program`, not a single file's AST,
so they cannot implement the FileRule/ProjectRule protocols.  Two
scopes exist:

- ``scope = "module"`` — findings for a module depend only on the
  module and its (transitive) imports, so they are cached per module
  keyed by its dependency signature;
- ``scope = "program"`` — findings depend on the *whole* file set
  (reverse reachability, global cross-checks) and are recomputed every
  pass from cached facts.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.core import Violation


class SemanticRule:
    """Base: code/name/description plus a scope marker."""

    code: str = ""
    name: str = ""
    description: str = ""
    scope: str = "module"  # "module" | "program"

    def check_module(self, program, module: str) -> Iterable[Violation]:
        raise NotImplementedError

    def check_program(self, program) -> Iterable[Violation]:
        raise NotImplementedError

    def violation(self, path: str, line: int, col: int,
                  message: str) -> Violation:
        return Violation(path=path, line=line, col=col, rule=self.code,
                         message=message)


_SEMANTIC_REGISTRY: dict[str, SemanticRule] = {}


def register_semantic(rule_cls: type) -> type:
    rule = rule_cls()
    if not rule.code:
        raise ValueError(f"{rule_cls.__name__} has no code")
    if rule.code in _SEMANTIC_REGISTRY:
        raise ValueError(f"duplicate semantic rule code {rule.code}")
    _SEMANTIC_REGISTRY[rule.code] = rule
    return rule_cls


def semantic_rules() -> list[SemanticRule]:
    from repro.lint.concurrency import (  # noqa: F401
        atomicity,
        blocking,
        locks,
        obs_boundary,
        tasks,
    )
    from repro.lint.contracts import (  # noqa: F401
        envvar_discipline,
        footprints,
        metric_names,
        version_discipline,
        wire_schema,
    )
    from repro.lint.semantic.rules import (  # noqa: F401
        config_freeze,
        dead_counters,
        fork_safety,
        opt_provenance,
        trace_coverage,
    )
    return [_SEMANTIC_REGISTRY[code] for code in sorted(_SEMANTIC_REGISTRY)]
