"""SIM104 — dead counters and dead invariant reads.

Two blind spots of the name-based SIM005 pass, both requiring the
whole-program symbol table:

1. **Dead reads** — a conservation invariant
   (``registry.expect_sum(...)``) names its counters as dotted strings.
   Nothing ties those strings to live counters at runtime until the
   invariant fails with "missing"; statically, every referenced leaf
   must resolve to a counter field, a ``*Stats`` property, or a
   registry-owned ``count()``/``gauge()``/``histogram()`` name.

2. **Dead counters, class-scoped** — SIM005 matches increments to
   fields *by attribute name*, so a counter on one Stats class is
   vouched for by a same-named counter on another.  With receiver
   types resolved (``self.stats = FooStats()`` in ``__init__``), an
   increment attributes to a specific class; a field no resolved store
   ever feeds — while a same-named store elsewhere masks it from
   SIM005 — reports a structural zero.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.core import Violation
from repro.lint.semantic.rules import SemanticRule, register_semantic

# Snapshot machinery adds these derived keys to flattened stats dicts.
_DERIVED_KEYS = {"accesses", "misses", "hits", "miss_ratio", "count",
                 "sum", "bucket", "reads", "writes"}


@register_semantic
class DeadCountersRule(SemanticRule):
    code = "SIM104"
    name = "dead-counters"
    description = ("invariant references a counter nothing owns, or a "
                   "Stats field no resolved store feeds (class-scoped)")
    scope = "program"

    def check_program(self, program) -> Iterable[Violation]:
        stats_classes: dict[str, tuple[str, dict]] = {}
        known_leaves: set[str] = set(_DERIVED_KEYS)
        for module, facts in program.modules.items():
            for cls_name, cls in facts["classes"].items():
                if not cls_name.endswith("Stats"):
                    continue
                stats_classes[cls_name] = (module, cls)
                known_leaves.update(cls["counter_fields"])
                known_leaves.update(cls["properties"])

        fed: dict[tuple[str, str], bool] = {}
        name_stored: set[str] = set()
        own_metric_names: set[str] = set()
        expect_refs: list[tuple[str, dict]] = []
        for module, facts in program.modules.items():
            name_stored.update(facts["attr_stores"])
            for func in facts["functions"].values():
                for mutation in func["stats_mutations"]:
                    cls = mutation.get("stats_cls")
                    if cls:
                        fed[(cls, mutation["field"])] = True
                for metric in func["metric_strings"]:
                    if metric["role"] == "own":
                        own_metric_names.add(metric["name"])
                    else:
                        expect_refs.append((facts["path"], metric))

        own_leaves = {name.split(".")[-1] for name in own_metric_names}

        # (1) dead reads: invariant strings naming unknown counters.
        for path, metric in expect_refs:
            name = metric["name"]
            leaf = name.split(".")[-1]
            if leaf in known_leaves or leaf in own_leaves \
                    or name in own_metric_names:
                continue
            yield self.violation(
                path, metric["lineno"], 0,
                f"invariant references `{name}` but no Stats counter, "
                f"property, or registry-owned metric supplies `{leaf}`; "
                "the conservation check can only ever fail as 'missing'")

        # (2) class-scoped dead counters (masked from SIM005 by a
        # same-named store against a different class).
        for cls_name, (module, cls) in sorted(stats_classes.items()):
            path = program.modules[module]["path"]
            for field, lineno in sorted(cls["counter_fields"].items()):
                if fed.get((cls_name, field)):
                    continue
                if field not in name_stored:
                    continue  # nothing stores it at all: SIM005's case
                if self._ambiguously_fed(program, field):
                    continue
                yield self.violation(
                    path, lineno, 0,
                    f"{cls_name}.{field} has no resolved store feeding "
                    "it — the same-named counter stored elsewhere "
                    "belongs to a different Stats class, so this one "
                    "reports a structural zero")

    @staticmethod
    def _ambiguously_fed(program, field: str) -> bool:
        """True when some store of ``field`` has an *unresolved*
        receiver type — it might feed any same-named counter, so the
        conservative answer is "fed"."""
        for _fq, func in program.functions():
            for site in func["attr_write_sites"]:
                if site["field"] != field or site["via"] != "store":
                    continue
                mutations = func["stats_mutations"]
                resolved_here = any(
                    mutation["field"] == field and mutation.get("stats_cls")
                    for mutation in mutations)
                if not resolved_here:
                    return True
        return False
