"""SIM101 — fork safety of process-pool workers.

A callable handed to ``ProcessPoolExecutor.submit``/``.map`` runs in a
child process.  Two whole-program properties make that safe here:

1. the callable must be picklable *by name* — a lambda or a function
   nested inside another function is not; and
2. nothing the callable (transitively) calls may write module globals —
   the write lands in the child's copy of the module, silently diverges
   from the parent, and breaks the "parallel runs are byte-identical to
   serial ones" contract of ``repro.parallel``.

The second check is why this is a semantic rule: the global write is
usually several call-graph hops below the submit site (the summary
chain is printed in the message).  Deliberate worker-local globals
carry a ``# lint: disable=SIM101`` with a justification at the submit
site.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.core import Violation
from repro.lint.semantic.rules import SemanticRule, register_semantic


@register_semantic
class ForkSafetyRule(SemanticRule):
    code = "SIM101"
    name = "fork-safety"
    description = ("callable submitted to a process pool is unpicklable "
                   "or transitively writes module globals")
    scope = "module"

    def check_module(self, program, module: str) -> Iterable[Violation]:
        facts = program.modules[module]
        path = facts["path"]
        for qual, func in facts["functions"].items():
            for submit in func["submits"]:
                kind = submit["kind"]
                if kind == "lambda":
                    yield self.violation(
                        path, submit["lineno"], submit["col"],
                        "lambda submitted to a process pool; workers are "
                        "pickled by name — use a module-level function")
                    continue
                if kind == "nested":
                    yield self.violation(
                        path, submit["lineno"], submit["col"],
                        f"nested function `{submit['target']}` submitted "
                        "to a process pool; it cannot be pickled by name "
                        "— hoist it to module level")
                    continue
                target = submit.get("target")
                if not target:
                    continue
                resolved = program.resolve_call(module, qual, target)
                if resolved is None:
                    continue
                yield from self._global_writes(program, path, submit,
                                               target, resolved)

    def _global_writes(self, program, path: str, submit: dict,
                       target: str, entry: str) -> Iterable[Violation]:
        for fq in sorted(program.reachable_from(entry)):
            func = program.function(fq)
            if func is None:
                continue
            offences = [f"`{write['name']}`"
                        for write in func["global_writes"]]
            offences += [f"`{write['target']}`"
                         for write in func["module_attr_writes"]]
            if not offences:
                continue
            where = fq.replace(":", ".")
            hop = "" if fq == entry else " (reached through the call graph)"
            yield self.violation(
                path, submit["lineno"], submit["col"],
                f"worker `{target}` transitively writes module "
                f"global(s) {', '.join(sorted(set(offences)))} in "
                f"{where}{hop}; pool workers must not mutate module "
                "state")
