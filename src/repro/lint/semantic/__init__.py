"""repro.lint.semantic — whole-program analysis under the lint pass.

The single-file rules (SIM001–SIM010) judge one AST at a time; this
package builds the structures they cannot: a project symbol table, a
call graph resolving ``self.``-method and cross-module calls, and a
per-function control-flow graph with a reaching-definitions dataflow
solution.  Five semantic rules (SIM101–SIM105) run on top; see
``repro.lint.semantic.rules`` for the catalogue and DESIGN.md §9 for
the lattice and caching story.

Per-module *facts* (symbols, function summaries, dataflow-derived
origins) cache by file content hash; per-module *findings* cache by the
module's dependency signature — a digest over its transitive project
imports — so an edit invalidates only downstream analyses.
"""

from repro.lint.semantic.cfg import CFG, build_cfg
from repro.lint.semantic.dataflow import FunctionDataflow, ReachingDefinitions
from repro.lint.semantic.engine import SemanticResult, semantic_pass
from repro.lint.semantic.model import Program, dependency_signatures
from repro.lint.semantic.rules import semantic_rules

__all__ = [
    "CFG",
    "FunctionDataflow",
    "Program",
    "ReachingDefinitions",
    "SemanticResult",
    "build_cfg",
    "dependency_signatures",
    "semantic_pass",
    "semantic_rules",
]
