"""Reaching definitions and value-origin tracking over the CFG.

:class:`ReachingDefinitions` is the classic forward may-analysis on the
powerset-of-definitions lattice: ``IN[b] = ∪ OUT[p]``,
``OUT[b] = GEN[b] ∪ (IN[b] − KILL[b])``, iterated to fixpoint with a
worklist.  Definitions are (name, site) pairs harvested from every
binding construct: assignments (including unpacking), augmented and
annotated assignments, ``for`` targets, ``with ... as``, ``except ...
as``, imports, nested ``def``/``class`` statements, walrus operators
and comprehension generators (whose targets, under PEP 572 scoping, do
*not* leak — they are tracked only so reads inside the comprehension
resolve).

:class:`FunctionDataflow` layers *origins* on top: a compact string
describing where a value came from (``lit:int``, ``param:x``,
``attr:opt_number``, ``call:TCORConfig``, ``const:NO_NEXT_USE_RANK``),
resolved flow-sensitively through the reaching definitions at the
statement where the value is used.  The SIM103 (config freeze) and
SIM105 (OPT provenance) rules are consumers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.semantic.cfg import CFG, build_cfg

# Origin descriptors are plain strings so function facts stay
# JSON-serializable.  An origin *set* renders sorted and "|"-joined.
UNKNOWN = "?"
_MAX_DEPTH = 6


@dataclass(frozen=True)
class Definition:
    """One binding site of one name."""

    name: str
    def_id: int          # unique within the function
    kind: str            # "assign" | "aug" | "iter" | "with" | ...
    lineno: int


class ReachingDefinitions:
    """Fixpoint solution; exposes per-block IN sets of definitions."""

    def __init__(self, cfg: CFG, defs_by_block: dict[int, list[tuple]],
                 entry_defs: list["Definition"]) -> None:
        self.cfg = cfg
        # defs_by_block: bid -> [(Definition, value expr | None)] in
        # statement order; kills are by name.
        self._defs_by_block = defs_by_block
        self._entry_defs = entry_defs
        self.block_in: dict[int, frozenset[int]] = {}
        self._defs: dict[int, Definition] = {
            d.def_id: d for d, _ in self._iter_all_defs()}
        self._solve()

    def _iter_all_defs(self):
        for defs in self._defs_by_block.values():
            yield from defs
        for definition in self._entry_defs:
            yield definition, None

    def _gen_kill(self, bid: int) -> tuple[frozenset[int], frozenset[str]]:
        gen: dict[str, int] = {}
        killed: set[str] = set()
        for definition, _value in self._defs_by_block.get(bid, ()):
            gen[definition.name] = definition.def_id
            killed.add(definition.name)
        return frozenset(gen.values()), frozenset(killed)

    def _solve(self) -> None:
        cfg = self.cfg
        gen_kill = {bid: self._gen_kill(bid) for bid in cfg.blocks}
        preds: dict[int, list[int]] = {bid: [] for bid in cfg.blocks}
        for block in cfg.blocks.values():
            for succ in block.succs:
                preds[succ].append(block.bid)
        out: dict[int, frozenset[int]] = {bid: frozenset()
                                          for bid in cfg.blocks}
        entry_out = frozenset(d.def_id for d in self._entry_defs)
        out[cfg.entry] = entry_out
        self.block_in = {bid: frozenset() for bid in cfg.blocks}
        worklist = list(cfg.blocks)
        while worklist:
            bid = worklist.pop()
            incoming: set[int] = set()
            for pred in preds[bid]:
                incoming |= out[pred]
            if bid == cfg.entry:
                incoming |= entry_out
            self.block_in[bid] = frozenset(incoming)
            gen, kill = gen_kill[bid]
            new_out = gen | frozenset(
                def_id for def_id in incoming
                if self._defs[def_id].name not in kill)
            if new_out != out[bid]:
                out[bid] = new_out
                worklist.extend(self.cfg.blocks[bid].succs)

    # -- queries -------------------------------------------------------
    def defs_reaching_block(self, bid: int) -> set[Definition]:
        return {self._defs[def_id] for def_id in self.block_in.get(bid, ())}

    def names_reaching_block(self, bid: int) -> set[str]:
        return {d.name for d in self.defs_reaching_block(bid)}


def _binding_targets(target: ast.expr, value_known: bool,
                     out: list[tuple[str, str]]) -> None:
    """(name, kind) pairs bound by an assignment target."""
    if isinstance(target, ast.Name):
        out.append((target.id, "assign" if value_known else "unpack"))
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _binding_targets(element, False, out)
    elif isinstance(target, ast.Starred):
        _binding_targets(target.value, False, out)
    # Attribute / Subscript targets bind no local name.


def definitions_of_stmt(stmt: ast.stmt) -> list[tuple[str, str, ast.expr | None]]:
    """(name, kind, value-expr-or-None) bound directly by ``stmt``.

    Nested statements are handled by their own CFG placement; walrus
    assignments anywhere inside the statement's expressions also bind
    in the enclosing scope and are harvested here.
    """
    bound: list[tuple[str, str, ast.expr | None]] = []
    if isinstance(stmt, ast.Assign):
        pairs: list[tuple[str, str]] = []
        for target in stmt.targets:
            _binding_targets(target, isinstance(target, ast.Name), pairs)
        bound.extend((name, kind,
                      stmt.value if kind == "assign" else None)
                     for name, kind in pairs)
    elif isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Name):
            bound.append((stmt.target.id, "aug", None))
    elif isinstance(stmt, ast.AnnAssign):
        if isinstance(stmt.target, ast.Name):
            bound.append((stmt.target.id, "assign" if stmt.value else "ann",
                          stmt.value))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        pairs = []
        _binding_targets(stmt.target, False, pairs)
        bound.extend((name, "iter", None) for name, _ in pairs)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                pairs = []
                _binding_targets(item.optional_vars,
                                 isinstance(item.optional_vars, ast.Name),
                                 pairs)
                bound.extend((name, "with", item.context_expr
                              if kind == "assign" else None)
                             for name, kind in pairs)
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            bound.append((stmt.name, "except", None))
    elif isinstance(stmt, ast.Import):
        for alias in stmt.names:
            bound.append((alias.asname or alias.name.split(".")[0],
                          "import", None))
    elif isinstance(stmt, ast.ImportFrom):
        for alias in stmt.names:
            bound.append((alias.asname or alias.name, "import", None))
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        bound.append((stmt.name, "def", None))

    # Walrus / comprehension bindings hide inside expressions.  Only a
    # statement's *header* expressions belong to it — nested statement
    # bodies are placed in their own blocks and harvested there.
    for header in _header_exprs(stmt):
        for node in ast.walk(header):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scopes keep their bindings
            if isinstance(node, ast.NamedExpr) \
                    and isinstance(node.target, ast.Name):
                bound.append((node.target.id, "assign", node.value))
            elif isinstance(node, ast.comprehension):
                pairs = []
                _binding_targets(node.target, False, pairs)
                bound.extend((name, "comp", None) for name, _ in pairs)
    return bound


def _header_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions evaluated *by* the statement itself (not by the
    statements nested under it)."""
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return []
    return [node for node in ast.iter_child_nodes(stmt)
            if isinstance(node, ast.expr)]


class FunctionDataflow:
    """CFG + reaching definitions + origin resolution for one function.

    ``aliases`` maps import aliases to canonical dotted names (see
    :func:`repro.lint.core.import_aliases`) so origins report canonical
    targets (``call:concurrent.futures.ProcessPoolExecutor``).
    """

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef,
                 aliases: dict[str, str] | None = None) -> None:
        self.func = func
        self.aliases = dict(aliases or {})
        self.cfg = build_cfg(func)
        self.params = [arg.arg for arg in (
            list(func.args.posonlyargs) + list(func.args.args)
            + list(func.args.kwonlyargs)
            + ([func.args.vararg] if func.args.vararg else [])
            + ([func.args.kwarg] if func.args.kwarg else []))]
        self._globals = {
            name for node in ast.walk(func)
            for name in getattr(node, "names", ())
            if isinstance(node, (ast.Global, ast.Nonlocal))}

        next_id = 0
        entry_defs = []
        for param in self.params:
            entry_defs.append(Definition(param, next_id, "param",
                                         func.lineno))
            next_id += 1
        defs_by_block: dict[int, list[tuple[Definition, ast.expr | None]]] = {}
        # (name, def) value expressions, flow-insensitive fallback map.
        self._values: dict[int, ast.expr | None] = {}
        self._defs_of_name: dict[str, list[Definition]] = {}
        for param_def in entry_defs:
            self._defs_of_name.setdefault(param_def.name, []).append(param_def)
        for bid, block in self.cfg.blocks.items():
            for stmt in block.stmts:
                for name, kind, value in definitions_of_stmt(stmt):
                    definition = Definition(name, next_id, kind,
                                            getattr(stmt, "lineno", 0))
                    next_id += 1
                    defs_by_block.setdefault(bid, []).append(
                        (definition, value))
                    self._values[definition.def_id] = value
                    self._defs_of_name.setdefault(name, []).append(definition)
        self.reaching = ReachingDefinitions(self.cfg, defs_by_block,
                                            entry_defs)

    # -- origin resolution ---------------------------------------------
    def _canonical(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head

    def origins_of_name(self, name: str, at_stmt: ast.stmt | None = None,
                        depth: int = 0) -> set[str]:
        if name in self._globals:
            return {f"global:{name}"}
        if name in self.aliases:
            return {f"const:{self.aliases[name]}"}
        candidates = self._defs_of_name.get(name)
        if candidates is None:
            return {f"const:{name}"} if name.isupper() \
                else {f"free:{name}"}
        if at_stmt is not None:
            bid = self.cfg.block_of_stmt.get(id(at_stmt))
            if bid is not None:
                reaching_ids = {d.def_id for d in
                                self.reaching.defs_reaching_block(bid)}
                # Defs earlier in the same block also reach, and later
                # same-block defs of the name kill the incoming ones.
                env: dict[str, int] = {}
                for block_stmt in self.cfg.blocks[bid].stmts:
                    if block_stmt is at_stmt:
                        break
                    for def_ in self._defs_of_name.get(name, ()):
                        if def_.lineno == getattr(block_stmt, "lineno", -1):
                            env[name] = def_.def_id
                if name in env:
                    reaching_ids = {env[name]}
                narrowed = [d for d in candidates
                            if d.def_id in reaching_ids]
                if narrowed:
                    candidates = narrowed
        result: set[str] = set()
        for definition in candidates:
            if definition.kind == "param":
                result.add(f"param:{definition.name}")
                continue
            value = self._values.get(definition.def_id)
            if value is None:
                result.add(f"bind:{definition.kind}")
            else:
                result |= self.origin_of_expr(value, None, depth + 1)
        return result or {UNKNOWN}

    def origin_of_expr(self, expr: ast.expr, at_stmt: ast.stmt | None = None,
                       depth: int = 0) -> set[str]:
        """Flow-sensitive origin set of one expression."""
        if depth > _MAX_DEPTH:
            return {UNKNOWN}
        if isinstance(expr, ast.Constant):
            if expr.value is None:
                return {"none"}
            return {f"lit:{type(expr.value).__name__}"}
        if isinstance(expr, ast.Name):
            return self.origins_of_name(expr.id, at_stmt, depth)
        if isinstance(expr, ast.Attribute):
            dotted = _dotted(expr)
            if dotted is not None:
                head = dotted.split(".")[0]
                if head in self.aliases:
                    return {f"const:{self._canonical(dotted)}"}
            return {f"attr:{expr.attr}"}
        if isinstance(expr, ast.Call):
            dotted = _dotted(expr.func)
            if dotted is not None:
                return {f"call:{self._canonical(dotted)}"}
            return {"call:?"}
        if isinstance(expr, ast.IfExp):
            return (self.origin_of_expr(expr.body, at_stmt, depth + 1)
                    | self.origin_of_expr(expr.orelse, at_stmt, depth + 1))
        if isinstance(expr, ast.BoolOp):
            merged: set[str] = set()
            for value in expr.values:
                merged |= self.origin_of_expr(value, at_stmt, depth + 1)
            return merged
        if isinstance(expr, (ast.BinOp, ast.UnaryOp, ast.Compare)):
            return {"expr"}
        if isinstance(expr, ast.Subscript):
            return {"sub"}
        if isinstance(expr, (ast.Lambda,)):
            return {"lambda"}
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            return {"comp"}
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
            return {"container"}
        return {UNKNOWN}


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
