"""Lint-pass benchmark: cold vs. warm fact-cache wall-clock.

The two-tier semantic cache exists to make ``repro-lint --semantic``
cheap enough for CI and pre-commit: fact extraction dominates the cold
pass, and a byte-identical rerun should pay only for JSON loading plus
the program-scope rules (SIM104/SIM105, SIM3xx), which are recomputed
every pass by design.  This module measures that contract over the
full default tree with all four families enabled and emits a small
JSON document (``BENCH_PR9.json`` in CI) so regressions in either the
cold cost or the warm hit-rate show up as artifact diffs::

    python -m repro.lint.bench --json BENCH_PR9.json

The warm pass is asserted to serve every fact and finding from cache;
a partial hit-rate means the cache key went unstable (facts no longer
JSON-round-trip, or the rules signature churned), which silently turns
every CI lint run into a cold one.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.lint.engine import lint_paths

DEFAULT_PATHS = ["src", "benchmarks", "examples"]


def _timed_pass(paths, cache_dir: Path) -> dict:
    start = time.perf_counter()
    result = lint_paths(
        paths,
        semantic=True,
        use_cache=True,
        cache_file=cache_dir / "lint-cache.json",
        semantic_cache_file=cache_dir / "semantic-cache.json",
    )
    elapsed = time.perf_counter() - start
    return {
        "wall_s": round(elapsed, 4),
        "files_checked": result.files_checked,
        "files_from_cache": result.files_from_cache,
        "modules": result.semantic_modules,
        "facts_from_cache": result.semantic_facts_from_cache,
        "facts_computed": result.semantic_facts_computed,
        "findings_from_cache": result.semantic_findings_from_cache,
        "findings_computed": result.semantic_findings_computed,
        "violations": len(result.violations),
    }


def run_bench(paths=None) -> dict:
    """Cold and warm full-tree semantic passes in a fresh cache dir."""
    paths = paths or DEFAULT_PATHS
    with tempfile.TemporaryDirectory(prefix="lint-bench-") as tmp:
        cache_dir = Path(tmp)
        cold = _timed_pass(paths, cache_dir)
        warm = _timed_pass(paths, cache_dir)
    speedup = cold["wall_s"] / warm["wall_s"] if warm["wall_s"] else None
    return {
        "benchmark": "lint-semantic-cache",
        "paths": list(paths),
        "cold": cold,
        "warm": warm,
        "speedup": round(speedup, 2) if speedup else None,
        "warm_fully_cached": (warm["facts_computed"] == 0
                              and warm["findings_computed"] == 0),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.bench",
        description="cold vs. warm semantic-lint wall-clock benchmark")
    parser.add_argument("paths", nargs="*", default=None,
                        help=f"trees to lint (default: "
                             f"{' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the report as JSON")
    args = parser.parse_args(argv)

    report = run_bench(args.paths or None)
    print(f"cold: {report['cold']['wall_s']:.2f}s "
          f"({report['cold']['facts_computed']} facts computed), "
          f"warm: {report['warm']['wall_s']:.2f}s "
          f"({report['warm']['facts_from_cache']} facts cached), "
          f"speedup {report['speedup']}x")
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
    if not report["warm_fully_cached"]:
        print("warm pass recomputed facts or findings: the cache key "
              "is unstable", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
