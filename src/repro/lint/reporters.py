"""Violation reporters: human text and machine JSON."""

from __future__ import annotations

import json

from repro.lint.core import all_rules
from repro.lint.engine import LintResult


def render_text(result: LintResult) -> str:
    lines = [violation.format() for violation in result.violations]
    cached = (f", {result.files_from_cache} from cache"
              if result.files_from_cache else "")
    noun = "violation" if len(result.violations) == 1 else "violations"
    lines.append(f"{len(result.violations)} {noun} "
                 f"({result.files_checked} files checked{cached})")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    return json.dumps({
        "violations": [violation.as_dict()
                       for violation in result.violations],
        "files_checked": result.files_checked,
        "files_from_cache": result.files_from_cache,
        "ok": result.ok,
    }, indent=2)


def render_rule_list() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.name}")
        lines.append(f"        {rule.description}")
    return "\n".join(lines)


REPORTERS = {"text": render_text, "json": render_json}
