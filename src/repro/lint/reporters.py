"""Violation reporters: human text, machine JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json

from repro.lint.core import all_rules
from repro.lint.engine import LintResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def render_text(result: LintResult) -> str:
    lines = [violation.format() for violation in result.violations]
    cached = (f", {result.files_from_cache} from cache"
              if result.files_from_cache else "")
    noun = "violation" if len(result.violations) == 1 else "violations"
    lines.append(f"{len(result.violations)} {noun} "
                 f"({result.files_checked} files checked{cached})")
    if result.semantic_enabled:
        lines.append(
            f"semantic: {result.semantic_modules} modules, facts "
            f"{result.semantic_facts_from_cache} cached / "
            f"{result.semantic_facts_computed} computed, findings "
            f"{result.semantic_findings_from_cache} cached / "
            f"{result.semantic_findings_computed} computed")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "violations": [violation.as_dict()
                       for violation in result.violations],
        "files_checked": result.files_checked,
        "files_from_cache": result.files_from_cache,
        "ok": result.ok,
    }
    if result.semantic_enabled:
        payload["semantic"] = {
            "modules": result.semantic_modules,
            "facts_from_cache": result.semantic_facts_from_cache,
            "facts_computed": result.semantic_facts_computed,
            "findings_from_cache": result.semantic_findings_from_cache,
            "findings_computed": result.semantic_findings_computed,
        }
    return json.dumps(payload, indent=2)


def _catalogue():
    """Every known rule (file, project and semantic), sorted by code."""
    from repro.lint.semantic.rules import semantic_rules
    return sorted(all_rules() + list(semantic_rules()),
                  key=lambda rule: rule.code)


def sarif_payload(result: LintResult) -> dict:
    """SARIF 2.1.0 log for GitHub code scanning upload."""
    rules = [{
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.description},
        "defaultConfiguration": {"level": "error"},
    } for rule in _catalogue()]
    known_ids = {rule["id"] for rule in rules}
    results = []
    for violation in result.violations:
        entry = {
            "ruleId": violation.rule,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(violation.line, 1),
                        # SARIF columns are 1-based; ours are 0-based.
                        "startColumn": violation.col + 1,
                    },
                },
            }],
        }
        if violation.rule in known_ids:
            entry["ruleIndex"] = sorted(known_ids).index(violation.rule)
        results.append(entry)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri":
                    "https://example.invalid/tcor-repro/lint",
                "rules": rules,
            }},
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def render_sarif(result: LintResult) -> str:
    return json.dumps(sarif_payload(result), indent=2)


_FAMILIES = {
    "SIM0": "file/project rule (always on)",
    "SIM1": "whole-program semantic rule (--semantic)",
    "SIM2": "async-concurrency rule (--semantic)",
    "SIM3": "contract-analysis rule (--semantic)",
}


def render_explain(code: str) -> str | None:
    """Full documentation for one rule, or ``None`` if unknown.

    The rule's class docstring (falling back to its defining module's
    docstring) is the authoritative long-form description — the same
    text DESIGN.md quotes from.
    """
    import inspect
    import sys

    for rule in _catalogue():
        if rule.code != code:
            continue
        doc = type(rule).__doc__  # not getdoc(): no MRO inheritance
        doc = inspect.cleandoc(doc) if doc else \
            inspect.getdoc(sys.modules[type(rule).__module__])
        family = _FAMILIES.get(code[:4], "rule")
        scope = getattr(rule, "scope", None)
        header = f"{rule.code} ({rule.name}) — {family}"
        if scope:
            header += f", scope={scope}"
        return "\n".join([header, f"  {rule.description}", "",
                          doc or "(no documentation)"])
    return None


def render_rule_list() -> str:
    lines = []
    for rule in _catalogue():
        lines.append(f"{rule.code}  {rule.name}")
        lines.append(f"        {rule.description}")
    return "\n".join(lines)


REPORTERS = {"text": render_text, "json": render_json,
             "sarif": render_sarif}
