"""repro.lint — simulator-aware static analysis.

An AST-based lint pass with rules specific to a cache-simulator oracle:
determinism (no module-global RNG), stats conservation (every counter is
incremented and surfaced), and configuration legality (cache geometries
the indexing hardware can actually build).  See ``repro.lint.rules`` for
the rule catalogue and ``python -m repro.lint --list-rules``.
"""

from repro.lint.core import (
    FileContext,
    FileRule,
    ProjectRule,
    Rule,
    Violation,
    all_rules,
    get_rule,
    register,
)
from repro.lint.engine import LintResult, lint_paths

__all__ = [
    "FileContext",
    "FileRule",
    "LintResult",
    "ProjectRule",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_paths",
    "register",
]
