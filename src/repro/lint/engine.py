"""File discovery, per-file result caching, and the lint pass itself.

The cache (``.lint-cache.json``, git-ignored) maps each file's content
hash to its violations and its project-rule facts, keyed by a signature
of the lint package's own sources — editing any rule invalidates every
cached entry.  Unchanged files are replayed without re-parsing, so the
CI pass is incremental in local use.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.core import (FileContext, FileRule, ProjectRule, Violation,
                             all_rules, parse_suppressions)

CACHE_VERSION = 1
_SKIP_DIR_PARTS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache",
                   ".benchmarks"}


@dataclass
class LintResult:
    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    files_from_cache: int = 0
    # Semantic pass bookkeeping (zeros unless semantic=True).
    semantic_enabled: bool = False
    semantic_modules: int = 0
    semantic_facts_from_cache: int = 0
    semantic_facts_computed: int = 0
    semantic_findings_from_cache: int = 0
    semantic_findings_computed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def discover_files(paths: list[str]) -> list[Path]:
    """Every ``*.py`` under the given files/directories, sorted.

    A path that does not exist raises: a typo'd CI invocation must not
    pass vacuously on zero files.
    """
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"lint path does not exist: {raw}")
        if path.is_file() and path.suffix == ".py":
            found.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = set(candidate.parts)
                if parts & _SKIP_DIR_PARTS:
                    continue
                if any(part.endswith(".egg-info") for part in candidate.parts):
                    continue
                found.add(candidate)
    return sorted(found)


def rules_signature() -> str:
    """Hash of the lint package's own sources (rule-edit invalidation)."""
    package_dir = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for source in sorted(package_dir.rglob("*.py")):
        digest.update(source.name.encode())
        digest.update(source.read_bytes())
    return digest.hexdigest()


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


class _Cache:
    def __init__(self, cache_file: Path | None, signature: str) -> None:
        self.cache_file = cache_file
        self.signature = signature
        self.entries: dict[str, dict] = {}
        self.dirty = False
        if cache_file is not None and cache_file.is_file():
            try:
                payload = json.loads(cache_file.read_text())
            except (OSError, ValueError):
                payload = {}
            if payload.get("version") == CACHE_VERSION \
                    and payload.get("signature") == signature:
                self.entries = payload.get("files", {})

    def get(self, rel: str, sha: str) -> dict | None:
        entry = self.entries.get(rel)
        return entry if entry is not None and entry.get("sha") == sha else None

    def put(self, rel: str, entry: dict) -> None:
        self.entries[rel] = entry
        self.dirty = True

    def save(self) -> None:
        if self.cache_file is None or not self.dirty:
            return
        payload = {"version": CACHE_VERSION, "signature": self.signature,
                   "files": self.entries}
        try:
            self.cache_file.write_text(json.dumps(payload))
        except OSError:
            pass  # caching is best-effort; the lint result is unaffected


def lint_paths(paths: list[str], *, root: str | os.PathLike | None = None,
               select: set[str] | None = None,
               ignore: set[str] | None = None,
               use_cache: bool = True,
               cache_file: str | os.PathLike | None = None,
               semantic: bool = False,
               semantic_cache_file: str | os.PathLike | None = None
               ) -> LintResult:
    """Run every registered rule over the Python files under ``paths``.

    With ``semantic=True`` the whole-program families (SIM1xx, SIM2xx,
    SIM3xx) run on top; their facts/findings cache in
    ``semantic_cache_file`` (default
    ``<root>/.lint-semantic-cache.json``).
    """
    root_path = Path(root) if root is not None else Path.cwd()
    rules = all_rules()
    if select:
        rules = [rule for rule in rules if rule.code in select]
    if ignore:
        rules = [rule for rule in rules if rule.code not in ignore]
    file_rules = [rule for rule in rules if isinstance(rule, FileRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]

    cache_path = Path(cache_file) if cache_file is not None \
        else root_path / ".lint-cache.json"
    # A filtered run would poison the cache with partial results.
    cache_enabled = use_cache and not select and not ignore
    cache = _Cache(cache_path if cache_enabled else None, rules_signature())

    result = LintResult()
    facts: dict[str, dict[str, object]] = {r.code: {} for r in project_rules}
    suppressions: dict[str, tuple[dict[int, set[str]], set[str]]] = {}
    sources: dict[str, str] = {}

    for path in discover_files(paths):
        rel = _relpath(path, root_path)
        source = path.read_text(encoding="utf-8", errors="replace")
        sha = hashlib.sha256(source.encode("utf-8", "replace")).hexdigest()
        result.files_checked += 1
        sources[rel] = source

        cached = cache.get(rel, sha)
        if cached is not None:
            result.files_from_cache += 1
            result.violations.extend(
                Violation(path=rel, line=line, col=col, rule=rule,
                          message=message)
                for rule, line, col, message in cached["violations"]
            )
            for code, file_facts in cached.get("facts", {}).items():
                if code in facts:
                    facts[code][rel] = file_facts
            suppressions[rel] = _decode_suppressions(cached)
            continue

        try:
            ctx = FileContext.parse(rel, source)
        except SyntaxError as error:
            result.violations.append(Violation(
                path=rel, line=error.lineno or 1, col=error.offset or 0,
                rule="PARSE", message=f"syntax error: {error.msg}",
            ))
            cache.put(rel, {"sha": sha, "violations": [
                ["PARSE", error.lineno or 1, error.offset or 0,
                 f"syntax error: {error.msg}"]], "facts": {},
                "line_suppress": {}, "file_suppress": []})
            continue

        file_violations: list[Violation] = []
        for rule in file_rules:
            for violation in rule.check(ctx):
                if not ctx.is_suppressed(violation.rule, violation.line):
                    file_violations.append(violation)
        entry_facts = {}
        for rule in project_rules:
            collected = rule.collect(ctx)
            facts[rule.code][rel] = collected
            entry_facts[rule.code] = collected

        suppressions[rel] = (ctx.line_suppressions, ctx.file_suppressions)
        result.violations.extend(file_violations)
        cache.put(rel, {
            "sha": sha,
            "violations": [[v.rule, v.line, v.col, v.message]
                           for v in file_violations],
            "facts": entry_facts,
            "line_suppress": {str(line): sorted(codes) for line, codes
                              in ctx.line_suppressions.items()},
            "file_suppress": sorted(ctx.file_suppressions),
        })

    for rule in project_rules:
        for violation in rule.finalize(facts[rule.code]):
            if _suppressed(suppressions, violation):
                continue
            result.violations.append(violation)

    if semantic:
        from repro.lint.semantic.engine import (SemanticCache,
                                                semantic_pass)
        semantic_path = Path(semantic_cache_file) \
            if semantic_cache_file is not None \
            else root_path / ".lint-semantic-cache.json"
        semantic_cache = SemanticCache(
            semantic_path if use_cache else None, rules_signature())
        semantic_result = semantic_pass(sources, cache=semantic_cache,
                                        select=select, ignore=ignore)
        result.semantic_enabled = True
        result.semantic_modules = semantic_result.modules_analyzed
        result.semantic_facts_from_cache = semantic_result.facts_from_cache
        result.semantic_facts_computed = semantic_result.facts_computed
        result.semantic_findings_from_cache = \
            semantic_result.findings_from_cache
        result.semantic_findings_computed = \
            semantic_result.findings_computed
        for violation in semantic_result.violations:
            if not _suppressed(suppressions, violation):
                result.violations.append(violation)

    cache.save()
    result.violations.sort()
    return result


def _suppressed(suppressions: dict[str, tuple[dict[int, set[str]],
                                              set[str]]],
                violation: Violation) -> bool:
    per_line, whole_file = suppressions.get(violation.path, ({}, set()))
    if violation.rule in whole_file or "ALL" in whole_file:
        return True
    codes = per_line.get(violation.line, set())
    return violation.rule in codes or "ALL" in codes


def _decode_suppressions(entry: dict) -> tuple[dict[int, set[str]], set[str]]:
    per_line = {int(line): set(codes)
                for line, codes in entry.get("line_suppress", {}).items()}
    return per_line, set(entry.get("file_suppress", ()))


# ----------------------------------------------------------------------
# Baselines: land strict rules without blocking unrelated work
# ----------------------------------------------------------------------
BASELINE_VERSION = 1


def _baseline_key(violation: Violation) -> tuple[str, str, str]:
    # Line numbers drift with unrelated edits; identity is
    # (file, rule, message).  Multiplicity is honoured via counting.
    return (violation.path, violation.rule, violation.message)


def write_baseline(result: LintResult,
                   path: str | os.PathLike) -> int:
    """Record the run's findings as the accepted baseline."""
    findings = [{"path": v.path, "rule": v.rule, "line": v.line,
                 "message": v.message} for v in result.violations]
    payload = {"version": BASELINE_VERSION, "findings": findings}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return len(findings)


def load_baseline(path: str | os.PathLike) -> dict[tuple, int]:
    """Accepted finding keys with multiplicities; {} for a missing or
    unreadable file (every finding then counts as new)."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return {}
    counts: dict[tuple, int] = {}
    for finding in payload.get("findings", ()):
        key = (finding.get("path", ""), finding.get("rule", ""),
               finding.get("message", ""))
        counts[key] = counts.get(key, 0) + 1
    return counts


def apply_baseline(result: LintResult,
                   baseline: dict[tuple, int]
                   ) -> tuple[list[Violation], int]:
    """(new violations, number suppressed as already-baselined)."""
    remaining = dict(baseline)
    new: list[Violation] = []
    matched = 0
    for violation in result.violations:
        key = _baseline_key(violation)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            matched += 1
        else:
            new.append(violation)
    return new, matched
