"""Async concurrency analysis (the SIM2xx rule family).

The PR 4 semantic engine models *space* (call graph, per-function CFG,
dataflow origins); this package adds *time on the event loop*:

- :mod:`repro.lint.concurrency.suspension` — augments the CFG with
  suspension points (``await`` / ``async for`` / ``async with``) and
  answers path queries across them;
- :mod:`repro.lint.concurrency.facts` — the JSON-serializable async
  summary extracted per function (suspensions, atomicity gaps, lock
  spans, task spawns, executor dispatches), layered into the same
  two-tier fact cache as the SIM1xx facts;
- rule modules — :mod:`~repro.lint.concurrency.blocking` (SIM201),
  :mod:`~repro.lint.concurrency.atomicity` (SIM202),
  :mod:`~repro.lint.concurrency.tasks` (SIM203/SIM204),
  :mod:`~repro.lint.concurrency.locks` (SIM205) and
  :mod:`~repro.lint.concurrency.obs_boundary` (SIM206), registered in
  the shared semantic-rule registry so SARIF, baselines, suppression
  comments and ``repro-lint --semantic`` treat both families as one
  analysis stack.
"""

from repro.lint.concurrency.suspension import (SuspensionCFG,
                                               stmt_suspension_kind)

__all__ = ["SuspensionCFG", "stmt_suspension_kind"]
