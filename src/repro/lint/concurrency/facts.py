"""Async fact extraction: the concurrency summary of one function.

Layered into :func:`repro.lint.semantic.model.extract_module_facts` so
the SIM2xx rules ride the same two-tier cache as SIM1xx: everything
returned here is JSON-serializable and derived from one file alone.

Per *coroutine* (``async def``), the summary records:

- ``suspensions`` — every point the frame can yield to the event loop
  (see :mod:`repro.lint.concurrency.suspension`);
- ``gaps`` — read→write pairs on ``self.<attr>`` state where some CFG
  path between the read and the write crosses a suspension point and
  no ``async with <lock>`` span covers both ends: the raw material of
  SIM202 (the rule filters by the attribute's inferred type);
- ``lock_spans`` — ``with``/``async with`` regions over lock-like
  context managers, for SIM202's exoneration and SIM205's discipline
  checks.

Per function of *any* color:

- ``task_spawns`` — ``create_task``/``ensure_future`` sites with where
  the task object went (awaited, stored, dropped …) for SIM203;
- ``dispatches`` — ``run_in_executor``/``to_thread`` sites with the
  executor argument's dataflow origin and the dispatched callable, for
  SIM205/SIM206.

Class-level: ``lock_attrs_of_class`` / ``lock_globals`` resolve lock
constructor calls through the import aliases so ``threading.Lock`` and
``asyncio.Lock`` stay distinguishable after the leaf name collides.
"""

from __future__ import annotations

import ast

# Module (not name) import: ``suspension`` itself imports the semantic
# CFG, whose package __init__ pulls in the model, which pulls in this
# module — binding the module object keeps that cycle lazy.
from repro.lint.concurrency import suspension
from repro.lint.core import dotted_name
from repro.lint.semantic.cfg import CFG

# Canonical constructors whose instances gate critical sections.
THREADING_LOCKS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Semaphore",
    "threading.BoundedSemaphore", "threading.Condition",
    "multiprocessing.Lock", "multiprocessing.RLock",
})
ASYNC_LOCKS = frozenset({
    "asyncio.Lock", "asyncio.Semaphore", "asyncio.BoundedSemaphore",
    "asyncio.Condition",
})
LOCK_TYPES = THREADING_LOCKS | ASYNC_LOCKS

# Method leaves that mutate their receiver in place (dict / list / set /
# deque / OrderedDict vocabulary used across the scheduler and registry).
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "add", "insert",
    "remove", "discard", "pop", "popleft", "popitem", "clear",
    "update", "setdefault", "move_to_end", "rotate",
})

TASK_SPAWN_APIS = frozenset({"asyncio.create_task",
                             "asyncio.ensure_future"})
_SPAWN_LEAVES = frozenset({"create_task", "ensure_future"})

_MAX_GAP_PAIRS = 256  # defensive bound on the read x write product


def canonical_dotted(dotted: str, aliases: dict[str, str]) -> str:
    """Rewrite a dotted chain's head through the import aliases."""
    head, _, rest = dotted.partition(".")
    head = aliases.get(head, head)
    return f"{head}.{rest}" if rest else head


def _constructed_lock(value: ast.expr,
                      aliases: dict[str, str]) -> str | None:
    if not isinstance(value, ast.Call):
        return None
    dotted = dotted_name(value.func)
    if dotted is None:
        return None
    canonical = canonical_dotted(dotted, aliases)
    return canonical if canonical in LOCK_TYPES else None


def lock_attrs_of_class(node: ast.ClassDef,
                        aliases: dict[str, str]) -> dict[str, str]:
    """``{attr: canonical lock type}`` for ``self.X = <Lock>()`` inits."""
    locks: dict[str, str] = {}
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                or item.name not in ("__init__", "__post_init__"):
            continue
        for sub in ast.walk(item):
            if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
                continue
            targets = sub.targets if isinstance(sub, ast.Assign) \
                else [sub.target]
            canonical = _constructed_lock(sub.value, aliases) \
                if sub.value is not None else None
            if canonical is None:
                continue
            for target in targets:
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    locks[target.attr] = canonical
    return locks


def lock_globals(tree: ast.Module,
                 aliases: dict[str, str]) -> dict[str, str]:
    """Module-level ``NAME = threading.Lock()`` style bindings."""
    locks: dict[str, str] = {}
    for node in tree.body:
        targets: list[ast.expr] = []
        value = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        canonical = _constructed_lock(value, aliases) \
            if value is not None else None
        if canonical is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                locks[target.id] = canonical
    return locks


def _lockish_chain(chain: str, lock_attrs: dict[str, str],
                   module_locks: dict[str, str]) -> str | None:
    """The canonical (or guessed) lock type a context chain points at."""
    parts = chain.split(".")
    if parts[0] == "self" and len(parts) == 2:
        known = lock_attrs.get(parts[1])
        if known:
            return known
    elif len(parts) == 1:
        known = module_locks.get(parts[0])
        if known:
            return known
    if "lock" in parts[-1].lower() or "sem" in parts[-1].lower():
        return "guess"
    return None


# ----------------------------------------------------------------------
# Spawn / dispatch sites (any function color)
# ----------------------------------------------------------------------

def spawn_entry(node: ast.Call, raw: str, aliases: dict[str, str],
                parents: dict[int, ast.AST]) -> dict | None:
    """A ``task_spawns`` record for one call, or None if not a spawn."""
    canonical = canonical_dotted(raw, aliases)
    leaf = raw.split(".")[-1]
    if canonical not in TASK_SPAWN_APIS and leaf not in _SPAWN_LEAVES:
        return None
    parent = parents.get(id(node))
    sink = "other"
    target: str | None = None
    if isinstance(parent, ast.Await):
        sink = "awaited"
    elif isinstance(parent, ast.Expr):
        sink = "dropped"
    elif isinstance(parent, ast.Return):
        sink = "returned"
    elif isinstance(parent, (ast.Call, ast.Tuple, ast.List, ast.Set,
                             ast.GeneratorExp, ast.ListComp)):
        sink = "handed_off"  # gather(...), task groups, containers
    elif isinstance(parent, ast.Assign):
        if len(parent.targets) == 1 \
                and isinstance(parent.targets[0], ast.Name):
            sink, target = "local", parent.targets[0].id
        elif len(parent.targets) == 1 \
                and isinstance(parent.targets[0], ast.Attribute):
            sink = "stored"
        else:
            sink = "local"
    elif isinstance(parent, ast.NamedExpr):
        sink, target = "local", parent.target.id \
            if isinstance(parent.target, ast.Name) else None
    elif isinstance(parent, (ast.AnnAssign, ast.AugAssign)):
        sink = "stored" if isinstance(parent.target, ast.Attribute) \
            else "local"
        if isinstance(parent.target, ast.Name):
            target = parent.target.id
    return {"api": leaf, "lineno": node.lineno, "col": node.col_offset,
            "sink": sink, "target": target}


def dispatch_entry(node: ast.Call, raw: str, aliases: dict[str, str],
                   origins) -> dict | None:
    """A ``dispatches`` record for executor hand-offs, or None.

    ``origins`` is a callable ``(expr, near_node) -> set[str]`` — the
    enclosing extractor's flow-sensitive origin query.
    """
    canonical = canonical_dotted(raw, aliases)
    leaf = raw.split(".")[-1]
    fn_arg: ast.expr | None = None
    executor_origin = "thread"
    if canonical == "asyncio.to_thread":
        fn_arg = node.args[0] if node.args else None
    elif leaf == "run_in_executor":
        if len(node.args) >= 2:
            fn_arg = node.args[1]
        pool = node.args[0] if node.args else None
        if pool is None or (isinstance(pool, ast.Constant)
                            and pool.value is None):
            executor_origin = "thread"
        else:
            tags = origins(pool, node)
            if any("ThreadPoolExecutor" in tag for tag in tags):
                executor_origin = "thread"
            elif any("ProcessPoolExecutor" in tag for tag in tags):
                executor_origin = "process"
            else:
                executor_origin = "unknown"
    else:
        return None
    target = dotted_name(fn_arg) if fn_arg is not None else None
    return {"api": leaf, "lineno": node.lineno, "col": node.col_offset,
            "executor": executor_origin, "target": target}


# ----------------------------------------------------------------------
# The coroutine summary (suspensions, shared-state gaps, lock spans)
# ----------------------------------------------------------------------

def _self_chain(node: ast.expr) -> str | None:
    """``self.<attr>`` for a direct self attribute, else None."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return f"self.{node.attr}"
    return None


def _stmt_accesses(stmt: ast.stmt) -> list[tuple[str, str]]:
    """(chain, "read"|"write") events for one statement's own exprs."""
    events: list[tuple[str, str]] = []
    stack: list[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)) and node is not stmt:
            continue  # nested scopes summarize separately
        if node is not stmt and isinstance(node, ast.stmt):
            continue  # nested statements live in their own blocks
        if isinstance(node, ast.Attribute):
            chain = _self_chain(node)
            if chain is not None:
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    events.append((chain, "write"))
                else:
                    events.append((chain, "read"))
        elif isinstance(node, ast.Subscript):
            chain = _self_chain(node.value)
            if chain is not None \
                    and isinstance(node.ctx, (ast.Store, ast.Del)):
                events.append((chain, "write"))
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in MUTATOR_METHODS:
                receiver = func.value
                if isinstance(receiver, ast.Subscript):
                    receiver = receiver.value  # self._queues[p].append
                chain = _self_chain(receiver)
                if chain is not None:
                    events.append((chain, "write"))
        stack.extend(ast.iter_child_nodes(node))
    return events


def _lock_spans(stmts: list[ast.stmt], lock_attrs: dict[str, str],
                module_locks: dict[str, str]) -> list[dict]:
    spans: list[dict] = []
    for stmt in stmts:
        if not isinstance(stmt, (ast.With, ast.AsyncWith)):
            continue
        for item in stmt.items:
            context = item.context_expr
            if isinstance(context, ast.Call):
                context = context.func  # with self._lock.acquire_ctx()
            dotted = dotted_name(context)
            if dotted is None:
                continue
            lock_type = _lockish_chain(dotted, lock_attrs, module_locks)
            if lock_type is None:
                continue
            spans.append({
                "chain": dotted,
                "lock_type": lock_type,
                "kind": "async_with" if isinstance(stmt, ast.AsyncWith)
                        else "with",
                "start": stmt.lineno,
                "end": getattr(stmt, "end_lineno", stmt.lineno),
            })
    return spans


def _async_lock_covers(spans: list[dict], first: int, last: int) -> bool:
    for span in spans:
        if span["kind"] != "async_with":
            continue
        if span["lock_type"] != "guess" \
                and span["lock_type"] not in ASYNC_LOCKS:
            continue
        if span["start"] <= first and last <= span["end"]:
            return True
    return False


def async_summary(func: ast.AsyncFunctionDef, cfg: CFG,
                  lock_attrs: dict[str, str],
                  module_locks: dict[str, str]) -> dict:
    """The coroutine-only fact blob (suspensions, gaps, lock spans)."""
    scfg = suspension.SuspensionCFG(func, cfg)
    suspensions = [
        {"lineno": getattr(stmt, "lineno", 0), "kind": kind}
        for stmt, kind in scfg.suspension_points()]

    placed: list[ast.stmt] = [stmt for block in cfg.blocks.values()
                              for stmt in block.stmts]
    spans = _lock_spans(placed, lock_attrs, module_locks)

    reads: dict[str, list[ast.stmt]] = {}
    writes: dict[str, list[ast.stmt]] = {}
    for stmt in placed:
        events = _stmt_accesses(stmt)
        written = {chain for chain, mode in events if mode == "write"}
        for chain, mode in events:
            if mode == "read" and chain in written:
                # The statement both reads and writes the chain
                # (``self.x += 1``, ``self.d[k] = v``): it commits in
                # one step on the loop, so it is not a gap *source*.
                continue
            bucket = reads if mode == "read" else writes
            sites = bucket.setdefault(chain, [])
            if stmt not in sites:
                sites.append(stmt)

    gaps: list[dict] = []
    for chain, write_sites in sorted(writes.items()):
        read_sites = reads.get(chain, [])
        seen_writes: set[int] = set()
        pairs = 0
        for write_stmt in write_sites:
            if id(write_stmt) in seen_writes:
                continue
            for read_stmt in read_sites:
                if pairs >= _MAX_GAP_PAIRS:
                    break
                pairs += 1
                if read_stmt is write_stmt:
                    continue
                witness = scfg.suspension_between(read_stmt, write_stmt)
                if witness is None:
                    continue
                read_line = getattr(read_stmt, "lineno", 0)
                write_line = getattr(write_stmt, "lineno", 0)
                if _async_lock_covers(spans, min(read_line, write_line),
                                      max(read_line, write_line)):
                    continue
                seen_writes.add(id(write_stmt))
                gaps.append({
                    "chain": chain,
                    "attr": chain.split(".", 1)[1],
                    "read_line": read_line,
                    "write_line": write_line,
                    "susp_line": getattr(witness, "lineno", 0),
                    "susp_kind": scfg.kind_of_stmt.get(id(witness), "?"),
                })
                break

    gaps.sort(key=lambda gap: (gap["chain"], gap["write_line"]))
    return {"suspensions": suspensions, "gaps": gaps,
            "lock_spans": spans}
