"""Suspension-point augmentation of the per-function CFG.

A coroutine's basic blocks (from :func:`repro.lint.semantic.cfg.
build_cfg`) say where control *can* flow; this layer says where control
can *leave the function entirely* and let arbitrary other tasks run:

- ``await <expr>`` anywhere in a statement's own (header) expressions,
  including awaits nested in comprehensions;
- ``async for`` — the iterator suspends at every ``__anext__``;
- ``async with`` — ``__aenter__``/``__aexit__`` suspend;
- ``async for`` clauses inside comprehensions (``[x async for x ...]``).

:class:`SuspensionCFG` indexes statements by (block, position) so the
atomicity rule can ask the question that matters: *is there a path from
statement A to statement B that crosses a suspension point?*  If there
is, any invariant linking A's read to B's write can be broken by a task
interleaved at the suspension — the async analogue of a data race.

The query is deliberately conservative in one direction: a suspension
*on A itself* counts (``v = await f(self.shared)`` ships the read
across the loop boundary before the write commits), while A == B (a
single ``+=`` statement) never does — a statement with no await inside
it runs atomically on the event loop.
"""

from __future__ import annotations

import ast

from repro.lint.semantic.cfg import CFG, build_cfg
from repro.lint.semantic.dataflow import _header_exprs

SUSPEND_AWAIT = "await"
SUSPEND_ASYNC_FOR = "async_for"
SUSPEND_ASYNC_WITH = "async_with"
SUSPEND_ASYNC_COMP = "async_comprehension"


def _expr_suspends(expr: ast.expr) -> str | None:
    """The suspension kind hiding in one expression, if any.

    Nested function bodies (lambdas run synchronously only when called,
    nested defs have their own CFG) do not suspend the enclosing frame.
    """
    stack: list[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Await):
            return SUSPEND_AWAIT
        if isinstance(node, ast.comprehension) and node.is_async:
            return SUSPEND_ASYNC_COMP
        stack.extend(ast.iter_child_nodes(node))
    return None


def stmt_suspension_kind(stmt: ast.stmt) -> str | None:
    """How (whether) one statement can suspend the coroutine frame.

    Only the statement's *own* evaluation counts — an ``await`` inside
    an ``if`` body belongs to that body's statement, which sits in its
    own CFG block.
    """
    if isinstance(stmt, ast.AsyncFor):
        return SUSPEND_ASYNC_FOR
    if isinstance(stmt, ast.AsyncWith):
        return SUSPEND_ASYNC_WITH
    for header in _header_exprs(stmt):
        kind = _expr_suspends(header)
        if kind is not None:
            return kind
    return None


class SuspensionCFG:
    """A CFG plus a per-statement suspension index and path queries."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef,
                 cfg: CFG | None = None) -> None:
        self.func = func
        self.cfg = cfg if cfg is not None else build_cfg(func)
        # id(stmt) -> suspension kind, for suspending statements only.
        self.kind_of_stmt: dict[int, str] = {}
        # id(stmt) -> (bid, position within block), every placed stmt.
        self._pos: dict[int, tuple[int, int]] = {}
        for bid, block in self.cfg.blocks.items():
            for pos, stmt in enumerate(block.stmts):
                self._pos[id(stmt)] = (bid, pos)
                kind = stmt_suspension_kind(stmt)
                if kind is not None:
                    self.kind_of_stmt[id(stmt)] = kind
        # Blocks that contain at least one suspension point.
        self._suspending_blocks = {
            self._pos[sid][0] for sid in self.kind_of_stmt}

    # -- queries -------------------------------------------------------
    def suspension_points(self) -> list[tuple[ast.stmt, str]]:
        """Every suspending statement with its kind, in source order."""
        points = []
        for block in self.cfg.blocks.values():
            for stmt in block.stmts:
                kind = self.kind_of_stmt.get(id(stmt))
                if kind is not None:
                    points.append((stmt, kind))
        points.sort(key=lambda pair: getattr(pair[0], "lineno", 0))
        return points

    def suspends(self, stmt: ast.stmt) -> bool:
        return id(stmt) in self.kind_of_stmt

    def _block_suspends_in_range(self, bid: int, start: int,
                                 stop: int | None) -> ast.stmt | None:
        """First suspending statement in ``block.stmts[start:stop]``."""
        stmts = self.cfg.blocks[bid].stmts
        for stmt in stmts[start:stop]:
            if id(stmt) in self.kind_of_stmt:
                return stmt
        return None

    def suspension_between(self, src: ast.stmt,
                           dst: ast.stmt) -> ast.stmt | None:
        """A suspending statement on some path from ``src`` to ``dst``.

        Counts a suspension on ``src`` itself (the read is shipped
        across the loop boundary) but not one on ``dst`` alone, and
        never for ``src is dst``.  Returns the witness statement, or
        ``None`` when every path is suspension-free.
        """
        if src is dst:
            return None
        src_loc = self._pos.get(id(src))
        dst_loc = self._pos.get(id(dst))
        if src_loc is None or dst_loc is None:
            return None
        src_bid, src_pos = src_loc
        dst_bid, dst_pos = dst_loc

        if src_bid == dst_bid and src_pos < dst_pos:
            # Straight-line: suspensions at src..dst-1 are crossed.
            witness = self._block_suspends_in_range(src_bid, src_pos,
                                                    dst_pos)
            if witness is not None:
                return witness
            # A back edge may still route src -> ... -> dst through a
            # suspension; fall through to the graph search.

        # From src's block: the tail of src's own block (src included —
        # its own await counts) feeds the search frontier.
        witness = self._block_suspends_in_range(src_bid, src_pos, None)
        frontier = list(self.cfg.blocks[src_bid].succs)
        seen: set[int] = set()
        while frontier:
            bid = frontier.pop()
            if bid in seen:
                continue
            seen.add(bid)
            if bid == dst_bid:
                # Only the prefix before dst is on this path.
                found = self._block_suspends_in_range(bid, 0, dst_pos)
                if found is not None:
                    return found
                # dst's block reached without a suspension so far; keep
                # exploring other paths into it.
            elif bid in self._suspending_blocks:
                found = self._block_suspends_in_range(bid, 0, None)
                if found is not None and self._reaches(bid, dst_bid):
                    return found
            frontier.extend(self.cfg.blocks[bid].succs)
        # The tail witness (src's own await, or one later in its block)
        # only matters if control can actually route from src's block
        # back around to dst — for src_bid == dst_bid that means a real
        # cycle through the block, not mere co-residence.
        if witness is not None and self._reaches_via_succs(src_bid,
                                                           dst_bid):
            return witness
        return None

    def _reaches(self, from_bid: int, to_bid: int) -> bool:
        if from_bid == to_bid:
            return True
        return self._reaches_via_succs(from_bid, to_bid)

    def _reaches_via_succs(self, from_bid: int, to_bid: int) -> bool:
        seen: set[int] = set()
        frontier = list(self.cfg.blocks[from_bid].succs)
        while frontier:
            bid = frontier.pop()
            if bid == to_bid:
                return True
            if bid in seen:
                continue
            seen.add(bid)
            frontier.extend(self.cfg.blocks[bid].succs)
        return False
