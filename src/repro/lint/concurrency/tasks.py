"""SIM203 / SIM204 — task and coroutine lifecycle.

SIM203: ``asyncio.create_task`` / ``ensure_future`` whose return value
is discarded (or bound to a never-used name).  The event loop keeps
only a *weak* reference to scheduled tasks, so a dropped task can be
garbage-collected mid-flight, and an exception it raises is reported
nowhere until interpreter shutdown.  Storing the task, awaiting it,
returning it or handing it to ``gather``/a container all count as
keeping it alive.

SIM204: calling a coroutine function and discarding the coroutine
object — the body never runs at all.  Resolved through the project
call graph, so renamed imports and ``self.method()`` calls are caught;
wrapping the call in ``create_task``/``gather`` obviously does not
trip the rule (the coroutine has a consumer).
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.core import Violation
from repro.lint.semantic.rules import SemanticRule, register_semantic


@register_semantic
class FireAndForgetTaskRule(SemanticRule):
    code = "SIM203"
    name = "fire-and-forget-task"
    description = ("spawned task's reference (and any exception it "
                   "raises) is dropped")
    scope = "module"

    def check_module(self, program, module: str) -> Iterable[Violation]:
        facts = program.modules[module]
        path = facts["path"]
        for qual, func in facts["functions"].items():
            for spawn in func.get("task_spawns", ()):
                sink = spawn["sink"]
                if sink == "dropped":
                    yield self.violation(
                        path, spawn["lineno"], spawn["col"],
                        f"`{spawn['api']}(...)` in `{qual}` discards "
                        "the task handle; the loop holds only a weak "
                        "reference, so the task can be collected "
                        "mid-flight and its exception is lost — keep "
                        "the reference and await/cancel it, or attach "
                        "add_done_callback")
                elif sink == "local" and (spawn.get("target") in
                                          (None, "_")
                                          or spawn.get("uses", 0) == 0):
                    bound = spawn.get("target") or "_"
                    yield self.violation(
                        path, spawn["lineno"], spawn["col"],
                        f"task from `{spawn['api']}(...)` in `{qual}` "
                        f"is bound to `{bound}` but never used — the "
                        "reference dies with the frame; await/cancel "
                        "it or store it on long-lived state")


@register_semantic
class UnawaitedCoroutineRule(SemanticRule):
    code = "SIM204"
    name = "unawaited-coroutine"
    description = "coroutine object created and discarded; never runs"
    scope = "module"

    def check_module(self, program, module: str) -> Iterable[Violation]:
        facts = program.modules[module]
        path = facts["path"]
        for qual, func in facts["functions"].items():
            for call in func["calls"]:
                if not call.get("discarded") or call.get("awaited"):
                    continue
                resolved = program.resolve_call(module, qual,
                                                call["name"])
                if resolved is None:
                    continue
                target = program.function(resolved)
                if target is None or not target.get("is_async"):
                    continue
                yield self.violation(
                    path, call["lineno"], call["col"],
                    f"`{call['name']}(...)` in `{qual}` creates a "
                    f"coroutine (`{resolved.replace(':', '.')}`) and "
                    "discards it — the body never executes; await it "
                    "or schedule it with asyncio.create_task")
