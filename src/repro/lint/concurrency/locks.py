"""SIM205 — lock discipline across the sync/async boundary.

Two mirror-image mistakes:

1. a ``threading.Lock`` (or RLock/Semaphore/Condition) acquired inside
   a coroutine — ``with self._lock:`` or ``self._lock.acquire()``
   blocks the whole event loop while contended, which is precisely the
   stall the lock was supposed to localise; and
2. an ``asyncio.Lock`` held *across* an executor dispatch or pool
   submit — every other coroutine queue-jumps behind a worker-thread
   round-trip (and a drain that needs the lock can deadlock against
   the pool it is trying to empty).

Lock identity comes from the extraction layer: constructor calls are
canonicalised through the import aliases, so ``threading.Lock`` and
``asyncio.Lock`` stay distinguishable even though both leaf names are
``Lock``.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.concurrency.facts import ASYNC_LOCKS, THREADING_LOCKS
from repro.lint.core import Violation
from repro.lint.semantic.rules import SemanticRule, register_semantic


@register_semantic
class LockDisciplineRule(SemanticRule):
    code = "SIM205"
    name = "lock-discipline"
    description = ("threading lock used in a coroutine, or asyncio "
                   "lock held across an executor dispatch")
    scope = "module"

    def check_module(self, program, module: str) -> Iterable[Violation]:
        facts = program.modules[module]
        path = facts["path"]
        for qual, func in facts["functions"].items():
            blob = func.get("async")
            if not blob:
                continue
            yield from self._check_spans(program, module, path, qual,
                                         func, blob)
            yield from self._check_acquires(program, module, path,
                                            qual, func)

    def _check_spans(self, program, module: str, path: str, qual: str,
                     func: dict, blob: dict) -> Iterable[Violation]:
        dispatch_sites = [
            (entry["lineno"], entry["col"], entry["api"])
            for entry in func.get("dispatches", ())]
        dispatch_sites += [
            (entry["lineno"], entry["col"],
             f"pool {entry['method']}")
            for entry in func.get("submits", ())]
        for span in blob["lock_spans"]:
            if span["kind"] == "with" \
                    and span["lock_type"] in THREADING_LOCKS:
                yield self.violation(
                    path, span["start"], 0,
                    f"`{span['chain']}` ({span['lock_type']}) is a "
                    f"thread lock acquired inside coroutine `{qual}`; "
                    "contention blocks the whole event loop — use "
                    "asyncio.Lock for loop-side critical sections")
                continue
            if span["kind"] != "async_with" \
                    or span["lock_type"] not in ASYNC_LOCKS:
                continue
            for lineno, col, api in dispatch_sites:
                if span["start"] <= lineno <= span["end"]:
                    yield self.violation(
                        path, lineno, col,
                        f"asyncio lock `{span['chain']}` is held "
                        f"across the `{api}` hand-off in `{qual}`; "
                        "every waiter queues behind a worker "
                        "round-trip (and drain can deadlock against "
                        "the pool) — release the lock before "
                        "dispatching")

    def _check_acquires(self, program, module: str, path: str,
                        qual: str, func: dict) -> Iterable[Violation]:
        cls_name = func.get("cls")
        if cls_name is None:
            return
        for call in func["calls"]:
            raw = call["name"]
            parts = raw.split(".")
            if len(parts) != 3 or parts[0] != "self" \
                    or parts[2] != "acquire":
                continue
            lock_type = program.lock_type_of(module, cls_name, parts[1])
            if lock_type in THREADING_LOCKS:
                yield self.violation(
                    path, call["lineno"], call["col"],
                    f"`{raw}()` takes a thread lock ({lock_type}) "
                    f"inside coroutine `{qual}`; contention blocks "
                    "the whole event loop — use asyncio.Lock")
