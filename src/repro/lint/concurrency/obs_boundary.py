"""SIM206 — event-loop/pool boundary writes to obs hook state.

The obs layer's hook target (``repro.obs.trace.ACTIVE``) is installed
and restored by ``activation(...)`` on the thread that owns the scope —
in the serve stack, the event-loop thread.  A callable dispatched to a
*worker thread* (``run_in_executor`` with the default/thread executor,
``asyncio.to_thread``) that mutates that state races the loop thread's
view of the tracer: events land in a half-installed sink, or the
restore on scope exit undoes the loop's tracer instead of its own.

Process-pool hand-offs are exempt — a child process mutates its own
copy of the module (that hygiene is SIM101's territory); only
thread-executor dispatches share the interpreter with the loop.  The
write is found transitively through the call graph, so an innocent-
looking worker function that calls ``activation`` three hops down is
still caught.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.core import Violation
from repro.lint.semantic.rules import SemanticRule, register_semantic

# The hook-state globals the obs layer owns (module-qualified writes
# match by suffix so re-exports and aliased imports are covered).
HOOK_STATE_NAMES = frozenset({"ACTIVE"})


@register_semantic
class ObsBoundaryRule(SemanticRule):
    code = "SIM206"
    name = "obs-hook-state-off-loop"
    description = ("callable dispatched to a worker thread writes "
                   "event-loop-owned obs hook state")
    scope = "module"

    def check_module(self, program, module: str) -> Iterable[Violation]:
        facts = program.modules[module]
        path = facts["path"]
        for qual, func in facts["functions"].items():
            for dispatch in func.get("dispatches", ()):
                if dispatch["executor"] != "thread":
                    continue
                target = dispatch.get("target")
                if not target:
                    continue
                resolved = program.resolve_call(module, qual, target)
                if resolved is None:
                    continue
                offender = self._hook_write(program, resolved)
                if offender is None:
                    continue
                where, name = offender
                hop = "" if where == resolved \
                    else " (reached through the call graph)"
                yield self.violation(
                    path, dispatch["lineno"], dispatch["col"],
                    f"`{target}` dispatched to a worker thread writes "
                    f"obs hook state `{name}` in "
                    f"{where.replace(':', '.')}{hop}; tracer "
                    "activation must stay on the event-loop thread — "
                    "emit events instead, or activate before "
                    "dispatching")

    def _hook_write(self, program,
                    entry: str) -> tuple[str, str] | None:
        for fq in sorted(program.reachable_from(entry)):
            func = program.function(fq)
            if func is None:
                continue
            for write in func["global_writes"]:
                if write["name"] in HOOK_STATE_NAMES:
                    return fq, write["name"]
            for write in func["module_attr_writes"]:
                leaf = write["target"].rsplit(".", 1)[-1]
                if leaf in HOOK_STATE_NAMES:
                    return fq, write["target"]
        return None
