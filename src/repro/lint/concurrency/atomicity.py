"""SIM202 — read-modify-write of shared state split across an await.

Single-threaded asyncio code is atomic *between* suspension points and
only there.  A coroutine that reads ``self.<attr>``, suspends, and then
writes the same attribute has opened the classic check-then-act window:
any task scheduled at the suspension can change the attribute, and the
post-await write commits a decision made against stale state.

The raw material (read→write pairs with a suspension on some CFG path
between them, not covered by an ``async with <lock>`` span) comes from
the per-function async summary; this rule adds the type filter: only
attributes whose inferred type is a shared mutable container or counter
(dict/OrderedDict/defaultdict/Counter/deque/list/set/int/float, or a
declared counter field) are scheduler/registry state worth flagging.
Event flags, bools and untyped attributes stay silent — waking on an
``asyncio.Event`` and clearing it afterwards is the *protocol*, not a
race.

Known false negatives (documented in DESIGN.md §11): the read and the
write must be direct attribute accesses in the same coroutine — state
mutated through a helper method call, and single-statement ``+=``
(atomic on the loop), are out of scope.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.core import Violation
from repro.lint.semantic.rules import SemanticRule, register_semantic

SHARED_STATE_TYPES = frozenset({
    "dict", "OrderedDict", "defaultdict", "Counter", "deque",
    "list", "set", "int", "float",
})


@register_semantic
class AtomicityRule(SemanticRule):
    code = "SIM202"
    name = "atomicity-across-await"
    description = ("read-modify-write of shared scheduler/registry "
                   "state split across a suspension point with no "
                   "lock held")
    scope = "module"

    def check_module(self, program, module: str) -> Iterable[Violation]:
        facts = program.modules[module]
        path = facts["path"]
        for qual, func in facts["functions"].items():
            blob = func.get("async")
            if not blob:
                continue
            cls_name = func.get("cls")
            for gap in blob["gaps"]:
                typed = self._shared_type(program, module, cls_name,
                                          gap["attr"])
                if typed is None:
                    continue
                yield self.violation(
                    path, gap["write_line"], 0,
                    f"`{gap['chain']}` ({typed}) is read at line "
                    f"{gap['read_line']} and written at line "
                    f"{gap['write_line']} with a suspension point "
                    f"between ({gap['susp_kind']} at line "
                    f"{gap['susp_line']}); an interleaved task can "
                    "change it in the gap — hold an asyncio.Lock "
                    "across the section or commit before awaiting")

    def _shared_type(self, program, module: str, cls_name: str | None,
                     attr: str) -> str | None:
        if cls_name is None:
            return None
        typed = program.attr_type_of(module, cls_name, attr)
        if typed in SHARED_STATE_TYPES:
            return typed
        for _cand_module, cls in program.classes_named(cls_name):
            if attr in cls["counter_fields"]:
                return "counter"
        return None
