"""SIM201 — blocking call reachable inside a coroutine.

A coroutine that performs synchronous I/O (file reads, ``time.sleep``,
``Future.result()``, a direct disk-cache probe) stalls the *entire*
event loop — every other task, the watchdog and the server's accept
loop included.  The blocking call is often hidden one or more
synchronous call-graph hops below the ``async def`` (the summary chain
is printed in the message), which is why this is a semantic rule.

The escape hatches the rule recognises:

- the call is awaited (``await asyncio.sleep`` / ``await to_thread``);
- the callable is *handed to* an executor rather than called — an
  argument to ``run_in_executor``/``to_thread`` is not a call site, so
  dispatched work never trips the rule;
- descent stops at async callees (they are analysed as their own
  roots) and at generators (their bodies run at iteration time).
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.core import Violation
from repro.lint.semantic.rules import SemanticRule, register_semantic

# Canonical (import-alias-resolved) names that block the calling thread.
BLOCKING_CANONICAL = frozenset({
    "time.sleep",
    "os.system", "os.popen",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "socket.create_connection", "socket.getaddrinfo",
    "urllib.request.urlopen",
    "shutil.copy", "shutil.copytree", "shutil.rmtree",
})
BLOCKING_PREFIXES = ("requests.",)
# Method leaves that are synchronous file I/O wherever they appear
# (pathlib's read/write family).
FILE_IO_LEAVES = frozenset({"read_text", "write_text", "read_bytes",
                            "write_bytes"})
# The serve layer's synchronous disk-cache bridges: correct inside an
# executor, wrong on the loop.
DISK_CACHE_LEAVES = frozenset({"probe_disk", "store_disk",
                               "probe_disk_batch", "store_disk_batch"})

_MAX_DEPTH = 4


def _blocking_reason(call: dict, facts: dict) -> str | None:
    """Why one recorded call blocks, or None."""
    raw = call["name"]
    leaf = raw.split(".")[-1]
    head, _, rest = raw.partition(".")
    canonical = facts["imports"].get(head)
    canonical = (f"{canonical}.{rest}" if canonical and rest
                 else canonical or raw)
    if raw == "open":
        return "blocking builtin `open()`"
    if canonical in BLOCKING_CANONICAL:
        return f"blocking call `{canonical}()`"
    if canonical.startswith(BLOCKING_PREFIXES):
        return f"blocking network call `{canonical}()`"
    if "." in raw and leaf in FILE_IO_LEAVES:
        return f"synchronous file I/O `{raw}()`"
    if leaf in DISK_CACHE_LEAVES:
        return f"synchronous disk-cache access `{raw}()`"
    if "." in raw and leaf == "result":
        recv = call.get("recv", ())
        if any(origin.startswith("call:")
               and (origin.endswith(".submit")
                    or "run_in_executor" in origin
                    or origin.endswith("futures.Future"))
               for origin in recv):
            return f"blocking `{raw}()` on an executor future"
    return None


@register_semantic
class BlockingCallRule(SemanticRule):
    code = "SIM201"
    name = "blocking-call-in-coroutine"
    description = ("synchronous I/O or sleep reachable inside a "
                   "coroutine without executor dispatch")
    scope = "module"

    def check_module(self, program, module: str) -> Iterable[Violation]:
        facts = program.modules[module]
        path = facts["path"]
        for qual, func in facts["functions"].items():
            if not func.get("is_async"):
                continue
            for call in func["calls"]:
                if call.get("awaited"):
                    continue
                reason = _blocking_reason(call, facts)
                if reason is not None:
                    yield self.violation(
                        path, call["lineno"], call["col"],
                        f"{reason} runs on the event loop in coroutine "
                        f"`{qual}`; dispatch it with `await loop."
                        "run_in_executor(...)` or `asyncio.to_thread"
                        "(...)`")
                    continue
                resolved = program.resolve_call(module, qual,
                                                call["name"])
                if resolved is None:
                    continue
                found = self._transitive(program, resolved)
                if found is None:
                    continue
                chain, reason = found
                via = " -> ".join(
                    fq.partition(":")[2] for fq in chain)
                yield self.violation(
                    path, call["lineno"], call["col"],
                    f"coroutine `{qual}` reaches {reason} through "
                    f"synchronous call(s) `{via}`; move the blocking "
                    "step behind `await loop.run_in_executor(...)` or "
                    "`asyncio.to_thread(...)`")

    def _transitive(self, program,
                    entry: str) -> tuple[list[str], str] | None:
        """(call chain, reason) for the first blocking call reachable
        through synchronous project callees, or None."""
        seen: set[str] = set()
        frontier: list[tuple[str, list[str]]] = [(entry, [entry])]
        while frontier:
            fq, chain = frontier.pop(0)
            if fq in seen or len(chain) > _MAX_DEPTH:
                continue
            seen.add(fq)
            func = program.function(fq)
            if func is None or func.get("is_async") \
                    or func.get("is_generator"):
                continue
            callee_module = fq.partition(":")[0]
            callee_facts = program.modules[callee_module]
            for call in func["calls"]:
                reason = _blocking_reason(call, callee_facts)
                if reason is not None:
                    return chain, reason
            for call in func["calls"]:
                resolved = program.resolve_call(
                    callee_module, fq.partition(":")[2], call["name"])
                if resolved is not None and resolved not in seen:
                    frontier.append((resolved, chain + [resolved]))
        return None
