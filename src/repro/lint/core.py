"""Rule framework: violations, the registry, suppressions, AST helpers.

Rules come in two shapes:

- :class:`FileRule` — looks at one file's AST and yields violations.
- :class:`ProjectRule` — first *collects* JSON-serializable facts per
  file (cached alongside the file's other lint results), then a
  *finalize* step runs over the facts of every file in the pass.  The
  stats-conservation rule needs this: a counter is incremented in one
  module and surfaced in another.

Suppression comments::

    something_noisy()          # lint: disable=SIM001
    other_thing()              # lint: disable=SIM001,SIM007
    # lint: disable-file=SIM008   (anywhere in the file, whole file)
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True, order=True)
class Violation:
    """One finding, anchored to a source location."""

    path: str          # repo-relative, posix separators
    line: int
    col: int
    rule: str          # e.g. "SIM001"
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}


_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


def parse_suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """(line -> codes) suppressions and file-wide suppressed codes."""
    per_line: dict[int, set[str]] = {}
    whole_file: set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        codes = {code.strip().upper()
                 for code in match.group("codes").split(",")}
        if match.group("scope"):
            whole_file |= codes
        else:
            per_line.setdefault(lineno, set()).update(codes)
    return per_line, whole_file


def _spread_decorator_suppressions(tree: ast.Module,
                                   per_line: dict[int, set[str]]) -> None:
    """Suppressions anywhere on a decorated statement cover all of it.

    A decorator list and its ``def``/``class`` line are one statement;
    a ``# lint: disable=...`` on a decorator line must also silence
    findings reported at the definition line (and vice versa), or the
    comment placement silently decides whether the suppression works.
    """
    for node in ast.walk(tree):
        decorators = getattr(node, "decorator_list", None)
        if not decorators:
            continue
        span_start = min(decorator.lineno for decorator in decorators)
        span_end = node.lineno  # findings on the def anchor here
        codes: set[str] = set()
        for line in range(span_start, span_end + 1):
            codes |= per_line.get(line, set())
        if not codes:
            continue
        for line in range(span_start, span_end + 1):
            per_line.setdefault(line, set()).update(codes)


@dataclass
class FileContext:
    """One parsed file plus its suppression tables."""

    path: str                        # repo-relative posix path
    source: str
    tree: ast.Module
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    file_suppressions: set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, path: str, source: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        per_line, whole_file = parse_suppressions(source)
        _spread_decorator_suppressions(tree, per_line)
        return cls(path=path, source=source, tree=tree,
                   line_suppressions=per_line, file_suppressions=whole_file)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_suppressions or "ALL" in self.file_suppressions:
            return True
        codes = self.line_suppressions.get(line, ())
        return rule in codes or "ALL" in codes

    # Convenience used by several rules ---------------------------------
    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    def has_main_guard(self) -> bool:
        """True for CLI-style modules: ``if __name__ == "__main__":``."""
        for node in self.tree.body:
            if not isinstance(node, ast.If):
                continue
            test = node.test
            if (isinstance(test, ast.Compare)
                    and isinstance(test.left, ast.Name)
                    and test.left.id == "__name__"
                    and len(test.ops) == 1
                    and isinstance(test.ops[0], ast.Eq)
                    and len(test.comparators) == 1
                    and isinstance(test.comparators[0], ast.Constant)
                    and test.comparators[0].value == "__main__"):
                return True
        return False


class Rule:
    """Base: every rule has a code, a name and a one-line description."""

    code: str = ""
    name: str = ""
    description: str = ""

    def violation(self, ctx: FileContext, node: ast.AST,
                  message: str) -> Violation:
        return Violation(path=ctx.path,
                         line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0),
                         rule=self.code, message=message)


class FileRule(Rule):
    """A rule that judges one file at a time."""

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that needs the whole file set.

    ``collect`` must return something JSON-serializable — it is cached
    per file and replayed on later runs when the file is unchanged.
    ``finalize`` receives ``{path: facts}`` for every scanned file.
    """

    def collect(self, ctx: FileContext) -> object:
        raise NotImplementedError

    def finalize(self, facts: dict[str, object]) -> Iterable[Violation]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    rule = rule_cls()
    if not rule.code:
        raise ValueError(f"{rule_cls.__name__} has no code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule_cls


def all_rules() -> list[Rule]:
    # Importing the rules package populates the registry exactly once.
    import repro.lint.rules  # noqa: F401  (registration side effect)
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    import repro.lint.rules  # noqa: F401
    return _REGISTRY[code.upper()]


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str | None:
    """'a.b.c' for nested Attribute/Name chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local alias -> canonical dotted module/name.

    ``import numpy as np`` -> {"np": "numpy"};
    ``from numpy import random as nr`` -> {"nr": "numpy.random"}.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = item.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for item in node.names:
                aliases[item.asname or item.name] = \
                    f"{node.module}.{item.name}"
    return aliases


def resolve_call(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of a call target, un-aliased via imports."""
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    canonical = aliases.get(head, head)
    return f"{canonical}.{rest}" if rest else canonical


class ConstFolder:
    """Fold simple integer expressions (literals, +-*//<<**, names)."""

    def __init__(self, env: dict[str, int] | None = None) -> None:
        self.env = dict(env or {})

    def fold(self, node: ast.AST) -> int | None:
        if isinstance(node, ast.Constant):
            return node.value if isinstance(node.value, int) \
                and not isinstance(node.value, bool) else None
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = self.fold(node.operand)
            return None if inner is None else -inner
        if isinstance(node, ast.BinOp):
            left = self.fold(node.left)
            right = self.fold(node.right)
            if left is None or right is None:
                return None
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.FloorDiv):
                return left // right if right else None
            if isinstance(node.op, ast.LShift):
                return left << right if 0 <= right < 128 else None
            if isinstance(node.op, ast.Pow):
                return left ** right if 0 <= right < 64 else None
        return None


def module_int_env(tree: ast.Module,
                   seed_env: dict[str, int] | None = None) -> dict[str, int]:
    """Constant environment from module-level ``NAME = <int expr>``."""
    env = dict(seed_env or {})
    folder = ConstFolder(env)
    for node in tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            value = folder.fold(node.value)
            if value is not None:
                env[node.targets[0].id] = value
                folder.env[node.targets[0].id] = value
    return env
