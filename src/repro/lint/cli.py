"""Command line: ``python -m repro.lint`` / ``repro-lint``.

Exit status: 0 when clean, 1 when violations were found (unless
``--no-fail-on-violation``), 2 on usage errors.

``--semantic`` layers the whole-program passes (call graph, CFG
dataflow) on top of the per-file rules: the SIM1xx semantic family,
the SIM2xx async-concurrency family (blocking calls on the event loop,
atomicity across awaits, task lifecycle, lock discipline, obs-hook
boundary) and the SIM3xx contract family (live↔replay counter parity,
metric-name, wire-schema, env-var and version discipline).
``--baseline PATH`` compares against a recorded baseline and fails
only on *new* findings; ``--update-baseline`` records the current
findings as accepted.  ``--explain SIM104`` prints one rule's full
documentation.
"""

from __future__ import annotations

import argparse

from repro.lint.core import all_rules
from repro.lint.engine import (apply_baseline, lint_paths, load_baseline,
                               write_baseline)
from repro.lint.reporters import (REPORTERS, render_explain,
                                  render_rule_list)

DEFAULT_PATHS = ["src", "benchmarks", "examples"]
DEFAULT_BASELINE = ".lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=("Simulator-aware static analysis: determinism, "
                     "stats-conservation and config-legality rules for "
                     "the TCOR reproduction."),
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help=f"files or directories (default: "
                             f"{' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--format", choices=sorted(REPORTERS),
                        default="text", help="report format")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run exclusively")
    parser.add_argument("--ignore", metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--semantic", action="store_true",
                        help="also run the whole-program SIM1xx, SIM2xx "
                             "(async concurrency) and SIM3xx (contract "
                             "analysis) rules")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the lint caches")
    parser.add_argument("--cache-file", metavar="PATH",
                        help="cache location (default: ./.lint-cache.json)")
    parser.add_argument("--semantic-cache-file", metavar="PATH",
                        help="semantic fact/finding cache location "
                             "(default: ./.lint-semantic-cache.json)")
    parser.add_argument("--baseline", metavar="PATH", nargs="?",
                        const=DEFAULT_BASELINE, default=None,
                        help="fail only on findings absent from this "
                             f"baseline file (default: {DEFAULT_BASELINE})")
    parser.add_argument("--update-baseline", metavar="PATH", nargs="?",
                        const=DEFAULT_BASELINE, default=None,
                        help="record current findings as the accepted "
                             "baseline and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--explain", metavar="CODE",
                        help="print one rule's full documentation and exit")
    parser.add_argument("--fail-on-violation", dest="fail_on_violation",
                        action=argparse.BooleanOptionalAction, default=True,
                        help="exit 1 when violations are found (default)")
    return parser


def _parse_codes(raw: str | None) -> set[str] | None:
    if not raw:
        return None
    return {code.strip().upper() for code in raw.split(",") if code.strip()}


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0

    if args.explain:
        text = render_explain(args.explain.strip().upper())
        if text is None:
            parser.error(f"unknown rule code {args.explain!r}; "
                         "see --list-rules")
        print(text)
        return 0

    select = _parse_codes(args.select)
    ignore = _parse_codes(args.ignore)
    from repro.lint.semantic.rules import semantic_rules
    known = {rule.code for rule in all_rules()}
    known |= {rule.code for rule in semantic_rules()}
    unknown = ((select or set()) | (ignore or set())) - known
    if unknown:
        parser.error(f"unknown rule code(s): {', '.join(sorted(unknown))}; "
                     "see --list-rules")

    try:
        result = lint_paths(
            args.paths or DEFAULT_PATHS,
            select=select,
            ignore=ignore,
            use_cache=not args.no_cache,
            cache_file=args.cache_file,
            semantic=args.semantic,
            semantic_cache_file=args.semantic_cache_file,
        )
    except FileNotFoundError as error:
        parser.error(str(error))

    if args.update_baseline is not None:
        count = write_baseline(result, args.update_baseline)
        noun = "finding" if count == 1 else "findings"
        print(f"baseline: recorded {count} {noun} in "
              f"{args.update_baseline}")
        return 0

    if args.baseline is not None:
        baseline = load_baseline(args.baseline)
        new, matched = apply_baseline(result, baseline)
        result.violations = new
        print(REPORTERS[args.format](result))
        if matched:
            print(f"baseline: suppressed {matched} known "
                  f"finding{'s' if matched != 1 else ''}")
        if new and args.fail_on_violation:
            return 1
        return 0

    print(REPORTERS[args.format](result))
    if result.violations and args.fail_on_violation:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
