"""Command line: ``python -m repro.lint`` / ``repro-lint``.

Exit status: 0 when clean, 1 when violations were found (unless
``--no-fail-on-violation``), 2 on usage errors.
"""

from __future__ import annotations

import argparse

from repro.lint.core import all_rules
from repro.lint.engine import lint_paths
from repro.lint.reporters import REPORTERS, render_rule_list

DEFAULT_PATHS = ["src", "benchmarks", "examples"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=("Simulator-aware static analysis: determinism, "
                     "stats-conservation and config-legality rules for "
                     "the TCOR reproduction."),
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help=f"files or directories (default: "
                             f"{' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--format", choices=sorted(REPORTERS),
                        default="text", help="report format")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run exclusively")
    parser.add_argument("--ignore", metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write .lint-cache.json")
    parser.add_argument("--cache-file", metavar="PATH",
                        help="cache location (default: ./.lint-cache.json)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--fail-on-violation", dest="fail_on_violation",
                        action=argparse.BooleanOptionalAction, default=True,
                        help="exit 1 when violations are found (default)")
    return parser


def _parse_codes(raw: str | None) -> set[str] | None:
    if not raw:
        return None
    return {code.strip().upper() for code in raw.split(",") if code.strip()}


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0

    select = _parse_codes(args.select)
    ignore = _parse_codes(args.ignore)
    known = {rule.code for rule in all_rules()}
    unknown = ((select or set()) | (ignore or set())) - known
    if unknown:
        parser.error(f"unknown rule code(s): {', '.join(sorted(unknown))}; "
                     "see --list-rules")

    try:
        result = lint_paths(
            args.paths or DEFAULT_PATHS,
            select=select,
            ignore=ignore,
            use_cache=not args.no_cache,
            cache_file=args.cache_file,
        )
    except FileNotFoundError as error:
        parser.error(str(error))
    print(REPORTERS[args.format](result))
    if result.violations and args.fail_on_violation:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
