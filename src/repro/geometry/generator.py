"""Synthetic scene generation with controlled statistics.

The paper evaluates on commercial Android games we cannot run, so we
substitute synthetic frames whose *measured* characteristics match the
published ones (Table II): number of primitives, average primitive reuse
(tiles overlapped per primitive), and attribute counts.

Two properties of real game geometry matter to cache behaviour and are
modelled explicitly:

- **Spatial coherence in program order** — consecutive primitives in a
  draw call belong to the same object and land near each other on screen.
  Primitives are generated in small "objects" whose members cluster
  around a shared center.
- **Size distribution** — primitive screen extents are lognormal around a
  calibrated median, so a frame mixes small and large triangles the way a
  real scene does.

Reuse is controlled by calibrating the median extent: the expected number
of 32x32 tiles covered grows monotonically with the triangle size, so a
bisection on the extent hits any target mean reuse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.config import ScreenConfig
from repro.geometry.primitives import Primitive, Vertex
from repro.geometry.overlap import tiles_overlapped_by
from repro.geometry.scene import DrawCommand, Scene


@dataclass(frozen=True)
class SceneParameters:
    """Knobs of a synthetic frame."""

    num_primitives: int
    target_reuse: float
    mean_attributes: float = 3.0
    is_2d: bool = False
    object_size: int = 8
    size_spread: float = 0.35
    coverage_fraction: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_primitives <= 0:
            raise ValueError("need at least one primitive")
        if self.target_reuse < 1.0:
            raise ValueError("a visible primitive overlaps at least 1 tile")
        if not (1.0 <= self.mean_attributes <= 15.0):
            raise ValueError("mean attributes must be within the PMD range")
        if self.object_size <= 0:
            raise ValueError("object size must be positive")
        if not (0.05 <= self.coverage_fraction <= 1.0):
            raise ValueError("coverage fraction must be in (0.05, 1]")


def _fat_triangle(prim_id: int, cx: float, cy: float, extent: float,
                  num_attributes: int, rng: np.random.Generator) -> Primitive:
    """A triangle filling most of an ``extent``-sized box around (cx, cy).

    "Fat" triangles (roughly half the bounding box plus protruding
    corners) make tile coverage track the bounding box closely, which is
    what calibration relies on.
    """
    half = extent / 2.0
    jitter = extent * 0.15
    points = []
    for base_x, base_y in ((-half, -half), (half, -half), (0.0, half)):
        points.append(Vertex(
            cx + base_x + rng.uniform(-jitter, jitter),
            cy + base_y + rng.uniform(-jitter, jitter),
            float(rng.uniform(0.0, 1.0)),
        ))
    return Primitive(prim_id, points[0], points[1], points[2],
                     num_attributes=num_attributes)


def _sample_attribute_count(mean: float, rng: np.random.Generator) -> int:
    """Attribute count in [1, 15] with the requested mean.

    A shifted binomial keeps the distribution tight around the mean the
    way real vertex formats are (position + a couple of varyings).
    """
    count = 1 + rng.binomial(14, (mean - 1.0) / 14.0)
    return int(min(15, max(1, count)))


def fat_triangle(prim_id: int, cx: float, cy: float, extent: float,
                 num_attributes: int, rng: np.random.Generator) -> Primitive:
    """Public entry for other geometry producers (the animation layer's
    object respawn) so churned objects share the suite's triangle shape."""
    return _fat_triangle(prim_id, cx, cy, extent, num_attributes, rng)


def sample_attribute_count(mean: float, rng: np.random.Generator) -> int:
    """Public counterpart of the suite's attribute-count distribution."""
    return _sample_attribute_count(mean, rng)


def _mean_coverage(screen: ScreenConfig, extent: float, samples: int,
                   size_spread: float, rng: np.random.Generator) -> float:
    total = 0
    for i in range(samples):
        cx = rng.uniform(0, screen.width)
        cy = rng.uniform(0, screen.height)
        sampled = extent * rng.lognormal(0.0, size_spread)
        prim = _fat_triangle(i, cx, cy, sampled, 3, rng)
        total += max(1, len(tiles_overlapped_by(prim, screen)))
    return total / samples


def calibrate_extent_for_reuse(screen: ScreenConfig, target_reuse: float,
                               seed: int = 1234, samples: int = 160,
                               size_spread: float = 0.0) -> float:
    """Median triangle extent (pixels) whose mean tile coverage hits
    ``target_reuse``.

    Bisection over the extent; coverage is measured by actually binning
    sample triangles drawn with the same size distribution the generator
    uses, so the calibration is exact for the binner in use.
    """
    if target_reuse < 1.0:
        raise ValueError("target reuse must be >= 1")
    lo, hi = 1.0, float(4 * screen.tile_size * math.sqrt(target_reuse))

    def measure(extent: float) -> float:
        return _mean_coverage(screen, extent, samples, size_spread,
                              np.random.default_rng(seed))

    while measure(hi) < target_reuse:
        hi *= 2.0
        if hi > max(screen.width, screen.height) * 4:
            break
    for _ in range(24):
        mid = (lo + hi) / 2.0
        if measure(mid) < target_reuse:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


class SceneGenerator:
    """Generates frames matching a :class:`SceneParameters` description."""

    def __init__(self, screen: ScreenConfig, params: SceneParameters) -> None:
        self.screen = screen
        self.params = params
        self._extent = calibrate_extent_for_reuse(
            screen, params.target_reuse, seed=params.seed ^ 0x5EED,
            size_spread=params.size_spread,
        )

    @property
    def calibrated_extent(self) -> float:
        return self._extent

    def generate(self, frame_index: int = 0) -> Scene:
        """One frame.  Different ``frame_index`` values give the animated
        sequence of a running game: same statistics, shifted geometry."""
        p = self.params
        rng = np.random.default_rng((p.seed << 8) ^ frame_index)
        primitives: list[Primitive] = []
        draws: list[DrawCommand] = []
        prim_id = 0
        # Geometry concentrates on a centered sub-rectangle covering
        # ``coverage_fraction`` of the screen area; real games leave sky,
        # HUD margins and far background tiles nearly empty, which is what
        # gives the paper's 11-21 primitives-per-occupied-tile densities.
        span = math.sqrt(p.coverage_fraction)
        active_w = self.screen.width * span
        active_h = self.screen.height * span
        min_x = (self.screen.width - active_w) / 2
        min_y = (self.screen.height - active_h) / 2

        def fresh_center() -> tuple[float, float]:
            if p.is_2d:
                return (rng.uniform(min_x, min_x + active_w),
                        rng.uniform(min_y, min_y + active_h))
            return (
                float(np.clip(rng.normal(self.screen.width / 2, active_w / 4),
                              min_x, min_x + active_w - 1)),
                float(np.clip(rng.normal(self.screen.height / 2, active_h / 4),
                              min_y, min_y + active_h - 1)),
            )

        # Draw order follows a spatial random walk with occasional jumps:
        # scene-graph traversal draws neighbouring objects consecutively,
        # which is where the Polygon List Builder's append locality (and a
        # dedicated Primitive List Cache's advantage) comes from.
        ocx, ocy = fresh_center()
        while prim_id < p.num_primitives:
            object_prims = min(p.object_size, p.num_primitives - prim_id)
            draws.append(DrawCommand(prim_id, object_prims))
            if rng.random() < 0.2:
                ocx, ocy = fresh_center()
            else:
                step = self._extent * 3.0
                ocx = float(np.clip(ocx + rng.normal(0, step),
                                    min_x, min_x + active_w - 1))
                ocy = float(np.clip(ocy + rng.normal(0, step),
                                    min_y, min_y + active_h - 1))
            spread = self._extent * 1.5
            for _ in range(object_prims):
                extent = float(self._extent * rng.lognormal(0.0, p.size_spread))
                cx = float(np.clip(ocx + rng.uniform(-spread, spread),
                                   1, self.screen.width - 2))
                cy = float(np.clip(ocy + rng.uniform(-spread, spread),
                                   1, self.screen.height - 2))
                primitives.append(_fat_triangle(
                    prim_id, cx, cy, extent,
                    _sample_attribute_count(p.mean_attributes, rng), rng,
                ))
                prim_id += 1
        return Scene(self.screen, primitives, draws)
