"""Primitives as seen by the Tiling Engine.

After the Geometry Pipeline, a primitive is a screen-space triangle plus a
variable number of per-vertex attributes (color, normals, texture
coordinates, ...).  The Tiling Engine never interprets attribute values;
it only moves them through memory.  We therefore keep attribute payloads
symbolic (an index), while vertices carry real screen coordinates so that
binning is geometrically exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Vertex:
    """A transformed vertex in screen space."""

    x: float
    y: float
    z: float = 0.0


@dataclass(frozen=True, slots=True)
class Attribute:
    """One attribute of a primitive (48 bytes: 16 per vertex).

    Only identity matters to the memory system, so the payload is the
    (primitive, slot) pair.
    """

    primitive_id: int
    slot: int


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """Axis-aligned bounding box in screen pixels (inclusive bounds)."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError("malformed bounding box")

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    def intersects(self, other: "BoundingBox") -> bool:
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )


@dataclass(frozen=True)
class Primitive:
    """A screen-space triangle with its attributes.

    ``primitive_id`` follows program order (the order the Primitive
    Assembly emits them), which is also the order the Polygon List Builder
    bins them and writes their attributes to PB-Attributes.
    """

    primitive_id: int
    v0: Vertex
    v1: Vertex
    v2: Vertex
    num_attributes: int = 3

    def __post_init__(self) -> None:
        if self.primitive_id < 0:
            raise ValueError("primitive id must be non-negative")
        if not (1 <= self.num_attributes <= 15):
            # The PMD reserves 4 bits for the attribute count.
            raise ValueError("attribute count must fit in 4 bits (1..15)")

    @property
    def vertices(self) -> tuple[Vertex, Vertex, Vertex]:
        return (self.v0, self.v1, self.v2)

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return tuple(
            Attribute(self.primitive_id, slot)
            for slot in range(self.num_attributes)
        )

    def bounding_box(self) -> BoundingBox:
        xs = (self.v0.x, self.v1.x, self.v2.x)
        ys = (self.v0.y, self.v1.y, self.v2.y)
        return BoundingBox(min(xs), min(ys), max(xs), max(ys))

    def signed_area(self) -> float:
        """Twice the signed area (positive for counter-clockwise)."""
        ax, ay = self.v0.x, self.v0.y
        bx, by = self.v1.x, self.v1.y
        cx, cy = self.v2.x, self.v2.y
        return (bx - ax) * (cy - ay) - (cx - ax) * (by - ay)

    def is_degenerate(self, epsilon: float = 1e-12) -> bool:
        return abs(self.signed_area()) <= epsilon
