"""Tile overlap tests (binning geometry).

The Polygon List Builder must decide, for every primitive, exactly which
tiles it overlaps.  A cheap conservative test (bounding box) is refined by
an exact triangle/rectangle intersection test, mirroring the tile-aware
overlap tests of Antochi et al. that the paper builds on.

The exact test treats both shapes as closed regions: touching at a single
point or edge counts as overlap, which is the conservative choice a binner
must make (a missed tile would drop geometry from the image).
"""

from __future__ import annotations

from repro.config import ScreenConfig
from repro.geometry.primitives import BoundingBox, Primitive, Vertex


def tile_rect(screen: ScreenConfig, tile_id: int) -> BoundingBox:
    """Pixel-space rectangle of a tile (clipped to the screen edge)."""
    if not (0 <= tile_id < screen.num_tiles):
        raise ValueError(f"tile {tile_id} out of range")
    tx = tile_id % screen.tiles_x
    ty = tile_id // screen.tiles_x
    min_x = tx * screen.tile_size
    min_y = ty * screen.tile_size
    max_x = min(min_x + screen.tile_size, screen.width)
    max_y = min(min_y + screen.tile_size, screen.height)
    return BoundingBox(min_x, min_y, max_x, max_y)


def _point_in_rect(x: float, y: float, rect: BoundingBox) -> bool:
    return rect.min_x <= x <= rect.max_x and rect.min_y <= y <= rect.max_y


def _orient(ax: float, ay: float, bx: float, by: float,
            px: float, py: float) -> float:
    """Cross product sign of (b - a) x (p - a)."""
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax)


def _point_in_triangle(px: float, py: float,
                       a: Vertex, b: Vertex, c: Vertex) -> bool:
    d1 = _orient(a.x, a.y, b.x, b.y, px, py)
    d2 = _orient(b.x, b.y, c.x, c.y, px, py)
    d3 = _orient(c.x, c.y, a.x, a.y, px, py)
    has_neg = d1 < 0 or d2 < 0 or d3 < 0
    has_pos = d1 > 0 or d2 > 0 or d3 > 0
    return not (has_neg and has_pos)


def _segments_intersect(p1: tuple[float, float], p2: tuple[float, float],
                        q1: tuple[float, float], q2: tuple[float, float]) -> bool:
    """Closed-segment intersection (collinear touching counts)."""
    d1 = _orient(*q1, *q2, *p1)
    d2 = _orient(*q1, *q2, *p2)
    d3 = _orient(*p1, *p2, *q1)
    d4 = _orient(*p1, *p2, *q2)
    if ((d1 > 0) != (d2 > 0) and (d1 != 0 or d2 != 0)
            and (d3 > 0) != (d4 > 0) and (d3 != 0 or d4 != 0)):
        return True

    def on_segment(a, b, p):
        return (min(a[0], b[0]) <= p[0] <= max(a[0], b[0])
                and min(a[1], b[1]) <= p[1] <= max(a[1], b[1]))

    if d1 == 0 and on_segment(q1, q2, p1):
        return True
    if d2 == 0 and on_segment(q1, q2, p2):
        return True
    if d3 == 0 and on_segment(p1, p2, q1):
        return True
    if d4 == 0 and on_segment(p1, p2, q2):
        return True
    return False


def triangle_overlaps_rect(prim: Primitive, rect: BoundingBox) -> bool:
    """Exact closed-region triangle/rectangle overlap test."""
    bbox = prim.bounding_box()
    if not bbox.intersects(rect):
        return False

    # Any triangle vertex inside the rectangle.
    for v in prim.vertices:
        if _point_in_rect(v.x, v.y, rect):
            return True

    # Any rectangle corner inside the triangle.
    corners = (
        (rect.min_x, rect.min_y),
        (rect.max_x, rect.min_y),
        (rect.max_x, rect.max_y),
        (rect.min_x, rect.max_y),
    )
    for cx, cy in corners:
        if _point_in_triangle(cx, cy, prim.v0, prim.v1, prim.v2):
            return True

    # Any pair of edges intersecting.
    tri_edges = (
        ((prim.v0.x, prim.v0.y), (prim.v1.x, prim.v1.y)),
        ((prim.v1.x, prim.v1.y), (prim.v2.x, prim.v2.y)),
        ((prim.v2.x, prim.v2.y), (prim.v0.x, prim.v0.y)),
    )
    rect_edges = (
        (corners[0], corners[1]),
        (corners[1], corners[2]),
        (corners[2], corners[3]),
        (corners[3], corners[0]),
    )
    for te in tri_edges:
        for re in rect_edges:
            if _segments_intersect(te[0], te[1], re[0], re[1]):
                return True
    return False


def tiles_overlapped_by(prim: Primitive, screen: ScreenConfig) -> list[int]:
    """Row-major IDs of every tile the primitive overlaps.

    Primitives fully outside the screen yield an empty list (they would be
    clipped before binning).
    """
    bbox = prim.bounding_box()
    ts = screen.tile_size
    first_tx = max(0, int(bbox.min_x) // ts)
    first_ty = max(0, int(bbox.min_y) // ts)
    last_tx = min(screen.tiles_x - 1, int(bbox.max_x) // ts)
    last_ty = min(screen.tiles_y - 1, int(bbox.max_y) // ts)
    if bbox.max_x < 0 or bbox.max_y < 0:
        return []
    if bbox.min_x >= screen.width or bbox.min_y >= screen.height:
        return []

    overlapped = []
    for ty in range(first_ty, last_ty + 1):
        for tx in range(first_tx, last_tx + 1):
            tile_id = ty * screen.tiles_x + tx
            if triangle_overlaps_rect(prim, tile_rect(screen, tile_id)):
                overlapped.append(tile_id)
    return overlapped
