"""Scene and draw-command containers.

A :class:`Scene` is one frame's worth of geometry after the Geometry
Pipeline: primitives in program order, grouped into draw commands.  The
scene also computes (and caches) its binning — the per-primitive tile
coverage — which everything downstream (Parameter Buffer construction,
OPT numbers, footprint statistics) derives from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import ParameterBufferConfig, ScreenConfig
from repro.geometry.overlap import tiles_overlapped_by
from repro.geometry.primitives import Primitive


@dataclass(frozen=True)
class DrawCommand:
    """A contiguous range of primitives issued by one draw call."""

    first_primitive: int
    primitive_count: int

    def __post_init__(self) -> None:
        if self.first_primitive < 0 or self.primitive_count <= 0:
            raise ValueError("malformed draw command range")


class Scene:
    """One frame of geometry in program order.

    Parameters
    ----------
    screen:
        Screen/tile geometry used for binning.
    primitives:
        Primitives in program order.  IDs must be dense, starting at 0,
        matching their position (this mirrors the Primitive Assembly
        numbering the Parameter Buffer relies on).
    draw_commands:
        Optional draw-call grouping; a single all-covering command is
        synthesized when omitted.
    """

    def __init__(self, screen: ScreenConfig, primitives: list[Primitive],
                 draw_commands: list[DrawCommand] | None = None) -> None:
        for index, prim in enumerate(primitives):
            if prim.primitive_id != index:
                raise ValueError(
                    f"primitive at position {index} has id "
                    f"{prim.primitive_id}; ids must be dense program order"
                )
        self.screen = screen
        self.primitives = list(primitives)
        if draw_commands is None:
            draw_commands = (
                [DrawCommand(0, len(primitives))] if primitives else []
            )
        self.draw_commands = draw_commands
        self._coverage: list[list[int]] | None = None

    def __len__(self) -> int:
        return len(self.primitives)

    # ------------------------------------------------------------------
    # Binning
    # ------------------------------------------------------------------
    def coverage(self) -> list[list[int]]:
        """Per-primitive list of overlapped tile IDs (row-major).

        Computed once and cached; order within each list is row-major,
        which is *not* the traversal order — callers that need traversal
        ordering re-sort by rank.
        """
        if self._coverage is None:
            self._coverage = [
                tiles_overlapped_by(prim, self.screen)
                for prim in self.primitives
            ]
        return self._coverage

    def tile_lists(self) -> list[list[int]]:
        """Per-tile list of primitive IDs in program order (the PB-Lists)."""
        lists: list[list[int]] = [[] for _ in range(self.screen.num_tiles)]
        for prim_id, tiles in enumerate(self.coverage()):
            for tile_id in tiles:
                lists[tile_id].append(prim_id)
        return lists

    # ------------------------------------------------------------------
    # Statistics (the Table II columns)
    # ------------------------------------------------------------------
    def average_reuse(self) -> float:
        """Average number of tiles overlapped per on-screen primitive."""
        sizes = [len(tiles) for tiles in self.coverage() if tiles]
        if not sizes:
            return 0.0
        return sum(sizes) / len(sizes)

    def average_attributes(self) -> float:
        if not self.primitives:
            return 0.0
        return sum(p.num_attributes for p in self.primitives) / len(self)

    def parameter_buffer_footprint(
        self, pbuffer: ParameterBufferConfig | None = None
    ) -> int:
        """Bytes of Parameter Buffer this scene produces.

        PB-Attributes stores each attribute block-aligned; PB-Lists stores
        one PMD per (tile, primitive) pair.
        """
        pbuffer = pbuffer or ParameterBufferConfig()
        attr_bytes = sum(
            prim.num_attributes * pbuffer.attribute_stride
            for prim, tiles in zip(self.primitives, self.coverage())
            if tiles
        )
        pmd_count = sum(len(tiles) for tiles in self.coverage())
        return attr_bytes + pmd_count * pbuffer.pmd_bytes

    def max_primitives_in_a_tile(self) -> int:
        return max((len(lst) for lst in self.tile_lists()), default=0)
