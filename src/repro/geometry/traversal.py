"""Tile traversal orders.

The Tile Fetcher processes tiles in a fixed, known order (paper Table I
uses Z-order).  OPT Numbers are tile IDs compared *in traversal order*, so
every consumer of OPT Numbers needs the rank of a tile in the traversal,
not its row-major ID.
"""

from __future__ import annotations

import enum
from functools import lru_cache

from repro.config import ScreenConfig


class TraversalOrder(enum.Enum):
    """Supported orders in which the Tile Fetcher walks the tile grid."""

    SCANLINE = "scanline"
    SERPENTINE = "serpentine"
    Z_ORDER = "z-order"


def _interleave_bits(x: int, y: int) -> int:
    """Morton code of (x, y): bits of x and y interleaved."""
    code = 0
    shift = 0
    while x or y:
        code |= (x & 1) << (2 * shift)
        code |= (y & 1) << (2 * shift + 1)
        x >>= 1
        y >>= 1
        shift += 1
    return code


def _zorder_tiles(tiles_x: int, tiles_y: int) -> list[int]:
    """Z-order (Morton) traversal of a possibly non-square grid.

    Non-power-of-two grids are handled by sorting all (x, y) pairs by
    Morton code, the standard generalization.
    """
    coords = [(x, y) for y in range(tiles_y) for x in range(tiles_x)]
    coords.sort(key=lambda xy: _interleave_bits(xy[0], xy[1]))
    return [y * tiles_x + x for x, y in coords]


@lru_cache(maxsize=64)
def _traversal_cached(tiles_x: int, tiles_y: int,
                      order: TraversalOrder) -> tuple[int, ...]:
    if order is TraversalOrder.SCANLINE:
        return tuple(range(tiles_x * tiles_y))
    if order is TraversalOrder.SERPENTINE:
        tiles: list[int] = []
        for ty in range(tiles_y):
            row = range(ty * tiles_x, (ty + 1) * tiles_x)
            tiles.extend(row if ty % 2 == 0 else reversed(row))
        return tuple(tiles)
    if order is TraversalOrder.Z_ORDER:
        return tuple(_zorder_tiles(tiles_x, tiles_y))
    raise ValueError(f"unknown traversal order: {order!r}")


def tile_traversal(screen: ScreenConfig,
                   order: TraversalOrder = TraversalOrder.Z_ORDER) -> tuple[int, ...]:
    """Row-major tile IDs in the order the Tile Fetcher processes them."""
    return _traversal_cached(screen.tiles_x, screen.tiles_y, order)


def traversal_rank(screen: ScreenConfig,
                   order: TraversalOrder = TraversalOrder.Z_ORDER) -> tuple[int, ...]:
    """Mapping from row-major tile ID to its position in the traversal.

    ``traversal_rank(s, o)[tile_id]`` is the number of tiles processed
    before ``tile_id``.  OPT Numbers are these ranks: "the next tile that
    uses this primitive" is meaningful only under the traversal order.
    """
    traversal = tile_traversal(screen, order)
    rank = [0] * len(traversal)
    for position, tile_id in enumerate(traversal):
        rank[tile_id] = position
    return tuple(rank)
