"""Geometry substrate: primitives, tile overlap tests, traversal orders.

This package models the part of the graphics pipeline that TCOR's inputs
depend on: triangles in screen space, the tile grid, which tiles each
triangle overlaps (binning), and the fixed order in which the Tile Fetcher
walks the tiles.
"""

from repro.geometry.primitives import (
    Attribute,
    BoundingBox,
    Primitive,
    Vertex,
)
from repro.geometry.overlap import (
    tile_rect,
    tiles_overlapped_by,
    triangle_overlaps_rect,
)
from repro.geometry.traversal import (
    TraversalOrder,
    tile_traversal,
    traversal_rank,
)
from repro.geometry.scene import DrawCommand, Scene
from repro.geometry.generator import (
    SceneGenerator,
    SceneParameters,
    calibrate_extent_for_reuse,
)
from repro.geometry.transform import (
    ScreenVertex,
    VertexTransform,
    look_at,
    perspective,
)
from repro.geometry.assembly import IndexedMesh, PrimitiveAssembly

__all__ = [
    "Attribute",
    "BoundingBox",
    "DrawCommand",
    "IndexedMesh",
    "Primitive",
    "PrimitiveAssembly",
    "Scene",
    "SceneGenerator",
    "SceneParameters",
    "ScreenVertex",
    "TraversalOrder",
    "Vertex",
    "VertexTransform",
    "calibrate_extent_for_reuse",
    "look_at",
    "perspective",
    "tile_rect",
    "tile_traversal",
    "tiles_overlapped_by",
    "traversal_rank",
    "triangle_overlaps_rect",
]
