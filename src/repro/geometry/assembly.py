"""Primitive Assembly over indexed meshes.

The Primitive Assembler (paper Figure 2) takes transformed vertices in
program order and joins every three indices into a triangle.  This
module models the front half of that path: an indexed mesh, the vertex
transform, backface/near-plane culling, and the emission of screen-space
:class:`~repro.geometry.primitives.Primitive` objects with dense IDs —
exactly what the Polygon List Builder consumes.

It also measures index-stream locality (the vertex-cache hit ratio of a
FIFO post-transform cache), which is where the background traffic
model's vertex-fetch constants come from.
"""
# Assembly counters are functional-model roll-ups (triangles culled,
# cache hit ratios) summarized once per frame; the trace stream
# deliberately observes only cache/memory/tile events, so these
# mutations have no hooked caller chain by design.
# lint: disable-file=SIM102

from __future__ import annotations

from collections import OrderedDict
import dataclasses
from dataclasses import dataclass, field
from typing import Sequence

from repro.geometry.primitives import Primitive, Vertex
from repro.geometry.transform import VertexTransform


@dataclass(frozen=True)
class IndexedMesh:
    """Object-space triangle mesh: positions + a flat index buffer."""

    positions: tuple[tuple[float, float, float], ...]
    indices: tuple[int, ...]
    attributes_per_vertex: int = 3

    def __post_init__(self) -> None:
        if len(self.indices) % 3:
            raise ValueError("index count must be a multiple of 3")
        if self.indices and max(self.indices) >= len(self.positions):
            raise ValueError("index out of range")
        if not (1 <= self.attributes_per_vertex <= 15):
            raise ValueError("attribute count must fit the PMD field")

    @property
    def num_triangles(self) -> int:
        return len(self.indices) // 3

    @classmethod
    def cube(cls, size: float = 1.0) -> "IndexedMesh":
        """A unit-ish cube centered at the origin: 8 vertices, 12 tris."""
        h = size / 2.0
        positions = tuple(
            (x, y, z)
            for x in (-h, h) for y in (-h, h) for z in (-h, h)
        )
        quads = [
            (0, 1, 3, 2), (4, 6, 7, 5),   # x- and x+ faces
            (0, 4, 5, 1), (2, 3, 7, 6),   # y- and y+
            (0, 2, 6, 4), (1, 5, 7, 3),   # z- and z+
        ]
        indices: list[int] = []
        for a, b, c, d in quads:
            indices.extend((a, b, c, a, c, d))
        return cls(positions=positions, indices=tuple(indices))


@dataclass
class AssemblyStats:
    triangles_in: int = 0
    emitted: int = 0
    culled_near_plane: int = 0
    culled_backface: int = 0
    culled_degenerate: int = 0
    vertex_cache_hits: int = 0
    vertex_cache_lookups: int = 0

    @property
    def vertex_cache_hit_ratio(self) -> float:
        if not self.vertex_cache_lookups:
            return 0.0
        return self.vertex_cache_hits / self.vertex_cache_lookups

    def as_dict(self) -> dict:
        summary = dataclasses.asdict(self)
        summary["vertex_cache_hit_ratio"] = self.vertex_cache_hit_ratio
        return summary


class PrimitiveAssembly:
    """Transform + cull + assemble an indexed mesh into primitives.

    ``post_transform_cache`` models the FIFO vertex cache that makes
    indexed meshes cheap: a hit means the vertex shader (and the vertex
    fetch) is skipped for that index.
    """

    def __init__(self, transform: VertexTransform,
                 backface_culling: bool = True,
                 post_transform_cache: int = 16) -> None:
        self.transform = transform
        self.backface_culling = backface_culling
        self.cache_entries = post_transform_cache
        self.stats = AssemblyStats()

    def assemble(self, mesh: IndexedMesh,
                 first_primitive_id: int = 0) -> list[Primitive]:
        cache: OrderedDict[int, object] = OrderedDict()
        transformed: dict[int, object] = {}

        def shade_vertex(index: int):
            self.stats.vertex_cache_lookups += 1
            if index in cache:
                self.stats.vertex_cache_hits += 1
                return cache[index]
            result = self.transform.to_screen(mesh.positions[index])
            cache[index] = result
            if len(cache) > self.cache_entries:
                cache.popitem(last=False)
            return result

        primitives: list[Primitive] = []
        next_id = first_primitive_id
        for triangle in range(mesh.num_triangles):
            self.stats.triangles_in += 1
            idx = mesh.indices[3 * triangle:3 * triangle + 3]
            screen = [shade_vertex(i) for i in idx]
            if any(v is None for v in screen):
                self.stats.culled_near_plane += 1
                continue
            prim = Primitive(
                next_id,
                Vertex(screen[0].x, screen[0].y, screen[0].depth),
                Vertex(screen[1].x, screen[1].y, screen[1].depth),
                Vertex(screen[2].x, screen[2].y, screen[2].depth),
                num_attributes=mesh.attributes_per_vertex,
            )
            if prim.is_degenerate():
                self.stats.culled_degenerate += 1
                continue
            # In y-down screen space a counter-clockwise (front-facing,
            # y-up convention) triangle has negative signed area.
            if self.backface_culling and prim.signed_area() > 0:
                self.stats.culled_backface += 1
                continue
            primitives.append(prim)
            next_id += 1
        self.stats.emitted += len(primitives)
        return primitives
