"""The Vertex Stage: transforms object-space geometry to screen space.

The Geometry Pipeline (paper Figure 2, left) fetches vertices,
transforms them by the model-view-projection matrix, and hands
screen-space primitives to the binner.  This module provides the matrix
toolkit (numpy 4x4, column vectors) and the clip -> NDC -> viewport
chain, including near-plane rejection.

Triangles that straddle the near plane are rejected rather than clipped
into sub-triangles — the synthetic scenes this library generates never
straddle it, and exact polygon clipping would add state the memory
system never sees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.config import ScreenConfig


def identity() -> np.ndarray:
    return np.eye(4)


def translation(x: float, y: float, z: float) -> np.ndarray:
    matrix = np.eye(4)
    matrix[:3, 3] = (x, y, z)
    return matrix


def scaling(x: float, y: float, z: float) -> np.ndarray:
    return np.diag([x, y, z, 1.0])


def rotation_y(angle_rad: float) -> np.ndarray:
    c, s = math.cos(angle_rad), math.sin(angle_rad)
    matrix = np.eye(4)
    matrix[0, 0], matrix[0, 2] = c, s
    matrix[2, 0], matrix[2, 2] = -s, c
    return matrix


def rotation_x(angle_rad: float) -> np.ndarray:
    c, s = math.cos(angle_rad), math.sin(angle_rad)
    matrix = np.eye(4)
    matrix[1, 1], matrix[1, 2] = c, -s
    matrix[2, 1], matrix[2, 2] = s, c
    return matrix


def perspective(fov_y_rad: float, aspect: float,
                near: float, far: float) -> np.ndarray:
    """OpenGL-style right-handed perspective projection."""
    if near <= 0 or far <= near:
        raise ValueError("need 0 < near < far")
    f = 1.0 / math.tan(fov_y_rad / 2.0)
    matrix = np.zeros((4, 4))
    matrix[0, 0] = f / aspect
    matrix[1, 1] = f
    matrix[2, 2] = (far + near) / (near - far)
    matrix[2, 3] = 2 * far * near / (near - far)
    matrix[3, 2] = -1.0
    return matrix


def look_at(eye, target, up=(0.0, 1.0, 0.0)) -> np.ndarray:
    eye = np.asarray(eye, dtype=float)
    forward = np.asarray(target, dtype=float) - eye
    forward /= np.linalg.norm(forward)
    right = np.cross(forward, np.asarray(up, dtype=float))
    right /= np.linalg.norm(right)
    true_up = np.cross(right, forward)
    matrix = np.eye(4)
    matrix[0, :3] = right
    matrix[1, :3] = true_up
    matrix[2, :3] = -forward
    matrix[:3, 3] = -matrix[:3, :3] @ eye
    return matrix


@dataclass(frozen=True)
class ScreenVertex:
    """A vertex after the viewport transform (pixels + depth in [0,1])."""

    x: float
    y: float
    depth: float


class VertexTransform:
    """clip = MVP * object; NDC = clip/w; screen = viewport(NDC)."""

    def __init__(self, mvp: np.ndarray, screen: ScreenConfig) -> None:
        mvp = np.asarray(mvp, dtype=float)
        if mvp.shape != (4, 4):
            raise ValueError("MVP must be a 4x4 matrix")
        self.mvp = mvp
        self.screen = screen

    def to_clip(self, position) -> np.ndarray:
        x, y, z = position
        return self.mvp @ np.array([x, y, z, 1.0])

    def to_screen(self, position) -> ScreenVertex | None:
        """Screen-space vertex, or None when behind the near plane."""
        clip = self.to_clip(position)
        w = clip[3]
        if w <= 0:
            return None
        ndc = clip[:3] / w
        x = (ndc[0] * 0.5 + 0.5) * self.screen.width
        # NDC y is up; pixel y is down.
        y = (0.5 - ndc[1] * 0.5) * self.screen.height
        depth = ndc[2] * 0.5 + 0.5
        return ScreenVertex(float(x), float(y), float(depth))
