"""Cache-aware micro-batching scheduler over the PR 2 process pool.

The scheduler sees the whole queue of pending simulation requests —
the serving-side analogue of the paper's Tile Fetcher, which exploits
a fully known future access stream to schedule the memory hierarchy
optimally.  That foresight buys four things a one-shot CLI cannot
have:

- **coalescing** — identical request keys share one in-flight future
  (the *Rendering Elimination* early-discard idea applied to compute:
  redundant in-flight work is detected by identity, not recomputed);
- **micro-batching** — compatible jobs (same benchmark alias and
  scale) are grouped into one pool call so the workload is built once
  per batch, exactly like the parallel engine's per-alias fan-out;
- **cache-aware ordering** — requests whose keys are warm in the PR 2
  disk store are served from a fast lane without ever occupying a
  pool slot, and finished results feed an in-memory memo so repeats
  are instant;
- **admission control** — a bounded queue rejects overload with a
  typed 429-style error instead of accepting unbounded latency.

Robustness: per-job timeouts with bounded exponential-backoff retry,
a watchdog that cancels overdue batches and recycles a wedged worker
pool, and a graceful drain that finishes queued + in-flight work
while rejecting new submissions (the SIGTERM path of ``tcor-serve``).

Everything here runs on one event loop; the only threads involved are
the executor bridges (``run_in_executor``) for pool batches and disk
I/O.  Public entry points: :meth:`Scheduler.submit`,
:meth:`Scheduler.status`, :meth:`Scheduler.wait`,
:meth:`Scheduler.result_payload`, :meth:`Scheduler.drain`,
:meth:`Scheduler.close`.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor

from repro.parallel.store import result_from_dict, result_to_dict
from repro.serve import schema
from repro.serve.metrics import ServeMetrics
from repro.serve.schema import JobRequest, JobStatus, ServeError
from repro.serve.worker import simulate_request_batch

DEFAULT_QUEUE_LIMIT = 64
DEFAULT_BATCH_WINDOW_S = 0.02
DEFAULT_BATCH_MAX = 8
DEFAULT_TIMEOUT_S = 600.0
DEFAULT_MAX_ATTEMPTS = 2
DEFAULT_RETRY_BACKOFF_S = 0.05
DEFAULT_WATCHDOG_INTERVAL_S = 1.0
DEFAULT_MEMO_LIMIT = 512


class Job:
    """One admitted request's lifecycle (scheduler-internal)."""

    __slots__ = ("key", "request", "state", "lane", "attempts",
                 "coalesced", "error", "record", "created_s",
                 "started_s", "finished_s", "done")

    def __init__(self, key: str, request: JobRequest) -> None:
        self.key = key
        self.request = request
        self.state = schema.QUEUED
        self.lane: str | None = None
        self.attempts = 0
        self.coalesced = 0
        self.error: str | None = None
        self.record: dict | None = None
        self.created_s = time.monotonic()
        self.started_s: float | None = None
        self.finished_s: float | None = None
        self.done = asyncio.Event()

    def status(self) -> JobStatus:
        now = time.monotonic()
        queued_for = (self.started_s or self.finished_s or now) \
            - self.created_s
        running_for = 0.0
        if self.started_s is not None:
            running_for = (self.finished_s or now) - self.started_s
        return JobStatus(job_id=self.key, state=self.state,
                         priority=self.request.priority, lane=self.lane,
                         attempts=self.attempts, coalesced=self.coalesced,
                         error=self.error, queued_for_s=queued_for,
                         running_for_s=running_for)


class Scheduler:
    """Admission control + micro-batching over one worker pool."""

    def __init__(self, *, jobs: int = 2,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 batch_window_s: float = DEFAULT_BATCH_WINDOW_S,
                 batch_max: int = DEFAULT_BATCH_MAX,
                 disk=None,
                 metrics: ServeMetrics | None = None,
                 default_timeout_s: float = DEFAULT_TIMEOUT_S,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
                 watchdog_interval_s: float = DEFAULT_WATCHDOG_INTERVAL_S,
                 memo_limit: int = DEFAULT_MEMO_LIMIT,
                 executor_factory=None,
                 name: str | None = None) -> None:
        self.jobs = max(1, int(jobs))
        # Provenance: a named scheduler (one shard of a cluster) stamps
        # its name into every result as ``served_by``.
        self.name = name
        self.queue_limit = max(1, int(queue_limit))
        self.batch_window_s = batch_window_s
        self.batch_max = max(1, int(batch_max))
        self.disk = disk
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.default_timeout_s = default_timeout_s
        self.max_attempts = max(1, int(max_attempts))
        self.retry_backoff_s = retry_backoff_s
        self.watchdog_interval_s = watchdog_interval_s
        self.memo_limit = max(1, int(memo_limit))
        self._executor_factory = executor_factory
        # The request key carries the simulator-code signature exactly
        # when a disk store (which already computed it) is attached;
        # an in-memory-only scheduler keys on the payload alone.
        self.signature = getattr(disk, "signature", "") or ""
        self.draining = False
        self._closed = False
        self._jobs: dict[str, Job] = {}
        self._finished: OrderedDict[str, None] = OrderedDict()
        self._queues: dict[str, deque[Job]] = {
            priority: deque() for priority in schema.PRIORITIES}
        self._active = 0
        self._inflight_jobs = 0
        self._inflight: dict[asyncio.Task, float] = {}
        self._pool = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event | None = None
        self._batcher: asyncio.Task | None = None
        self._watchdog: asyncio.Task | None = None

    # -- lifecycle -----------------------------------------------------
    def _make_pool(self):
        if self._executor_factory is not None:
            return self._executor_factory(self.jobs)
        return ProcessPoolExecutor(max_workers=self.jobs)

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._pool = self._make_pool()
        self._wake = asyncio.Event()
        self._batcher = asyncio.create_task(self._batch_loop())
        self._watchdog = asyncio.create_task(self._watch_loop())

    async def drain(self, timeout_s: float | None = None) -> int:
        """Stop admitting, finish queued and in-flight jobs.

        Returns the number of jobs that were still live when the drain
        began.  Jobs that do not finish within ``timeout_s`` are left
        to :meth:`close` to cancel.
        """
        self.draining = True
        self.metrics.decision("drain")
        live = [job for job in self._jobs.values()
                if job.state not in schema.TERMINAL_STATES]
        if self._wake is not None:
            self._wake.set()
        if live:
            waits = asyncio.gather(
                *(job.done.wait() for job in live))
            try:
                await asyncio.wait_for(waits, timeout_s)
            except asyncio.TimeoutError:
                pass  # whatever is left is close()'s to cancel
        drained = sum(1 for job in live
                      if job.state in schema.TERMINAL_STATES)
        self.metrics.count("drained", drained)
        return len(live)

    async def close(self) -> None:
        """Hard stop: cancel loops and in-flight batches, fail every
        job still live, shut the pool down without waiting."""
        self.draining = True
        self._closed = True
        for task in (self._batcher, self._watchdog):
            if task is not None:
                task.cancel()
        for task in list(self._inflight):
            task.cancel()
        pending = [task for task in (self._batcher, self._watchdog)
                   if task is not None]
        pending += list(self._inflight)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for job in list(self._jobs.values()):
            if job.state not in schema.TERMINAL_STATES:
                self._finish(job, schema.CANCELLED,
                             error="scheduler closed")
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)

    # -- submission ----------------------------------------------------
    def submit(self, request: JobRequest) -> tuple[Job, bool]:
        """Admit one request; returns ``(job, reused)``.

        ``reused`` is true when the submission coalesced onto an
        in-flight job or hit the memo of a finished one.  Raises
        :class:`ServeError` (``queue_full``/``draining``) on
        rejection.
        """
        key = schema.request_key(request, self.signature)
        self.metrics.count("submitted")
        if request.sequence is not None:
            self.metrics.count("sequence_frames")
        self.metrics.decision("submit", key=key)
        existing = self._jobs.get(key)
        if existing is not None:
            if existing.state in (schema.QUEUED, schema.RUNNING):
                existing.coalesced += 1
                self.metrics.count("coalesced")
                self.metrics.decision("coalesce", key=key,
                                      lane=existing.lane)
                return existing, True
            if existing.state == schema.DONE:
                self.metrics.count("memo_hits")
                self.metrics.decision("memo_hit", key=key, lane="memo")
                return existing, True
            # Failed/timed-out/cancelled keys may be resubmitted: fall
            # through and replace the stale entry with a fresh job.
            self._finished.pop(key, None)
        if self.draining:
            self.metrics.count("rejected.draining")
            self.metrics.decision("reject", key=key)
            raise ServeError.draining()
        if self._active >= self.queue_limit:
            self.metrics.count("rejected.queue_full")
            self.metrics.decision("reject", key=key)
            raise ServeError.queue_full(self.queue_limit)
        job = Job(key, request)
        self._jobs[key] = job
        self._queues[request.priority].append(job)
        self._active += 1
        self.metrics.count("accepted")
        self.metrics.decision("enqueue", key=key)
        self._pulse()
        if self._wake is not None:
            self._wake.set()
        return job, False

    # -- queries -------------------------------------------------------
    def status(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError.not_found(job_id)
        return job

    async def wait(self, job_id: str,
                   timeout_s: float | None = None) -> Job:
        job = self.status(job_id)
        try:
            await asyncio.wait_for(job.done.wait(), timeout_s)
        except asyncio.TimeoutError:
            raise ServeError.wait_timeout(job_id, timeout_s or 0.0) \
                from None
        return job

    def result_payload(self, job: Job) -> dict:
        """The :class:`~repro.serve.schema.JobResult` wire payload."""
        elapsed = ((job.finished_s or time.monotonic())
                   - job.created_s)
        payload = {"id": job.key, "state": job.state, "lane": job.lane,
                   "attempts": job.attempts,
                   "elapsed_s": elapsed, "result": None, "metrics": {},
                   "invariant_failures": [], "error": job.error,
                   "served_by": self.name}
        if job.record is not None:
            payload["result"] = job.record.get("result")
            payload["metrics"] = job.record.get("metrics", {})
            payload["invariant_failures"] = job.record.get(
                "invariant_failures", [])
        return payload

    def counts(self) -> dict:
        """Live job-population counts (the ``/healthz`` body)."""
        states: dict[str, int] = {}
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {"active": self._active, "pending": self._pending_count(),
                "inflight": self._inflight_jobs, "states": states}

    # -- internals -----------------------------------------------------
    def _pending_count(self) -> int:
        return sum(1 for queue in self._queues.values()
                   for job in queue if job.state == schema.QUEUED)

    def _pulse(self) -> None:
        self.metrics.gauge("queue_depth", self._pending_count())
        self.metrics.gauge("inflight", self._inflight_jobs)
        self.metrics.gauge("active", self._active)

    def _finish(self, job: Job, state: str, *, record: dict | None = None,
                lane: str | None = None, error: str | None = None) -> None:
        job.state = state
        job.record = record
        if lane is not None:
            job.lane = lane
        job.error = error
        job.finished_s = time.monotonic()
        self._active -= 1
        if state == schema.DONE:
            self.metrics.count("completed")
            self.metrics.observe_latency(job.finished_s - job.created_s)
            self.metrics.decision("complete", key=job.key, lane=job.lane)
        else:
            self.metrics.count("failed")
            self.metrics.decision("fail", key=job.key, lane=job.lane)
        job.done.set()
        self._finished[job.key] = None
        while len(self._finished) > self.memo_limit:
            stale, _ = self._finished.popitem(last=False)
            self._jobs.pop(stale, None)
        self._pulse()

    def _take_batch(self) -> list[Job]:
        """Up to ``batch_max`` queued jobs sharing the head job's
        (alias, scale), interactive lane first within the group."""
        head: Job | None = None
        for priority in schema.PRIORITIES:
            queue = self._queues[priority]
            while queue and queue[0].state != schema.QUEUED:
                queue.popleft()
            if queue:
                head = queue[0]
                break
        if head is None:
            return []
        # The animation recipe is part of batch compatibility: a batch
        # shares one workload build, and an animated workload is a
        # different (multi-frame) build per AnimationSpec.
        group = (head.request.alias, head.request.scale,
                 head.request.anim)
        batch: list[Job] = []
        for priority in schema.PRIORITIES:
            queue = self._queues[priority]
            kept: deque[Job] = deque()
            while queue:
                job = queue.popleft()
                if job.state != schema.QUEUED:
                    continue
                if (len(batch) < self.batch_max
                        and (job.request.alias, job.request.scale,
                             job.request.anim) == group):
                    batch.append(job)
                else:
                    kept.append(job)
            queue.extend(kept)
        return batch

    async def _batch_loop(self) -> None:
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            if not self._pending_count():
                continue
            if self.batch_window_s > 0:
                # The micro-batching window: let near-simultaneous
                # compatible submissions (and duplicates) land before
                # the group is cut.
                await asyncio.sleep(self.batch_window_s)
            while True:
                batch = self._take_batch()
                if not batch:
                    break
                cold = await self._serve_warm(batch)
                if cold:
                    self._dispatch(cold)
            self._pulse()

    async def _serve_warm(self, batch: list[Job]) -> list[Job]:
        """The disk-warm fast lane: complete cache hits immediately,
        return the jobs that actually need a pool slot.

        The whole batch is probed in *one* executor round-trip and the
        hits are finished in one synchronous sweep afterwards, so the
        job population mutates atomically between suspension points
        (SIM202 discipline) and the fast lane costs one thread
        hand-off per batch instead of one per job (SIM201's fix)."""
        if self.disk is None:
            return batch
        assert self._loop is not None
        hits = await self._loop.run_in_executor(
            None, schema.probe_disk_batch, self.disk,
            [job.request for job in batch])
        cold: list[Job] = []
        for job, hit in zip(batch, hits):
            if job.state != schema.QUEUED:
                # close()/drain raced the probe and already finished
                # this job; neither dispatch nor double-finish it.
                continue
            if hit is None:
                cold.append(job)
                continue
            self.metrics.count("disk_hits")
            self.metrics.decision("disk_hit", key=job.key, lane="disk")
            record = {"key": job.key, "result": result_to_dict(hit),
                      "metrics": {}, "invariant_failures": []}
            self._finish(job, schema.DONE, record=record, lane="disk")
        return cold

    def _dispatch(self, batch: list[Job]) -> None:
        timeout = max((job.request.timeout_s or self.default_timeout_s)
                      for job in batch)
        task = asyncio.create_task(self._run_batch(batch, timeout))
        # Watchdog deadline: generous past the wait_for timeout, so it
        # only fires when the batch task itself is wedged.
        self._inflight[task] = (time.monotonic() + timeout
                                + 2 * self.watchdog_interval_s)
        task.add_done_callback(
            lambda done: self._inflight.pop(done, None))

    async def _run_batch(self, batch: list[Job], timeout: float) -> None:
        assert self._loop is not None
        request0 = batch[0].request
        now = time.monotonic()
        for job in batch:
            job.state = schema.RUNNING
            job.started_s = now
            job.attempts += 1
        self._inflight_jobs += len(batch)
        self.metrics.count("batches")
        self.metrics.count("batch_jobs", len(batch))
        self.metrics.observe_batch(len(batch))
        self.metrics.decision("dispatch", lane="pool", jobs=len(batch))
        self._pulse()
        entries = tuple(
            (job.key, schema.config_to_payload(job.request.config))
            for job in batch)
        anim_payload = (schema.anim_to_payload(request0.anim)
                        if request0.anim is not None else None)
        pool = self._pool
        try:
            records = await asyncio.wait_for(
                self._loop.run_in_executor(
                    pool, simulate_request_batch,
                    request0.alias, request0.scale, entries,
                    anim_payload),
                timeout)
        except (asyncio.TimeoutError, asyncio.CancelledError):
            # Timeout, watchdog cancellation, or close(): the worker
            # may still be crunching a job nobody wants — recycle the
            # pool so the slot comes back, then retry the batch's jobs
            # on the fresh pool (up to their attempt budget).
            self.metrics.count("timeouts")
            self.metrics.decision("timeout", jobs=len(batch))
            self._recycle_pool(pool)
            for job in batch:
                self._retry_or_fail(
                    job, schema.TIMEOUT,
                    f"batch timed out after {timeout:g}s")
        except Exception as exc:
            # Pool-level failure (BrokenProcessPool, pickling): the
            # simulation itself may be fine, so retry is worthwhile.
            self.metrics.decision("fail", jobs=len(batch))
            for job in batch:
                self._retry_or_fail(
                    job, schema.FAILED,
                    f"{type(exc).__name__}: {exc}")
        else:
            # Completion is one synchronous sweep: every job in the
            # batch reaches its terminal state with no await between,
            # so status()/counts() readers never observe a
            # half-finished batch, and the memo/_jobs maps mutate
            # atomically on the loop.  Disk write-through happens
            # after, in one executor round-trip for the whole batch.
            by_key = {record["key"]: record for record in records}
            finished: list[tuple[Job, dict]] = []
            for job in batch:
                record = by_key.get(job.key)
                if record is None:
                    self._retry_or_fail(job, schema.FAILED,
                                        "worker returned no record")
                elif record.get("error"):
                    # Deterministic simulation failure: retrying would
                    # reproduce it bit-for-bit, so fail immediately.
                    self._finish(job, schema.FAILED,
                                 error=record["error"])
                else:
                    self._finish(job, schema.DONE, record=record,
                                 lane="pool")
                    finished.append((job, record))
            await self._write_through_batch(finished)
        finally:
            self._inflight_jobs -= len(batch)
            self._pulse()

    async def _write_through_batch(
            self, finished: list[tuple[Job, dict]]) -> None:
        if self.disk is None or not finished:
            return
        assert self._loop is not None
        entries = [(job.request, result_from_dict(record["result"]))
                   for job, record in finished]
        await self._loop.run_in_executor(
            None, schema.store_disk_batch, self.disk, entries)

    def _retry_or_fail(self, job: Job, final_state: str,
                       message: str) -> None:
        if job.attempts >= self.max_attempts or self._closed:
            self._finish(job, final_state, error=message)
            return
        self.metrics.count("retries")
        self.metrics.decision("retry", key=job.key)
        job.state = schema.QUEUED
        job.started_s = None
        delay = self.retry_backoff_s * (2 ** max(0, job.attempts - 1))
        assert self._loop is not None
        self._loop.call_later(delay, self._requeue, job)

    def _requeue(self, job: Job) -> None:
        if job.state != schema.QUEUED:
            return
        if self._closed:
            self._finish(job, schema.CANCELLED,
                         error="scheduler closed")
            return
        self._queues[job.request.priority].append(job)
        if self._wake is not None:
            self._wake.set()

    def _recycle_pool(self, pool) -> None:
        if pool is None:
            return
        if pool is self._pool and not self._closed:
            self._pool = self._make_pool()
            self.metrics.count("pool_recycles")
            self.metrics.decision("recycle")
        pool.shutdown(wait=False, cancel_futures=True)

    async def _watch_loop(self) -> None:
        """Self-healing backstop: re-kick the batcher if pending work
        sits idle (a lost wakeup), and cancel any batch task that
        overran its deadline — the cancellation funnels into
        :meth:`_run_batch`'s timeout path, which recycles the pool."""
        while True:
            await asyncio.sleep(self.watchdog_interval_s)
            if self._pending_count() and self._wake is not None:
                self._wake.set()
            now = time.monotonic()
            for task, deadline in list(self._inflight.items()):
                if now > deadline and not task.done():
                    self.metrics.count("watchdog_cancels")
                    self.metrics.decision("recycle")
                    task.cancel()
