"""Blocking NDJSON client for the simulation service.

A deliberately small, dependency-free client over one TCP socket: one
JSON object per line out, one per line back.  Server-side failures
(typed :class:`~repro.serve.schema.ServeError` payloads) re-raise
client-side as :class:`ServeClientError` carrying the same code and
HTTP-equivalent status, so callers can distinguish ``queue_full``
back-pressure from a genuine failure.

Synchronous on purpose: the callers are tests, scripts and notebook
cells; the asynchrony lives server-side.
"""

from __future__ import annotations

import json
import socket

from repro.serve import schema
from repro.serve.schema import JobRequest, JobResult, JobStatus


class ServeClientError(Exception):
    """A server-reported error, rehydrated client-side."""

    def __init__(self, code: str, message: str, http_status: int) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.http_status = http_status

    @classmethod
    def from_payload(cls, payload: dict) -> "ServeClientError":
        return cls(str(payload.get("code", "internal")),
                   str(payload.get("message", "unknown error")),
                   int(payload.get("http_status", 500)))


class ServeClient:
    """One NDJSON connection to a running :class:`SimulationServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 *, timeout_s: float | None = 60.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout_s)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire ----------------------------------------------------------
    def call(self, payload: dict) -> dict:
        """One request/response round trip; raises on server error."""
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServeClientError("disconnected",
                                   "server closed the connection", 502)
        response = json.loads(line)
        if not response.get("ok", False):
            raise ServeClientError.from_payload(
                response.get("error") or {})
        return response

    # -- typed operations ----------------------------------------------
    def submit(self, request: JobRequest, *, wait: bool = False,
               timeout_s: float | None = None) -> dict:
        payload: dict = {"op": "submit",
                         "request": schema.request_to_payload(request)}
        if wait:
            payload["wait"] = True
            if timeout_s is not None:
                payload["timeout_s"] = timeout_s
        return self.call(payload)

    def run(self, request: JobRequest,
            timeout_s: float | None = None) -> JobResult:
        """Submit and block until the typed result is back."""
        response = self.submit(request, wait=True, timeout_s=timeout_s)
        return schema.job_result_from_payload(response["result"])

    def status(self, job_id: str) -> JobStatus:
        response = self.call({"op": "status", "id": job_id})
        return schema.status_from_payload(response["status"])

    def wait(self, job_id: str,
             timeout_s: float | None = None) -> JobResult:
        payload: dict = {"op": "wait", "id": job_id}
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        response = self.call(payload)
        return schema.job_result_from_payload(response["result"])

    def healthz(self) -> dict:
        return self.call({"op": "healthz"})

    def metrics(self) -> dict:
        return self.call({"op": "metrics"})["metrics"]
