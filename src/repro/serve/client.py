"""Blocking NDJSON client for the simulation service — cluster-aware.

A deliberately small, dependency-free client over one TCP socket: one
JSON object per line out, one per line back.  The same client speaks
to a single ``tcor-serve`` worker or to the cluster router (the router
duck-types the whole server surface), and accepts one address or a
list — with a list, connection is established to the first endpoint
that answers and connection-level failures mid-call fail over to the
next (safe to retry: request keys are deterministic, so a resubmission
coalesces or memo-hits instead of recomputing).

*Every* failure path raises the typed :class:`ServeClientError`:
server-reported errors re-raise with the server's code and
HTTP-equivalent status (``queue_full``, ``draining``,
``version_mismatch``, ...), socket timeouts surface as
``code="timeout"``, refused/dropped connections as
``code="connect_failed"``/``"disconnected"``, and malformed replies as
``code="protocol"`` — callers never see a bare ``OSError``.

Requests carry the wire-schema version (``"v"``); a server more than
one schema step away answers with the typed ``version_mismatch`` (HTTP
426) instead of silently misparsing.

Synchronous on purpose: the callers are tests, scripts and notebook
cells; the asynchrony lives server-side.
"""

from __future__ import annotations

import hashlib
import json
import socket

from repro.serve import schema
from repro.serve.schema import JobRequest, JobResult, JobStatus


def sequence_name(alias: str, scale: float, anim) -> str:
    """Deterministic affinity name for one animation stream.

    Derived from the stream's content (benchmark, scale, recipe), so
    every client streaming the same sequence shares one ring placement
    without coordinating.
    """
    recipe = json.dumps(
        {"alias": alias, "scale": scale,
         "anim": schema.anim_to_payload(anim)},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(recipe.encode()).hexdigest()[:16]


class ServeClientError(Exception):
    """A serving failure, typed: server-reported or transport-level."""

    def __init__(self, code: str, message: str, http_status: int) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.http_status = http_status

    @classmethod
    def from_payload(cls, payload: dict) -> "ServeClientError":
        return cls(str(payload.get("code", "internal")),
                   str(payload.get("message", "unknown error")),
                   int(payload.get("http_status", 500)))


def _normalize_endpoints(host, port, endpoints) -> list[tuple[str, int]]:
    """The endpoint list from the constructor's flexible forms:
    ``(host, port)``, one ``"host:port"`` string, or a list of either
    shape (strings or pairs)."""
    if endpoints is None:
        if isinstance(host, (list, tuple)):
            if (len(host) == 2 and isinstance(host[0], str)
                    and isinstance(host[1], int)):
                return [(host[0], host[1])]
            endpoints = host
        elif isinstance(host, str) and ":" in host:
            endpoints = [host]
        else:
            return [(str(host), int(port))]
    resolved: list[tuple[str, int]] = []
    for entry in endpoints:
        if isinstance(entry, str):
            name, _, number = entry.rpartition(":")
            if not name or not number.isdigit():
                raise ServeClientError(
                    "bad_endpoint",
                    f"endpoint must be host:port, got {entry!r}", 400)
            resolved.append((name, int(number)))
        else:
            name, number = entry
            resolved.append((str(name), int(number)))
    if not resolved:
        raise ServeClientError("bad_endpoint",
                               "no endpoints given", 400)
    return resolved


class ServeClient:
    """One NDJSON connection to a server or router, with failover.

    ``ServeClient("127.0.0.1", 8763)``, ``ServeClient("host:8763")``
    and ``ServeClient(["host:8763", "host:8764"])`` are all valid; so
    is ``ServeClient(endpoints=[...])``.  One connection is live at a
    time — the list is a preference order, not a fan-out.
    """

    def __init__(self, host="127.0.0.1", port: int = 0, *,
                 endpoints=None, timeout_s: float | None = 60.0) -> None:
        self.endpoints = _normalize_endpoints(host, port, endpoints)
        self.timeout_s = timeout_s
        self._sock: socket.socket | None = None
        self._file = None
        self._endpoint_index = 0
        self._connect_any()
        # Kept for callers that introspect where the client landed.
        self.host, self.port = self.endpoints[self._endpoint_index]

    # -- connection management -----------------------------------------
    def _connect_to(self, index: int) -> None:
        host, port = self.endpoints[index]
        sock = socket.create_connection((host, port),
                                        timeout=self.timeout_s)
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._endpoint_index = index
        self.host, self.port = host, port

    def _connect_any(self) -> None:
        """Connect to the first answering endpoint, starting from the
        current preference; raises typed ``connect_failed`` when every
        endpoint refuses."""
        last: Exception | None = None
        order = [(self._endpoint_index + offset) % len(self.endpoints)
                 for offset in range(len(self.endpoints))]
        for index in order:
            try:
                self._connect_to(index)
                return
            except OSError as exc:
                last = exc
        raise ServeClientError(
            "connect_failed",
            f"could not connect to any of "
            f"{['%s:%d' % pair for pair in self.endpoints]}: {last}",
            502)

    def _drop_connection(self) -> None:
        file, sock = self._file, self._sock
        self._file = None
        self._sock = None
        try:
            if file is not None:
                file.close()
        except OSError:
            pass  # connection already dead; dropping it is the point
        try:
            if sock is not None:
                sock.close()
        except OSError:
            pass

    def close(self) -> None:
        """Idempotent: safe to call twice, and safe via ``__exit__``
        even when the constructor's connect failed."""
        self._drop_connection()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire ----------------------------------------------------------
    def call(self, payload: dict) -> dict:
        """One request/response round trip; raises typed errors only.

        Connection-level failures (reset, EOF, refused) fail over to
        the next endpoint and retry the payload once per endpoint —
        deterministic request keys make the retry idempotent.  Socket
        timeouts do *not* fail over (the job may well be running;
        callers can re-``wait`` on it) and raise ``code="timeout"``.
        """
        if "v" not in payload:
            payload = dict(payload)
            payload["v"] = schema.SCHEMA_VERSION
        attempts = max(1, len(self.endpoints))
        for attempt in range(attempts):
            if self._file is None:
                self._connect_any()
            try:
                return self._round_trip(payload)
            except socket.timeout:
                # TimeoutError subclasses OSError: catch it first.  The
                # connection is mid-reply and unusable; drop it so the
                # next call reconnects cleanly.
                self._drop_connection()
                raise ServeClientError(
                    "timeout",
                    f"no reply from {self.host}:{self.port} within "
                    f"{self.timeout_s:g}s", 504) from None
            except (ConnectionError, OSError) as exc:
                failed = self._endpoint_index
                self._drop_connection()
                if attempt + 1 >= attempts:
                    raise ServeClientError(
                        "disconnected",
                        f"lost connection to {self.host}:{self.port}: "
                        f"{exc}", 502) from None
                self._endpoint_index = (failed + 1) % len(self.endpoints)
        raise AssertionError("unreachable")  # loop always returns/raises

    def _round_trip(self, payload: dict) -> dict:
        assert self._file is not None
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            self._drop_connection()
            raise ServeClientError(
                "protocol", f"server sent invalid JSON: {exc}",
                502) from None
        if not isinstance(response, dict):
            self._drop_connection()
            raise ServeClientError(
                "protocol", "server sent a non-object reply", 502)
        if not response.get("ok", False):
            raise ServeClientError.from_payload(
                response.get("error") or {})
        return response

    # -- typed operations ----------------------------------------------
    def submit(self, request: JobRequest, *, wait: bool = False,
               timeout_s: float | None = None) -> dict:
        payload: dict = {"op": "submit",
                         "request": schema.request_to_payload(request)}
        if wait:
            payload["wait"] = True
            if timeout_s is not None:
                payload["timeout_s"] = timeout_s
        return self.call(payload)

    def run(self, request: JobRequest,
            timeout_s: float | None = None) -> JobResult:
        """Submit and block until the typed result is back."""
        response = self.submit(request, wait=True, timeout_s=timeout_s)
        return schema.job_result_from_payload(response["result"])

    def run_sequence(self, alias: str, anim, *, scale: float = 1.0,
                     config=None, sequence: str | None = None,
                     priority: str = schema.DEFAULT_PRIORITY,
                     timeout_s: float | None = None) -> list[JobResult]:
        """Stream one animated sequence as cumulative frame prefixes.

        Frame ``f`` submits the request for ``anim.prefix(f + 1)`` —
        the animation layer's determinism contract guarantees every
        prefix reproduces the first frames bit-for-bit, so prefix
        requests are content-addressed and coalesce/memoize like any
        other.  Each frame after the first re-asserts the previous
        prefix first (an instant memo hit on a warm scheduler), which
        both exploits and surfaces sequence warmth in the ``serve.*``
        metrics; all submissions carry the same ``sequence`` affinity
        hint so the cluster router pins the stream to one shard.
        Returns one :class:`JobResult` per frame, in order.
        """
        from repro.api import SimulationConfig

        config = config if config is not None else SimulationConfig()
        if sequence is None:
            sequence = sequence_name(alias, scale, anim)
        results: list[JobResult] = []
        previous: JobRequest | None = None
        for frame in range(anim.frames):
            request = JobRequest(alias=alias, scale=scale, config=config,
                                 priority=priority, timeout_s=timeout_s,
                                 anim=anim.prefix(frame + 1),
                                 sequence=sequence)
            if previous is not None:
                self.run(previous, timeout_s=timeout_s)
            results.append(self.run(request, timeout_s=timeout_s))
            previous = request
        return results

    def status(self, job_id: str) -> JobStatus:
        response = self.call({"op": "status", "id": job_id})
        return schema.status_from_payload(response["status"])

    def wait(self, job_id: str,
             timeout_s: float | None = None) -> JobResult:
        payload: dict = {"op": "wait", "id": job_id}
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        response = self.call(payload)
        return schema.job_result_from_payload(response["result"])

    def healthz(self) -> dict:
        return self.call({"op": "healthz"})

    def metrics(self) -> dict:
        return self.call({"op": "metrics"})["metrics"]
