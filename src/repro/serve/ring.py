"""Consistent-hash ring: stable request-key → shard affinity.

The cluster router places every backend at ``replicas`` pseudo-random
points on a 2^64 ring (SHA-256 of ``"{node}#{i}"``) and routes each
request key to the first point clockwise from the key's own hash.
Two properties make this the right shape for key-affinity sharding:

- **stability** — adding or removing one backend remaps only the keys
  whose arc the change touches (≈ 1/N of the keyspace), so the memo
  and disk warmth the surviving shards accumulated stays where it is;
- **balance** — with enough virtual points per node the arcs even out:
  at the default ``replicas`` the max/min shard-load ratio over
  uniform keys stays comfortably inside 1.5 for small clusters (the
  ring unit tests pin that bound at 3 nodes).

:meth:`HashRing.node_for` takes an ``avoid`` set so the router can
walk past a shard that is down (or mid-drain) to the next arc owner —
the same deterministic fallback every router instance computes, with
no coordination.
"""

from __future__ import annotations

import bisect
import hashlib

DEFAULT_REPLICAS = 160


def _point(data: str) -> int:
    """A stable 64-bit ring position for one string."""
    return int.from_bytes(
        hashlib.sha256(data.encode()).digest()[:8], "big")


class HashRing:
    """Consistent hashing over named nodes with virtual replicas."""

    def __init__(self, nodes: tuple[str, ...] = (),
                 *, replicas: int = DEFAULT_REPLICAS) -> None:
        self.replicas = max(1, int(replicas))
        self._points: list[int] = []      # sorted ring positions
        self._owners: list[str] = []      # owner of each position
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------
    def add(self, node: str) -> bool:
        """Place one node on the ring; no-op if already present."""
        if node in self._nodes:
            return False
        self._nodes.add(node)
        for index in range(self.replicas):
            position = _point(f"{node}#{index}")
            at = bisect.bisect(self._points, position)
            # Collisions between 64-bit points are vanishingly rare;
            # insertion order breaks the tie deterministically.
            self._points.insert(at, position)
            self._owners.insert(at, node)
        return True

    def remove(self, node: str) -> bool:
        """Take one node off the ring; no-op if absent."""
        if node not in self._nodes:
            return False
        self._nodes.discard(node)
        kept = [(position, owner) for position, owner
                in zip(self._points, self._owners) if owner != node]
        self._points = [position for position, _ in kept]
        self._owners = [owner for _, owner in kept]
        return True

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # -- lookup --------------------------------------------------------
    def node_for(self, key: str, avoid: frozenset[str] | set[str] = frozenset()
                 ) -> str | None:
        """The node owning ``key``'s arc, walking past ``avoid``-ed
        nodes to the next distinct owner clockwise.  ``None`` when the
        ring is empty or every node is avoided."""
        if not self._points:
            return None
        eligible = self._nodes - set(avoid)
        if not eligible:
            return None
        start = bisect.bisect(self._points, _point(key)) \
            % len(self._points)
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner in eligible:
                return owner
        return None

    def spread(self, keys) -> dict[str, int]:
        """How many of ``keys`` land on each node (balance probes)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            owner = self.node_for(key)
            if owner is not None:
                counts[owner] += 1
        return counts
