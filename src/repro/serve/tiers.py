"""The router's tiered result cache: memory LRU over the shared disk.

Two :class:`~repro.parallel.store.ResultTier` implementations plus the
composite the cluster router actually holds:

- :class:`MemoryTier` — a bounded in-memory LRU keyed by request key.
  The shape follows the classic tile-cache design (an ordered recency
  list over a key → record map, evicting from the cold end while over
  budget), sized in *bytes* of serialized record so one pathological
  result cannot silently displace hundreds of small ones;
- :class:`DiskRecordTier` — the existing concurrent-writer-safe
  :class:`~repro.parallel.store.DiskCache` adapted to the tier
  contract through the wire schema's request ↔ store-record mapping.
  Only :func:`~repro.serve.schema.disk_mappable` requests reach the
  store (the same rule the single-node scheduler's warm lane applies);
- :class:`TieredResultCache` — memory first, then disk, with a
  disk hit promoted into the memory tier so the next lookup for a hot
  key never leaves the router process.

The memory tier is pure dict work and safe to call on the event loop;
every disk probe is file I/O and must be pushed to an executor — the
composite splits its API accordingly (``lookup_memory`` vs. the
blocking ``probe_disk``/``sweep``).
"""

from __future__ import annotations

import json
from collections import OrderedDict

from repro.parallel.store import ResultTier, result_to_dict
from repro.serve import schema
from repro.serve.schema import JobRequest

DEFAULT_MEMORY_TIER_BYTES = 64 * 1024 * 1024


def record_for_result(result, *, metrics=None,
                      invariant_failures=()) -> dict:
    """A tier record from one ``SystemResult`` (disk records carry no
    metrics snapshot, exactly like the single-node disk-warm lane)."""
    return {"result": result_to_dict(result),
            "metrics": dict(metrics or {}),
            "invariant_failures": list(invariant_failures)}


class MemoryTier(ResultTier):
    """Bounded in-memory LRU of finished-job records.

    ``capacity_bytes`` bounds the sum of serialized record sizes; a
    record larger than the whole budget is refused outright (caching
    it would just evict everything else for one entry).  ``get``
    refreshes recency; eviction pops the least-recently-used end.
    """

    name = "memory"

    def __init__(self, capacity_bytes: int = DEFAULT_MEMORY_TIER_BYTES
                 ) -> None:
        super().__init__()
        self.capacity_bytes = max(0, int(capacity_bytes))
        self.size_bytes = 0
        self.evictions = 0
        self._records: OrderedDict[str, tuple[dict, int]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: str, context=None) -> dict | None:
        entry = self._records.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._records.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key: str, record: dict, context=None) -> None:
        cost = len(json.dumps(record, sort_keys=True, default=str))
        if cost > self.capacity_bytes:
            return
        stale = self._records.pop(key, None)
        if stale is not None:
            self.size_bytes -= stale[1]
        self._records[key] = (record, cost)
        self.size_bytes += cost
        while self.size_bytes > self.capacity_bytes and self._records:
            _, (_, freed) = self._records.popitem(last=False)
            self.size_bytes -= freed
            self.evictions += 1

    def resize(self, capacity_bytes: int) -> None:
        """Shrink (or grow) the budget, evicting cold entries to fit."""
        self.capacity_bytes = max(0, int(capacity_bytes))
        while self.size_bytes > self.capacity_bytes and self._records:
            _, (_, freed) = self._records.popitem(last=False)
            self.size_bytes -= freed
            self.evictions += 1

    def clear(self) -> None:
        self._records.clear()
        self.size_bytes = 0


class DiskRecordTier(ResultTier):
    """The shared :class:`DiskCache`, spoken to through request keys.

    ``context`` must be the originating :class:`JobRequest`: the store
    is keyed by (spec, config, scale, code signature), so the tier
    re-derives that payload per call instead of storing a second index.
    Both methods do file I/O — callers on an event loop go through an
    executor.
    """

    name = "disk"

    def __init__(self, disk) -> None:
        super().__init__()
        self.disk = disk

    def get(self, key: str, context=None) -> dict | None:
        request = context
        if not isinstance(request, JobRequest) \
                or not schema.disk_mappable(request):
            self.misses += 1
            return None
        hit = schema.probe_disk(self.disk, request)
        if hit is None:
            self.misses += 1
            return None
        self.hits += 1
        return record_for_result(hit)

    def put(self, key: str, record: dict, context=None) -> None:
        request = context
        if not isinstance(request, JobRequest) \
                or not schema.disk_mappable(request):
            return
        result = record.get("result")
        if isinstance(result, dict):
            from repro.parallel.store import result_from_dict

            schema.store_disk(self.disk, request,
                              result_from_dict(result))


class TieredResultCache:
    """Memory tier over the shared disk store, with promotion.

    The router consults :meth:`lookup_memory` synchronously on every
    submission (hot keys never suspend), and pushes
    :meth:`probe_disk` to an executor for the cold path.  Completed
    and disk-served records are admitted to the memory tier via
    :meth:`admit`, so key affinity turns into actual residency.
    """

    def __init__(self, memory: MemoryTier | None = None,
                 disk=None) -> None:
        self.memory = memory
        self.disk_tier = DiskRecordTier(disk) if disk is not None else None

    @property
    def signature(self) -> str:
        """The simulator-code signature request keys are derived with
        (empty without a disk store, mirroring the scheduler)."""
        if self.disk_tier is None:
            return ""
        return getattr(self.disk_tier.disk, "signature", "") or ""

    def lookup_memory(self, key: str) -> dict | None:
        if self.memory is None:
            return None
        return self.memory.get(key)

    def probe_disk(self, key: str, request: JobRequest) -> dict | None:
        """Blocking disk lookup (executor territory); a hit is
        promoted into the memory tier."""
        if self.disk_tier is None:
            return None
        record = self.disk_tier.get(key, request)
        if record is not None and self.memory is not None:
            self.memory.put(key, record)
        return record

    def admit(self, key: str, record: dict) -> None:
        """Memory-tier write for one finished record.  Disk population
        stays the backends' write-through (they share the store), so
        the router never doubles the file traffic."""
        if self.memory is not None:
            self.memory.put(key, record)

    def snapshot(self) -> dict:
        """Flat counters for the metrics exporter."""
        counts: dict[str, float] = {}
        if self.memory is not None:
            counts["memory.hits"] = self.memory.hits
            counts["memory.misses"] = self.memory.misses
            counts["memory.entries"] = len(self.memory)
            counts["memory.bytes"] = self.memory.size_bytes
            counts["memory.evictions"] = self.memory.evictions
        if self.disk_tier is not None:
            counts["disk.hits"] = self.disk_tier.hits
            counts["disk.misses"] = self.disk_tier.misses
        return counts
