"""``repro.api.connect`` — the cluster as a simulation provider.

:class:`ServeHandle` implements the
:class:`~repro.experiments.common.SimulationProvider` ABC over a
:class:`~repro.serve.client.ServeClient` connection, so a remote
``tcor-serve`` worker — or the whole sharded cluster behind a router —
is a drop-in replacement for :func:`repro.api.simulation_cache`:
experiment modules, the driver and the benchmark suite simulate
through it unchanged, and the serving contract guarantees the results
are byte-identical to local :func:`repro.api.simulate` calls.

Division of labour mirrors the local providers: workloads (cheap,
deterministic geometry) build in-process and memoize; system
simulations (expensive) go over the wire, where the service's
coalescing/memo/tier machinery deduplicates them, and land in a local
memo so each (kind, alias, budget) cell is fetched at most once per
handle.  :meth:`prefetch` submits the named experiments' whole job
matrix without waiting, letting the service batch and shard it, then
collects the results — the remote analogue of the parallel provider's
process-pool fan-out.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.api import SimulationConfig
from repro.config import TCORConfig
from repro.experiments.common import SimulationCache, SimulationProvider
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.schema import DONE, JobRequest
from repro.tcor.system import SystemResult
from repro.workloads.suite import (
    BENCHMARK_ORDER,
    BENCHMARKS,
    Workload,
    build_workload,
)

DEFAULT_RESULT_TIMEOUT_S = 600.0


class ServeHandle(SimulationProvider):
    """A remote simulation provider over one service connection.

    Construct via :func:`connect` (or :func:`repro.api.connect`).
    Context-manageable; :meth:`close` is idempotent and closes the
    underlying client.
    """

    def __init__(self, client: ServeClient, *, scale: float = 1.0,
                 aliases: tuple[str, ...] | None = None,
                 timeout_s: float = DEFAULT_RESULT_TIMEOUT_S) -> None:
        self.client = client
        self.scale = scale
        self.aliases = tuple(aliases) if aliases else BENCHMARK_ORDER
        self.timeout_s = timeout_s
        self._workloads: dict[str, Workload] = {}
        self._systems: dict[tuple, SystemResult] = {}

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self.client.close()

    def __enter__(self) -> "ServeHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the provider contract -----------------------------------------
    def workload(self, alias: str) -> Workload:
        if alias not in self._workloads:
            self._workloads[alias] = build_workload(BENCHMARKS[alias],
                                                    scale=self.scale)
        return self._workloads[alias]

    def baseline(self, alias: str, tile_cache_bytes: int) -> SystemResult:
        key = SimulationCache.baseline_key(alias, tile_cache_bytes)
        result = self._systems.get(key)
        if result is None:
            result = self._run(self._baseline_request(alias,
                                                      tile_cache_bytes))
            self._systems[key] = result
        return result

    def tcor(self, alias: str, tile_cache_bytes: int,
             l2_enhancements: bool = True,
             tcor_config: TCORConfig | None = None) -> SystemResult:
        resolved = (tcor_config if tcor_config is not None
                    else TCORConfig.for_total_size(tile_cache_bytes))
        key = SimulationCache.tcor_key(alias, tile_cache_bytes,
                                       resolved, l2_enhancements)
        result = self._systems.get(key)
        if result is None:
            result = self._run(self._tcor_request(
                alias, tile_cache_bytes, l2_enhancements, tcor_config))
            self._systems[key] = result
        return result

    def prefetch(self, names=None) -> int:
        """Submit the named experiments' job matrix, collect results.

        Submissions go out without waiting (the service coalesces
        duplicates and shards the work); results are then collected in
        submission order.  Returns the number of jobs fetched over the
        wire (memoized cells are skipped).
        """
        from repro.parallel.engine import (
            EXPERIMENT_VARIANTS,
            enumerate_jobs,
        )

        names = tuple(names) if names is not None \
            else tuple(EXPERIMENT_VARIANTS)
        submitted: list[tuple[tuple, str]] = []
        for job in enumerate_jobs(names, self.aliases):
            if job.kind == "baseline":
                key = SimulationCache.baseline_key(job.alias,
                                                   job.tile_cache_bytes)
                request = self._baseline_request(job.alias,
                                                 job.tile_cache_bytes)
            else:
                l2e = job.kind == "tcor"
                key = SimulationCache.tcor_key(
                    job.alias, job.tile_cache_bytes,
                    TCORConfig.for_total_size(job.tile_cache_bytes), l2e)
                request = self._tcor_request(job.alias,
                                             job.tile_cache_bytes, l2e,
                                             None)
            if key in self._systems:
                continue
            response = self.client.submit(request)
            submitted.append((key, response["id"]))
        for key, job_id in submitted:
            self._systems[key] = self._collect(
                self.client.wait(job_id, timeout_s=self.timeout_s))
        return len(submitted)

    def export_metrics(self, registry) -> int:
        """Every fetched SystemResult, flattened into ``sim.*`` gauges
        under the same names the local providers use."""
        from repro.obs.registry import flatten

        exported = 0
        for key in sorted(self._systems, key=str):
            result = self._systems[key]
            prefix = SimulationCache.metric_prefix(key)
            for name, value in flatten(asdict(result), prefix).items():
                registry.gauge(name, value)
                exported += 1
        return exported

    # -- wire plumbing -------------------------------------------------
    def _baseline_request(self, alias: str,
                          tile_cache_bytes: int) -> JobRequest:
        return JobRequest(
            alias=alias, scale=self.scale,
            config=SimulationConfig(kind="baseline",
                                    tile_cache_bytes=tile_cache_bytes),
            timeout_s=self.timeout_s)

    def _tcor_request(self, alias: str, tile_cache_bytes: int,
                      l2_enhancements: bool,
                      tcor_config: TCORConfig | None) -> JobRequest:
        return JobRequest(
            alias=alias, scale=self.scale,
            config=SimulationConfig(kind="tcor",
                                    tile_cache_bytes=tile_cache_bytes,
                                    l2_enhancements=l2_enhancements,
                                    tcor=tcor_config),
            timeout_s=self.timeout_s)

    def _run(self, request: JobRequest) -> SystemResult:
        return self._collect(self.client.run(request,
                                             timeout_s=self.timeout_s))

    @staticmethod
    def _collect(result) -> SystemResult:
        if result.state != DONE or result.result is None:
            raise ServeClientError(
                "remote_failed",
                result.error or f"job finished in state {result.state}",
                502)
        return result.result


def connect(endpoints, *, scale: float = 1.0,
            aliases: tuple[str, ...] | None = None,
            timeout_s: float = DEFAULT_RESULT_TIMEOUT_S,
            connect_timeout_s: float | None = None) -> ServeHandle:
    """Connect to a ``tcor-serve`` worker, a list of workers, or the
    cluster router, as a :class:`SimulationProvider`.

    ``endpoints`` takes every form :class:`ServeClient` does — one
    ``"host:port"`` string, a ``(host, port)`` pair, or a list for
    client-side failover.  The returned handle is a drop-in for
    :func:`repro.api.simulation_cache`.
    """
    client = ServeClient(
        endpoints,
        timeout_s=(connect_timeout_s if connect_timeout_s is not None
                   else timeout_s))
    return ServeHandle(client, scale=scale, aliases=aliases,
                       timeout_s=timeout_s)
