"""The ``serve.*`` metrics namespace and the scheduler's trace hook.

Every scheduling decision lands in two places:

- a :class:`~repro.obs.registry.MetricsRegistry` under ``serve.*``
  (counters for submissions/coalesces/rejections/retries, gauges for
  queue depth and in-flight jobs, histograms for batch size and
  end-to-end latency) — exported on ``/metrics`` in the exact
  Prometheus text format the observability layer already speaks; and
- the structured event trace: :meth:`ServeMetrics.decision` emits a
  typed :class:`~repro.obs.events.ServeDecision` through the global
  ``repro.obs.trace`` hook, so a traced server run records *why* each
  job took the lane it took, interleaved with the simulator's own
  events.  As everywhere else, the disabled-tracer path is one
  ``None`` check.

All counters pre-register at zero so the very first ``/metrics``
scrape exposes the full surface — a scrape-shape change is a deploy
signal, not a traffic signal.
"""

from __future__ import annotations

from repro.obs import prometheus_text
from repro.obs.events import ServeDecision
from repro.obs.registry import MetricsRegistry
from repro.obs import trace as obs_trace

PREFIX = "serve"

COUNTERS = (
    "submitted",
    "accepted",
    "completed",
    "failed",
    "coalesced",
    "memo_hits",
    "disk_hits",
    "batches",
    "batch_jobs",
    "retries",
    "timeouts",
    "rejected.queue_full",
    "rejected.draining",
    "pool_recycles",
    "watchdog_cancels",
    "drained",
)

GAUGES = ("queue_depth", "inflight", "active")

BATCH_SIZE_BOUNDS = (1, 2, 4, 8, 16, 32)
LATENCY_BOUNDS_S = (0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0, 600.0)


class ServeMetrics:
    """One server's ``serve.*`` namespace plus the decision trace."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        for name in COUNTERS:
            self.registry.count(f"{PREFIX}.{name}", 0)
        for name in GAUGES:
            self.registry.gauge(f"{PREFIX}.{name}", 0)
        self._batch_sizes = self.registry.histogram(
            f"{PREFIX}.batch_size", BATCH_SIZE_BOUNDS)
        self._latency = self.registry.histogram(
            f"{PREFIX}.latency_s", LATENCY_BOUNDS_S)

    # -- recording -----------------------------------------------------
    def count(self, name: str, delta: float = 1) -> None:
        self.registry.count(f"{PREFIX}.{name}", delta)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(f"{PREFIX}.{name}", value)

    def observe_batch(self, jobs: int) -> None:
        self._batch_sizes.observe(jobs)

    def observe_latency(self, seconds: float) -> None:
        self._latency.observe(seconds)

    def decision(self, op: str, *, key: str | None = None,
                 lane: str | None = None, jobs: int = 0) -> None:
        """Emit one scheduling decision into the structured trace."""
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.emit(ServeDecision(op=op, key=key, lane=lane,
                                      jobs=jobs))

    # -- reading -------------------------------------------------------
    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def value(self, name: str) -> float:
        """One ``serve.*`` counter/gauge's current value (0 if never
        touched)."""
        return self.snapshot().get(f"{PREFIX}.{name}", 0)

    def prometheus(self) -> str:
        return prometheus_text(self.snapshot())
