"""The ``serve.*`` metrics namespaces and the scheduler trace hooks.

Every scheduling decision lands in two places:

- a :class:`~repro.obs.registry.MetricsRegistry` under ``serve.*``
  (counters for submissions/coalesces/rejections/retries, gauges for
  queue depth and in-flight jobs, histograms for batch size and
  end-to-end latency) — exported on ``/metrics`` in the exact
  Prometheus text format the observability layer already speaks; and
- the structured event trace: :meth:`ServeMetrics.decision` emits a
  typed :class:`~repro.obs.events.ServeDecision` through the global
  ``repro.obs.trace`` hook, so a traced server run records *why* each
  job took the lane it took, interleaved with the simulator's own
  events.  As everywhere else, the disabled-tracer path is one
  ``None`` check.

The cluster router speaks the sibling ``serve.cluster.*`` namespace
through :class:`ClusterMetrics`: tier hits per level, per-shard
forward counts (``serve.cluster.shard.<name>.forwarded``) with the
live max/min ``shard_balance`` gauge, failover counters
(``backend_down``/``backend_up``/``requeued``), and the version
negotiation's ``version_mismatch``.  Its decisions emit the typed
:class:`~repro.obs.events.ClusterDecision` carrying the shard name.

All counters pre-register at zero so the very first ``/metrics``
scrape exposes the full surface — a scrape-shape change is a deploy
signal, not a traffic signal.  (Per-shard counters register when the
membership file is read, which is the same deploy-time moment.)
"""

from __future__ import annotations

from repro.obs import prometheus_text
from repro.obs.events import ClusterDecision, ServeDecision
from repro.obs.registry import MetricsRegistry
from repro.obs import trace as obs_trace

PREFIX = "serve"

COUNTERS = (
    "submitted",
    "accepted",
    "completed",
    "failed",
    "coalesced",
    "memo_hits",
    "disk_hits",
    "batches",
    "batch_jobs",
    "sequence_frames",
    "retries",
    "timeouts",
    "rejected.queue_full",
    "rejected.draining",
    "pool_recycles",
    "watchdog_cancels",
    "drained",
)

GAUGES = ("queue_depth", "inflight", "active")

BATCH_SIZE_BOUNDS = (1, 2, 4, 8, 16, 32)
LATENCY_BOUNDS_S = (0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0, 600.0)


class ServeMetrics:
    """One server's ``serve.*`` namespace plus the decision trace."""

    prefix = PREFIX
    counters = COUNTERS
    gauges = GAUGES

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        for name in self.counters:
            self.registry.count(f"{self.prefix}.{name}", 0)
        for name in self.gauges:
            self.registry.gauge(f"{self.prefix}.{name}", 0)
        self._batch_sizes = self.registry.histogram(
            f"{self.prefix}.batch_size", BATCH_SIZE_BOUNDS)
        self._latency = self.registry.histogram(
            f"{self.prefix}.latency_s", LATENCY_BOUNDS_S)

    # -- recording -----------------------------------------------------
    def count(self, name: str, delta: float = 1) -> None:
        self.registry.count(f"{self.prefix}.{name}", delta)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(f"{self.prefix}.{name}", value)

    def observe_batch(self, jobs: int) -> None:
        self._batch_sizes.observe(jobs)

    def observe_latency(self, seconds: float) -> None:
        self._latency.observe(seconds)

    def decision(self, op: str, *, key: str | None = None,
                 lane: str | None = None, jobs: int = 0) -> None:
        """Emit one scheduling decision into the structured trace."""
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.emit(ServeDecision(op=op, key=key, lane=lane,
                                      jobs=jobs))

    # -- reading -------------------------------------------------------
    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def value(self, name: str) -> float:
        """One ``serve.*`` counter/gauge's current value (0 if never
        touched)."""
        return self.snapshot().get(f"{self.prefix}.{name}", 0)

    def prometheus(self) -> str:
        return prometheus_text(self.snapshot())


CLUSTER_PREFIX = "serve.cluster"

CLUSTER_COUNTERS = (
    "submitted",
    "accepted",
    "completed",
    "failed",
    "coalesced",
    "memo_hits",
    "tier.memory_hits",
    "tier.disk_hits",
    "tier.misses",
    "sequence_frames",
    "forwarded",
    "retries",
    "requeued",
    "rejected.queue_full",
    "rejected.draining",
    "backend_down",
    "backend_up",
    "version_mismatch",
    "drained",
)

CLUSTER_GAUGES = ("active", "inflight", "backends_up", "backends_total",
                  "shard_balance")


class ClusterMetrics(ServeMetrics):
    """The router's ``serve.cluster.*`` namespace.

    Shares the recording/reading machinery with :class:`ServeMetrics`;
    adds per-shard forward accounting and the live shard-balance gauge
    (max/min forwarded among shards that have served at least one
    job — 1.0 is perfect balance, 0 means fewer than two shards have
    traffic yet).
    """

    prefix = CLUSTER_PREFIX
    counters = CLUSTER_COUNTERS
    gauges = CLUSTER_GAUGES

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        super().__init__(registry)
        self._forwarded: dict[str, int] = {}

    def register_shard(self, shard: str) -> None:
        """Pre-register one shard's counter at zero (deploy-time
        scrape shape, same rule as the fixed counters)."""
        self._forwarded.setdefault(shard, 0)
        self.registry.count(f"{self.prefix}.shard.{shard}.forwarded", 0)

    def shard_forwarded(self, shard: str) -> None:
        """Count one job forwarded to ``shard``; refresh the balance
        gauge."""
        self._forwarded[shard] = self._forwarded.get(shard, 0) + 1
        self.count(f"shard.{shard}.forwarded")
        self.count("forwarded")
        loads = [load for load in self._forwarded.values() if load > 0]
        if len(loads) >= 2:
            self.gauge("shard_balance", max(loads) / min(loads))

    def shard_loads(self) -> dict[str, int]:
        return dict(self._forwarded)

    def decision(self, op: str, *, key: str | None = None,
                 lane: str | None = None, jobs: int = 0,
                 shard: str | None = None) -> None:
        """Emit one routing decision into the structured trace."""
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.emit(ClusterDecision(op=op, key=key, shard=shard,
                                        lane=lane, jobs=jobs))
