"""The asyncio front door: one port, two protocols.

:class:`SimulationServer` owns a :class:`~repro.serve.scheduler.
Scheduler` and listens with ``asyncio.start_server`` (stdlib only —
no web framework).  The protocol is sniffed from the first request
line:

- ``GET``/``POST``/``HEAD`` … → a thin HTTP/1.1 handler, enough for
  ``curl`` and a Prometheus scraper: ``POST /submit``,
  ``GET /status/<id>``, ``GET /result/<id>``, ``GET /healthz``,
  ``GET /metrics`` (text exposition format);
- anything else → the native newline-delimited-JSON loop: one JSON
  object per line in, one per line out, connection stays open.  Ops:
  ``submit`` (optionally ``wait``-ing for the result inline),
  ``status``, ``result``, ``wait``, ``healthz``, ``metrics``.

Every failure surfaces as a typed :class:`~repro.serve.schema.
ServeError` payload — over NDJSON as ``{"ok": false, "error": ...}``,
over HTTP as the error's mapped status code with the same JSON body.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve import schema
from repro.serve.scheduler import Scheduler
from repro.serve.schema import ServeError

MAX_LINE_BYTES = 1 << 20
MAX_BODY_BYTES = 1 << 20
_HTTP_METHODS = (b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ")


def _json_line(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True).encode() + b"\n"


class SimulationServer:
    """Bind a scheduler to a TCP port; speak NDJSON and HTTP/1.1."""

    def __init__(self, scheduler: Scheduler, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: asyncio.Server | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        await self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        # The requested port (possibly 0) is deliberately rebound to
        # the kernel-assigned one across the bind await; start() runs
        # once, before any other task can observe the server.
        self.port = self._server.sockets[0].getsockname()[1]  # lint: disable=SIM202

    async def serve_forever(self) -> None:
        assert self._server is not None
        await self._server.serve_forever()

    async def drain(self, timeout_s: float | None = None) -> int:
        """Graceful shutdown: stop accepting connections, finish the
        queue, then tear everything down.  The SIGTERM path."""
        if self._server is not None:
            self._server.close()
        live = await self.scheduler.drain(timeout_s)
        await self.close()
        return live

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.scheduler.close()

    # -- shared op layer (both protocols funnel here) ------------------
    async def _op_submit(self, payload: dict) -> dict:
        request = schema.request_from_payload(payload.get("request"))
        job, reused = self.scheduler.submit(request)
        if payload.get("wait"):
            timeout = payload.get("timeout_s")
            job = await self.scheduler.wait(
                job.key, float(timeout) if timeout is not None else None)
            return {"id": job.key, "reused": reused,
                    "result": self.scheduler.result_payload(job)}
        return {"id": job.key, "reused": reused,
                "status": schema.status_to_payload(job.status())}

    def _op_status(self, job_id: str) -> dict:
        job = self.scheduler.status(job_id)
        return {"status": schema.status_to_payload(job.status())}

    def _op_result(self, job_id: str) -> dict:
        job = self.scheduler.status(job_id)
        if job.state not in schema.TERMINAL_STATES:
            return {"status": schema.status_to_payload(job.status())}
        return {"result": self.scheduler.result_payload(job)}

    async def _op_wait(self, payload: dict) -> dict:
        timeout = payload.get("timeout_s")
        job = await self.scheduler.wait(
            str(payload.get("id", "")),
            float(timeout) if timeout is not None else None)
        return {"result": self.scheduler.result_payload(job)}

    def _op_healthz(self) -> dict:
        body = self.scheduler.counts()
        body["draining"] = self.scheduler.draining
        body["schema_version"] = schema.SCHEMA_VERSION
        body["ok"] = True
        return body

    async def _dispatch_op(self, payload: dict) -> dict:
        # Wire-schema negotiation: a versionless request is treated as
        # current (old clients keep working); a versioned one must be
        # within the compatibility span or gets the typed 426.
        theirs = payload.get("v")
        if theirs is not None:
            try:
                compatible = schema.versions_compatible(theirs)
            except (TypeError, ValueError):
                raise ServeError.bad_request(
                    f"version field must be an integer, got "
                    f"{theirs!r}") from None
            if not compatible:
                raise ServeError.version_mismatch(theirs)
        op = payload.get("op")
        if op == "submit":
            return await self._op_submit(payload)
        if op == "status":
            return self._op_status(str(payload.get("id", "")))
        if op == "result":
            return self._op_result(str(payload.get("id", "")))
        if op == "wait":
            return await self._op_wait(payload)
        if op == "healthz":
            return self._op_healthz()
        if op == "metrics":
            return {"metrics": self.scheduler.metrics.snapshot()}
        raise ServeError.bad_request(f"unknown op {op!r}")

    # -- connection handling -------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            first = await reader.readline()
            if not first:
                return
            if first.startswith(_HTTP_METHODS):
                await self._handle_http(first, reader, writer)
            else:
                await self._handle_ndjson(first, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        except asyncio.CancelledError:
            # Loop teardown cancelled this handler; end the task
            # cleanly or asyncio's streams machinery logs the
            # cancellation as a spurious "exception in callback".
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # already torn down under us

    async def _handle_ndjson(self, first: bytes,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        line = first
        while line:
            if len(line) > MAX_LINE_BYTES:
                response = {"ok": False,
                            "error": ServeError.bad_request(
                                "request line too long").to_payload()}
            else:
                response = await self._answer_line(line)
            writer.write(_json_line(response))
            await writer.drain()
            line = await reader.readline()

    async def _answer_line(self, line: bytes) -> dict:
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ServeError.bad_request(
                    "each line must be a JSON object")
            body = await self._dispatch_op(payload)
        except ServeError as exc:
            return {"ok": False, "error": exc.to_payload()}
        except json.JSONDecodeError as exc:
            return {"ok": False,
                    "error": ServeError.bad_request(
                        f"invalid JSON: {exc}").to_payload()}
        response = {"ok": True}
        response.update(body)
        return response

    async def _handle_http(self, first: bytes,
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            method, target = first.decode("latin-1").split()[:2]
        except ValueError:
            self._http_reply(writer, 400, {"error": ServeError.bad_request(
                "malformed request line").to_payload()})
            await writer.drain()
            return
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        if content_length > MAX_BODY_BYTES:
            self._http_reply(writer, 413, {"error": ServeError(
                "too_large", "request body too large", 413).to_payload()})
            await writer.drain()
            return
        body = (await reader.readexactly(content_length)
                if content_length else b"")
        status, payload = await self._route_http(method, target, body)
        self._http_reply(writer, status, payload,
                         head_only=method == "HEAD")
        await writer.drain()

    async def _route_http(self, method: str, target: str,
                          body: bytes) -> tuple[int, dict | str]:
        try:
            if target == "/metrics" and method in ("GET", "HEAD"):
                return 200, self.scheduler.metrics.prometheus()
            if target == "/healthz" and method in ("GET", "HEAD"):
                health = self._op_healthz()
                return (200 if not health["draining"] else 503), health
            if target == "/submit" and method == "POST":
                try:
                    payload = json.loads(body) if body else {}
                except json.JSONDecodeError as exc:
                    raise ServeError.bad_request(
                        f"invalid JSON body: {exc}") from exc
                if not isinstance(payload, dict):
                    raise ServeError.bad_request(
                        "body must be a JSON object")
                # Accept both the op envelope and a bare request body.
                if "request" not in payload:
                    payload = {"request": payload}
                return 200, await self._op_submit(payload)
            if target.startswith("/status/") and method in ("GET", "HEAD"):
                return 200, self._op_status(target[len("/status/"):])
            if target.startswith("/result/") and method in ("GET", "HEAD"):
                return 200, self._op_result(target[len("/result/"):])
        except ServeError as exc:
            return exc.http_status, {"error": exc.to_payload()}
        return 404, {"error": ServeError(
            "not_found", f"no route {method} {target}", 404).to_payload()}

    def _http_reply(self, writer: asyncio.StreamWriter, status: int,
                    payload: dict | str, *, head_only: bool = False) -> None:
        if isinstance(payload, str):
            body = payload.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload, sort_keys=True).encode()
            content_type = "application/json"
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  413: "Payload Too Large", 426: "Upgrade Required",
                  429: "Too Many Requests", 503: "Service Unavailable",
                  504: "Gateway Timeout"}.get(status, "Error")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode()
        writer.write(head if head_only else head + body)
