"""``repro.serve`` — async simulation-as-a-service over the simulator.

The serving layer turns the one-shot library (``repro.api``) and batch
experiment engine (``repro.parallel``) into a long-lived service (see
DESIGN.md, "The serving layer"):

- :mod:`~repro.serve.schema` — the typed JSON wire schema
  (:class:`JobRequest` / :class:`JobStatus` / :class:`JobResult` /
  :class:`ServeError`) and the deterministic request key that powers
  coalescing and the disk-warm lane;
- :mod:`~repro.serve.scheduler` — admission control, micro-batching,
  in-flight coalescing, priority lanes, cache-aware ordering, retry /
  timeout / watchdog robustness over one process pool;
- :mod:`~repro.serve.server` — the stdlib ``asyncio`` front door
  speaking newline-delimited JSON and a thin HTTP/1.1 subset
  (``/submit``, ``/status/<id>``, ``/result/<id>``, ``/healthz``,
  ``/metrics``) on one port;
- :mod:`~repro.serve.client` — the blocking NDJSON client;
- :mod:`~repro.serve.inprocess` — a real server on a background
  thread, for tests and notebooks;
- :mod:`~repro.serve.cli` — the ``tcor-serve`` console entry point
  with graceful SIGTERM/SIGINT drain.

The serving contract: a served simulation is *byte-identical* to a
direct :func:`repro.api.simulate` call with the same config — the
worker runs the exact same facade, and the equivalence suite holds the
service to it.
"""

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.inprocess import InProcessServer
from repro.serve.metrics import ServeMetrics
from repro.serve.scheduler import Scheduler
from repro.serve.schema import (
    JobRequest,
    JobResult,
    JobStatus,
    ServeError,
    request_key,
)
from repro.serve.server import SimulationServer

__all__ = [
    "InProcessServer",
    "JobRequest",
    "JobResult",
    "JobStatus",
    "Scheduler",
    "ServeClient",
    "ServeClientError",
    "ServeError",
    "ServeMetrics",
    "SimulationServer",
    "request_key",
]
