"""``repro.serve`` — async simulation-as-a-service over the simulator.

The serving layer turns the one-shot library (``repro.api``) and batch
experiment engine (``repro.parallel``) into a long-lived service (see
DESIGN.md, "The serving layer" and "The sharded cluster"):

- :mod:`~repro.serve.schema` — the typed JSON wire schema
  (:class:`JobRequest` / :class:`JobStatus` / :class:`JobResult` /
  :class:`ServeError`), its version negotiation, and the deterministic
  request key that powers coalescing, the disk-warm lane and the
  cluster's key-affinity sharding;
- :mod:`~repro.serve.scheduler` — admission control, micro-batching,
  in-flight coalescing, priority lanes, cache-aware ordering, retry /
  timeout / watchdog robustness over one process pool;
- :mod:`~repro.serve.server` — the stdlib ``asyncio`` front door
  speaking newline-delimited JSON and a thin HTTP/1.1 subset
  (``/submit``, ``/status/<id>``, ``/result/<id>``, ``/healthz``,
  ``/metrics``) on one port;
- :mod:`~repro.serve.ring` / :mod:`~repro.serve.tiers` /
  :mod:`~repro.serve.cluster` — the sharded cluster: a consistent-hash
  :class:`HashRing`, the memory-over-disk :class:`TieredResultCache`,
  and the :class:`Router` that forwards to health-checked backend
  workers behind the same front door;
- :mod:`~repro.serve.client` — the blocking NDJSON client (one
  address, a list, or the router — with typed errors and failover);
- :mod:`~repro.serve.handle` — :func:`connect` /
  :class:`ServeHandle`: the service as a drop-in
  :class:`~repro.experiments.common.SimulationProvider`;
- :mod:`~repro.serve.inprocess` — a real server on a background
  thread, for tests and notebooks;
- :mod:`~repro.serve.cli` — the ``tcor-serve`` console entry point
  (worker mode, or ``--router`` for the cluster front end) with
  graceful SIGTERM/SIGINT drain.

The serving contract: a served simulation is *byte-identical* to a
direct :func:`repro.api.simulate` call with the same config — the
worker runs the exact same facade, and the equivalence suite holds the
service (and the cluster) to it.
"""

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.cluster import Backend, Router, parse_backends
from repro.serve.handle import ServeHandle, connect
from repro.serve.inprocess import InProcessServer
from repro.serve.metrics import ClusterMetrics, ServeMetrics
from repro.serve.ring import HashRing
from repro.serve.scheduler import Scheduler
from repro.serve.schema import (
    SCHEMA_VERSION,
    JobRequest,
    JobResult,
    JobStatus,
    ServeError,
    request_key,
    versions_compatible,
)
from repro.serve.server import SimulationServer
from repro.serve.tiers import MemoryTier, TieredResultCache

__all__ = [
    "Backend",
    "ClusterMetrics",
    "HashRing",
    "InProcessServer",
    "JobRequest",
    "JobResult",
    "JobStatus",
    "MemoryTier",
    "Router",
    "SCHEMA_VERSION",
    "Scheduler",
    "ServeClient",
    "ServeClientError",
    "ServeError",
    "ServeHandle",
    "ServeMetrics",
    "SimulationServer",
    "TieredResultCache",
    "connect",
    "parse_backends",
    "request_key",
    "versions_compatible",
]
