"""``tcor-serve`` — run the simulation service from the command line.

Wires the full stack together: a :class:`~repro.serve.scheduler.
Scheduler` over a process pool (optionally backed by the PR 2 disk
cache), a :class:`~repro.serve.server.SimulationServer` on a TCP
port, signal-driven graceful shutdown (SIGTERM/SIGINT start a drain:
in-flight and queued jobs finish, new submissions get 503, then the
process exits 0), and optional structured tracing via ``repro.obs``.

``--port-file`` writes the bound port (useful with ``--port 0``) so
wrappers and tests can discover the ephemeral port race-free.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from pathlib import Path

import contextlib

from repro.obs import JsonlSink, Tracer, activation
from repro.parallel.store import DiskCache
from repro.serve.scheduler import (
    DEFAULT_BATCH_MAX,
    DEFAULT_BATCH_WINDOW_S,
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_TIMEOUT_S,
    Scheduler,
)
from repro.serve.server import SimulationServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tcor-serve",
        description="Async simulation service over the TCOR simulator")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8763,
                        help="TCP port (0 picks an ephemeral port)")
    parser.add_argument("--port-file", type=Path, default=None,
                        help="write the bound port to this file once "
                             "listening")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes in the simulation pool")
    parser.add_argument("--queue-limit", type=int,
                        default=DEFAULT_QUEUE_LIMIT,
                        help="admission limit on live jobs (429 beyond)")
    parser.add_argument("--batch-window", type=float,
                        default=DEFAULT_BATCH_WINDOW_S, metavar="S",
                        help="micro-batching window in seconds")
    parser.add_argument("--batch-max", type=int, default=DEFAULT_BATCH_MAX,
                        help="max jobs per micro-batch")
    parser.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT_S,
                        metavar="S", help="default per-job timeout")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="PR 2 disk-cache directory for the warm "
                             "lane (shared with tcor-experiments)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="disable the disk-warm lane entirely")
    parser.add_argument("--trace", type=Path, default=None, metavar="PATH",
                        help="write scheduling decisions as a JSONL "
                             "event trace")
    parser.add_argument("--drain-timeout", type=float, default=60.0,
                        metavar="S",
                        help="max seconds to wait for live jobs on "
                             "SIGTERM/SIGINT")
    return parser


def _open_disk(cache_dir: Path | None) -> DiskCache:
    """Construct the disk cache (hashes simulator sources: blocking)."""
    return DiskCache(cache_dir) if cache_dir is not None else DiskCache()


async def _amain(args: argparse.Namespace) -> int:
    loop = asyncio.get_running_loop()
    disk = None
    if not args.no_disk_cache:
        # DiskCache() hashes every simulator source file for its code
        # signature — file I/O that belongs on a worker thread, not on
        # the event loop (SIM201).
        disk = await loop.run_in_executor(None, _open_disk,
                                          args.cache_dir)
    scheduler = Scheduler(jobs=args.jobs, queue_limit=args.queue_limit,
                          batch_window_s=args.batch_window,
                          batch_max=args.batch_max, disk=disk,
                          default_timeout_s=args.timeout)
    server = SimulationServer(scheduler, host=args.host, port=args.port)
    await server.start()
    if args.port_file is not None:
        await loop.run_in_executor(None, args.port_file.write_text,
                                   f"{server.port}\n")
    print(f"tcor-serve listening on {server.host}:{server.port} "
          f"(pool={args.jobs}, queue_limit={args.queue_limit}, "
          f"disk={'on' if disk is not None else 'off'})")
    sys.stdout.flush()

    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    serve_task = asyncio.create_task(server.serve_forever())
    await stop.wait()
    print("tcor-serve: draining (finishing live jobs, rejecting new "
          "submissions)")
    sys.stdout.flush()
    live = await server.drain(args.drain_timeout)
    serve_task.cancel()
    await asyncio.gather(serve_task, return_exceptions=True)
    print(f"tcor-serve: drained {live} live job(s); bye")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    tracer = None
    if args.trace is not None:
        tracer = Tracer(sinks=[JsonlSink(str(args.trace))])
    scope = activation(tracer) if tracer is not None \
        else contextlib.nullcontext()
    try:
        with scope:
            return asyncio.run(_amain(args))
    finally:
        if tracer is not None:
            tracer.close()


if __name__ == "__main__":
    raise SystemExit(main())
