"""``tcor-serve`` — run the simulation service from the command line.

Two modes share one front door:

- **worker** (default) — a :class:`~repro.serve.scheduler.Scheduler`
  over a process pool (optionally backed by the PR 2 disk cache)
  behind a :class:`~repro.serve.server.SimulationServer`;
- **router** (``--router backends.json``, or the ``tcor-serve-router``
  entry point) — the cluster front end: a
  :class:`~repro.serve.cluster.Router` consistent-hashing request
  keys across the listed backend workers, with the in-memory result
  tier in front of the shared disk store.

Both get signal-driven graceful shutdown (SIGTERM/SIGINT start a
drain: in-flight and queued jobs finish, new submissions get 503, then
the process exits 0) and optional structured tracing via ``repro.obs``.

``--port-file`` writes the bound port (useful with ``--port 0``) so
wrappers and tests can discover the ephemeral port race-free.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from pathlib import Path

import contextlib

from repro.obs import JsonlSink, Tracer, activation
from repro.parallel.store import DiskCache
from repro.serve.scheduler import (
    DEFAULT_BATCH_MAX,
    DEFAULT_BATCH_WINDOW_S,
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_TIMEOUT_S,
    Scheduler,
)
from repro.serve.server import SimulationServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tcor-serve",
        description="Async simulation service over the TCOR simulator")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8763,
                        help="TCP port (0 picks an ephemeral port)")
    parser.add_argument("--port-file", type=Path, default=None,
                        help="write the bound port to this file once "
                             "listening")
    parser.add_argument("--name", default=None,
                        help="this process's name, stamped into every "
                             "result as served_by (cluster provenance)")
    parser.add_argument("--router", type=Path, default=None,
                        metavar="BACKENDS_JSON",
                        help="run as the cluster router over the "
                             "backends listed in this JSON file "
                             "instead of running a worker pool")
    parser.add_argument("--memory-tier-bytes", type=int, default=None,
                        metavar="N",
                        help="router-mode in-memory result tier budget "
                             "(default 64 MiB; 0 disables the tier)")
    parser.add_argument("--probe-interval", type=float, default=None,
                        metavar="S",
                        help="router-mode healthz probe period "
                             "(default 1.0)")
    parser.add_argument("--fail-threshold", type=int, default=None,
                        metavar="N",
                        help="router-mode consecutive failures before "
                             "a backend is taken off the ring "
                             "(default 2)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes in the simulation pool")
    parser.add_argument("--queue-limit", type=int,
                        default=DEFAULT_QUEUE_LIMIT,
                        help="admission limit on live jobs (429 beyond)")
    parser.add_argument("--batch-window", type=float,
                        default=DEFAULT_BATCH_WINDOW_S, metavar="S",
                        help="micro-batching window in seconds")
    parser.add_argument("--batch-max", type=int, default=DEFAULT_BATCH_MAX,
                        help="max jobs per micro-batch")
    parser.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT_S,
                        metavar="S", help="default per-job timeout")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="PR 2 disk-cache directory for the warm "
                             "lane (shared with tcor-experiments)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="disable the disk-warm lane entirely")
    parser.add_argument("--trace", type=Path, default=None, metavar="PATH",
                        help="write scheduling decisions as a JSONL "
                             "event trace")
    parser.add_argument("--drain-timeout", type=float, default=60.0,
                        metavar="S",
                        help="max seconds to wait for live jobs on "
                             "SIGTERM/SIGINT")
    return parser


def _open_disk(cache_dir: Path | None) -> DiskCache:
    """Construct the disk cache (hashes simulator sources: blocking)."""
    return DiskCache(cache_dir) if cache_dir is not None else DiskCache()


def _build_router(args: argparse.Namespace, disk):
    from repro.serve.cluster import Router, parse_backends
    from repro.serve.tiers import (
        DEFAULT_MEMORY_TIER_BYTES,
        MemoryTier,
        TieredResultCache,
    )

    spec = json.loads(args.router.read_text())
    budget = (args.memory_tier_bytes
              if args.memory_tier_bytes is not None
              else DEFAULT_MEMORY_TIER_BYTES)
    memory = MemoryTier(budget) if budget > 0 else None
    tier = TieredResultCache(memory=memory, disk=disk)
    overrides = {}
    if args.probe_interval is not None:
        overrides["probe_interval_s"] = args.probe_interval
    if args.fail_threshold is not None:
        overrides["fail_threshold"] = args.fail_threshold
    return Router(parse_backends(spec), tier=tier,
                  queue_limit=args.queue_limit,
                  forward_timeout_s=args.timeout, **overrides)


async def _amain(args: argparse.Namespace) -> int:
    loop = asyncio.get_running_loop()
    disk = None
    if not args.no_disk_cache:
        # DiskCache() hashes every simulator source file for its code
        # signature — file I/O that belongs on a worker thread, not on
        # the event loop (SIM201).
        disk = await loop.run_in_executor(None, _open_disk,
                                          args.cache_dir)
    if args.router is not None:
        # _build_router reads the backends file — file I/O that
        # belongs on a worker thread too (SIM201).
        scheduler = await loop.run_in_executor(None, _build_router,
                                               args, disk)
        role = (f"router over {len(scheduler.ring)} backend(s), "
                f"memory_tier="
                f"{'on' if scheduler.tier.memory is not None else 'off'}")
    else:
        scheduler = Scheduler(jobs=args.jobs,
                              queue_limit=args.queue_limit,
                              batch_window_s=args.batch_window,
                              batch_max=args.batch_max, disk=disk,
                              default_timeout_s=args.timeout,
                              name=args.name)
        role = f"pool={args.jobs}"
    server = SimulationServer(scheduler, host=args.host, port=args.port)
    await server.start()
    if args.port_file is not None:
        await loop.run_in_executor(None, args.port_file.write_text,
                                   f"{server.port}\n")
    print(f"tcor-serve listening on {server.host}:{server.port} "
          f"({role}, queue_limit={args.queue_limit}, "
          f"disk={'on' if disk is not None else 'off'})")
    sys.stdout.flush()

    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    serve_task = asyncio.create_task(server.serve_forever())
    await stop.wait()
    print("tcor-serve: draining (finishing live jobs, rejecting new "
          "submissions)")
    sys.stdout.flush()
    live = await server.drain(args.drain_timeout)
    serve_task.cancel()
    await asyncio.gather(serve_task, return_exceptions=True)
    print(f"tcor-serve: drained {live} live job(s); bye")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    tracer = None
    if args.trace is not None:
        tracer = Tracer(sinks=[JsonlSink(str(args.trace))])
    scope = activation(tracer) if tracer is not None \
        else contextlib.nullcontext()
    try:
        with scope:
            return asyncio.run(_amain(args))
    finally:
        if tracer is not None:
            tracer.close()


def router_main(argv: list[str] | None = None) -> int:
    """``tcor-serve-router`` — router mode with the backends file as a
    positional argument (``tcor-serve-router backends.json``)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and not argv[0].startswith("-"):
        argv = ["--router", argv[0], *argv[1:]]
    return main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
