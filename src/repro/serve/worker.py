"""Pool-side worker for the simulation service.

One call simulates one micro-batch: every entry shares a (benchmark
alias, scale) pair, so the workload is built exactly once and each
request's :class:`~repro.api.SimulationConfig` runs against it through
the public :func:`repro.api.simulate` facade — which is what makes a
served result byte-identical to a direct library call.  Because the
facade defaults to the compiled-trace replay engine and memoizes the
compiled trace on the workload, the whole micro-batch shares one trace
compile: the first eligible entry lowers the workload, the rest replay
(ineligible configs fall back to the live simulator per entry).

Mirrors :func:`repro.parallel.engine.simulate_job_batch`'s fork
hygiene: the batch runs under a scoped ``activation(None)`` so a
tracer inherited from the parent at fork time (whose sinks hold
duplicated file handles) never receives worker events, and the module
state is restored on the way out.

Per-entry simulation failures are *data*, not exceptions: a raising
config (e.g. an illegal cache geometry reached only at build time)
yields an ``error`` record for that entry while the rest of the batch
completes.  Deterministic failures are never worth retrying, and the
scheduler treats them accordingly.
"""

from __future__ import annotations

from repro.api import simulate
from repro.obs import trace as obs_trace
from repro.parallel.store import result_to_dict
from repro.serve import schema
from repro.workloads.suite import BENCHMARKS, build_workload


def simulate_request_batch(alias: str, scale: float,
                           entries: tuple[tuple[str, dict], ...],
                           anim_payload: dict | None = None
                           ) -> list[dict]:
    """Worker entry point: one workload build, then every config.

    ``entries`` are ``(request_key, config_payload)`` pairs; the
    return value is one JSON-able record per entry — either
    ``{"key", "result", "metrics", "invariant_failures"}`` or
    ``{"key", "error"}``.  ``anim_payload`` (an ``AnimationSpec``
    payload, shared by the whole batch) switches the build to the
    coherent multi-frame animated workload.  Must stay a module-level
    function: it is pickled by name into the process pool.
    """
    with obs_trace.activation(None):
        if anim_payload is not None:
            from repro.anim import anim_from_payload, build_animated_workload

            workload = build_animated_workload(
                BENCHMARKS[alias], anim_from_payload(anim_payload),
                scale=scale)
        else:
            workload = build_workload(BENCHMARKS[alias], scale=scale)
        records: list[dict] = []
        for key, config_payload in entries:
            try:
                config = schema.config_from_payload(config_payload)
                run = simulate(workload, config)
            except Exception as exc:
                records.append(
                    {"key": key,
                     "error": f"{type(exc).__name__}: {exc}"})
                continue
            records.append({
                "key": key,
                "result": result_to_dict(run.result),
                "metrics": dict(run.metrics),
                "invariant_failures": list(run.invariant_failures),
            })
        return records
