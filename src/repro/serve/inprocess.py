"""In-process server harness: a real server on a background thread.

Spins up a full :class:`~repro.serve.server.SimulationServer` — real
event loop, real TCP port, real scheduler — inside the current
process, so tests and notebooks exercise the exact production code
path without managing a subprocess.  The event loop runs on a daemon
thread; the constructor blocks until the port is bound, and
:meth:`close` drains gracefully and joins the thread.

Usage::

    with InProcessServer(jobs=2) as server:
        with server.client() as client:
            result = client.run(JobRequest(alias="GTr", scale=0.05))
"""

from __future__ import annotations

import asyncio
import threading

from repro.serve.client import ServeClient
from repro.serve.scheduler import Scheduler
from repro.serve.server import SimulationServer


class InProcessServer:
    """A live server on a daemon thread, for tests and notebooks."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 start_timeout_s: float = 30.0, scheduler=None,
                 **scheduler_kwargs) -> None:
        # ``scheduler`` hosts any object speaking the scheduler surface
        # — notably a cluster Router — behind the same front door; by
        # default a fresh single-node Scheduler is built.
        self.scheduler = scheduler if scheduler is not None \
            else Scheduler(**scheduler_kwargs)
        self.server = SimulationServer(self.scheduler, host=host,
                                       port=port)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="tcor-serve-inprocess", daemon=True)
        self._thread.start()
        if not self._started.wait(start_timeout_s):
            raise RuntimeError("in-process server failed to start "
                               f"within {start_timeout_s:g}s")
        if self._startup_error is not None:
            raise RuntimeError("in-process server failed to start") \
                from self._startup_error

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            await self.server.serve_forever()
        except asyncio.CancelledError:
            pass  # closing the listener cancels serve_forever
        # Teardown belongs to the drain() coroutine submitted from the
        # caller's thread; returning now would tear the loop down while
        # that coroutine is still completing in-flight jobs.  Wait for
        # its explicit all-clear instead.
        await self._shutdown.wait()

    def submit(self, coroutine):
        """Run one coroutine on the server loop; returns a
        ``concurrent.futures.Future``."""
        assert self._loop is not None
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop)

    def client(self, timeout_s: float | None = 120.0) -> ServeClient:
        return ServeClient(self.host, self.port, timeout_s=timeout_s)

    def drain(self, timeout_s: float | None = 30.0) -> None:
        """Graceful stop: finish live jobs, then tear down the loop."""
        if not self._thread.is_alive() or self._loop is None:
            return
        future = self.submit(self.server.drain(timeout_s))
        future.result(timeout=(timeout_s or 0) + 30.0)
        # The drain future resolved on the caller's side, so it is now
        # safe to let the loop's main task return and close the loop.
        shutdown = self._shutdown
        assert shutdown is not None
        self._loop.call_soon_threadsafe(shutdown.set)
        self._thread.join(timeout=30.0)

    def close(self) -> None:
        self.drain(timeout_s=10.0)

    def __enter__(self) -> "InProcessServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
