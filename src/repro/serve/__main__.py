"""``python -m repro.serve`` — alias for the ``tcor-serve`` CLI."""

from repro.serve.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
