"""Typed request/response schema of the simulation service.

Everything that crosses the wire is a plain JSON object with a typed
dataclass view on each side:

- :class:`JobRequest` — one simulation to run: a benchmark alias, a
  geometry scale and a frozen :class:`~repro.api.SimulationConfig`,
  plus scheduling hints (priority lane, timeout);
- :class:`JobStatus` — the scheduler's view of a submitted job;
- :class:`JobResult` — a finished job: the ``SystemResult`` record,
  its metrics snapshot and invariant check, and how it was served
  (``pool``, ``disk`` or ``memo`` lane);
- :class:`ServeError` — a typed failure carrying a machine-readable
  code and the HTTP status it maps to (``queue_full`` → 429, ...).

Request identity is a deterministic key: :func:`request_key` hashes
the canonical JSON of (alias, scale, config) exactly the way the PR 2
:class:`~repro.parallel.store.DiskCache` derives record keys —
version + code signature + sorted payload through SHA-256 — so two
submissions of the same simulation coalesce onto one in-flight future
no matter which client sent them, while scheduling hints (priority,
timeout) never split identical work.  :func:`probe_disk` /
:func:`store_disk` map standard-knob requests onto the *same* disk
records the experiment runner reads and writes, which is what makes
the scheduler's disk-warm fast lane see caches warmed by
``tcor-experiments`` runs (and vice versa).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields
from typing import Mapping

from repro.anim.spec import AnimationSpec, anim_from_payload, anim_to_payload
from repro.api import SimulationConfig
from repro.config import (
    CacheConfig,
    DEFAULT_GPU,
    DEFAULT_TCOR,
    GPUConfig,
    MemoryConfig,
    ParameterBufferConfig,
    ScreenConfig,
    TCORConfig,
    TilingEngineConfig,
)
from repro.parallel.store import result_from_dict, result_to_dict
from repro.tcor.system import SystemResult
from repro.workloads.suite import BENCHMARKS

SCHEMA_VERSION = 2

# How far apart two speakers' schema versions may be and still talk.
# Adjacent versions interoperate (fields only ever *grow*, and both
# payload parsers drop unknown keys); anything further apart fails
# fast with a typed ``version_mismatch`` instead of corrupting state.
VERSION_COMPAT_SPAN = 1


def versions_compatible(theirs: int, ours: int = SCHEMA_VERSION) -> bool:
    """Whether two wire-schema versions may interoperate."""
    return abs(int(theirs) - int(ours)) <= VERSION_COMPAT_SPAN


# Every JSON field each schema version declares, envelope and payloads
# alike — the machine-readable contract behind ``versions_compatible``.
# A handler (server.py / client.py / cluster.py) may only read or write
# fields some version within the compat span declares; the SIM303
# contract rule enforces that statically, so adding a field means
# declaring it here (under a new version when it ships separately).
WIRE_FIELDS = {
    1: (
        # Request envelope and server reply envelope.
        "op", "v", "id", "request", "wait", "timeout_s",
        "ok", "error", "reused", "status", "result", "metrics",
        # ServeError payloads.
        "code", "message", "http_status",
        # /healthz body (scheduler.counts() plus the server stamps).
        "draining", "schema_version", "active", "pending", "inflight",
        "states",
        # JobRequest / SimulationConfig payloads.
        "alias", "scale", "config", "priority",
        "kind", "tile_cache_bytes", "l2_enhancements",
        "interleaved_lists", "include_background", "tcor", "gpu",
        # JobStatus / JobResult payloads.
        "state", "lane", "attempts", "coalesced", "queued_for_s",
        "running_for_s", "elapsed_s", "invariant_failures",
    ),
    2: (
        # Cluster provenance (router-stamped) and the membership file.
        "shard", "served_by",
        "backends", "name", "address", "host", "port",
    ),
    3: (
        # Animated sequences + Rendering Elimination (declared under a
        # fresh version, still within the compat span of 2): the config
        # flag, the JobRequest animation recipe and its AnimationSpec
        # payload fields, and the sequence-affinity hint.
        "rendering_elimination", "anim", "sequence",
        "frames", "path", "amplitude", "dwell", "travel", "churn",
        "jitter", "seed",
    ),
}


def wire_fields(ours: int = SCHEMA_VERSION) -> frozenset:
    """Fields readable/writable while speaking version ``ours``: the
    union over every declared version within the compat span."""
    return frozenset(
        name for version, names in WIRE_FIELDS.items()
        if versions_compatible(version, ours) for name in names)

# Priority lanes, highest first: the batcher always prefers the head
# of the "interactive" lane when choosing the next micro-batch.
PRIORITIES = ("interactive", "batch")
DEFAULT_PRIORITY = "batch"

# Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TIMEOUT = "timeout"
CANCELLED = "cancelled"
TERMINAL_STATES = (DONE, FAILED, TIMEOUT, CANCELLED)


class ServeError(Exception):
    """Typed service failure (JSON-serializable, HTTP-mappable)."""

    def __init__(self, code: str, message: str,
                 http_status: int = 400) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.http_status = http_status

    def to_payload(self) -> dict:
        return {"code": self.code, "message": self.message,
                "http_status": self.http_status}

    @classmethod
    def from_payload(cls, payload: dict) -> "ServeError":
        return cls(str(payload.get("code", "internal")),
                   str(payload.get("message", "unknown error")),
                   int(payload.get("http_status", 500)))

    # -- the service's failure vocabulary ------------------------------
    @classmethod
    def bad_request(cls, message: str) -> "ServeError":
        return cls("bad_request", message, 400)

    @classmethod
    def not_found(cls, job_id: str) -> "ServeError":
        return cls("not_found", f"unknown job id {job_id!r}", 404)

    @classmethod
    def queue_full(cls, limit: int) -> "ServeError":
        return cls("queue_full",
                   f"admission queue is full ({limit} jobs); retry later",
                   429)

    @classmethod
    def draining(cls) -> "ServeError":
        return cls("draining",
                   "server is draining and accepts no new jobs", 503)

    @classmethod
    def wait_timeout(cls, job_id: str, timeout_s: float) -> "ServeError":
        return cls("timeout",
                   f"job {job_id!r} not finished within {timeout_s:g}s",
                   504)

    @classmethod
    def version_mismatch(cls, theirs, ours: int = None) -> "ServeError":
        ours = SCHEMA_VERSION if ours is None else ours
        return cls("version_mismatch",
                   f"wire schema version {theirs!r} is not within "
                   f"{VERSION_COMPAT_SPAN} of this speaker's "
                   f"{ours}; upgrade one side",
                   426)

    @classmethod
    def no_backends(cls) -> "ServeError":
        return cls("no_backends",
                   "no healthy backend shard is available", 503)


# -- SimulationConfig (de)serialization --------------------------------

def _filtered_kwargs(cls, data: dict) -> dict:
    names = {f.name for f in fields(cls)}
    return {key: value for key, value in data.items() if key in names}


def _cache_config_from(data: dict) -> CacheConfig:
    return CacheConfig(**_filtered_kwargs(CacheConfig, data))


def tcor_config_from_payload(data: dict) -> TCORConfig:
    kwargs = _filtered_kwargs(TCORConfig, data)
    plc = kwargs.get("primitive_list_cache")
    if isinstance(plc, dict):
        kwargs["primitive_list_cache"] = _cache_config_from(plc)
    return TCORConfig(**kwargs)


_GPU_NESTED = {
    "screen": ScreenConfig,
    "memory": MemoryConfig,
    "pbuffer": ParameterBufferConfig,
    "tiling": TilingEngineConfig,
    "vertex_cache": CacheConfig,
    "texture_cache": CacheConfig,
    "tile_cache": CacheConfig,
    "l2_cache": CacheConfig,
}


def gpu_config_from_payload(data: dict) -> GPUConfig:
    kwargs = _filtered_kwargs(GPUConfig, data)
    for name, cls in _GPU_NESTED.items():
        nested = kwargs.get(name)
        if isinstance(nested, dict):
            kwargs[name] = cls(**_filtered_kwargs(cls, nested))
    return GPUConfig(**kwargs)


def config_to_payload(config: SimulationConfig) -> dict:
    """Canonical JSON-able form of one :class:`SimulationConfig`."""
    return {
        "kind": config.kind,
        "tile_cache_bytes": config.tile_cache_bytes,
        "l2_enhancements": config.l2_enhancements,
        "interleaved_lists": config.interleaved_lists,
        "include_background": config.include_background,
        "rendering_elimination": config.rendering_elimination,
        "tcor": asdict(config.tcor) if config.tcor is not None else None,
        "gpu": asdict(config.gpu) if config.gpu is not None else None,
    }


def config_from_payload(data: dict) -> SimulationConfig:
    """Inverse of :func:`config_to_payload` (unknown keys dropped)."""
    try:
        tcor = data.get("tcor")
        gpu = data.get("gpu")
        return SimulationConfig(
            kind=data.get("kind", "tcor"),
            tile_cache_bytes=data.get("tile_cache_bytes"),
            l2_enhancements=data.get("l2_enhancements", True),
            interleaved_lists=data.get("interleaved_lists", True),
            include_background=data.get("include_background", True),
            rendering_elimination=data.get("rendering_elimination", False),
            tcor=(tcor_config_from_payload(tcor)
                  if isinstance(tcor, dict) else None),
            gpu=(gpu_config_from_payload(gpu)
                 if isinstance(gpu, dict) else None),
        )
    except (TypeError, ValueError) as exc:
        raise ServeError.bad_request(f"malformed config: {exc}") from exc


# -- requests ----------------------------------------------------------

@dataclass(frozen=True, slots=True)
class JobRequest:
    """One simulation to run, plus scheduling hints.

    ``alias``/``scale``/``config``/``anim`` define the simulation (and
    the request key); ``priority``, ``timeout_s`` and ``sequence`` are
    hints to the scheduler and deliberately *not* part of the key, so
    identical simulations coalesce across lanes.  ``anim`` selects the
    coherent multi-frame workload (``build_animated_workload``) instead
    of the suite's single frame; ``sequence`` names the animation
    stream a request belongs to, which the cluster router uses to pin
    every frame of one sequence to the same shard (warm memo tier).
    """

    alias: str
    scale: float = 1.0
    config: SimulationConfig = field(default_factory=SimulationConfig)
    priority: str = DEFAULT_PRIORITY
    timeout_s: float | None = None
    anim: AnimationSpec | None = None
    sequence: str | None = None

    def __post_init__(self) -> None:
        if self.alias not in BENCHMARKS:
            raise ServeError.bad_request(
                f"unknown benchmark alias {self.alias!r}; choose from "
                f"{sorted(BENCHMARKS)}")
        if not self.scale > 0:
            raise ServeError.bad_request(
                f"scale must be positive, got {self.scale!r}")
        if self.anim is not None and not isinstance(self.anim,
                                                    AnimationSpec):
            raise ServeError.bad_request(
                f"anim must be an AnimationSpec, got {self.anim!r}")
        if self.priority not in PRIORITIES:
            raise ServeError.bad_request(
                f"priority must be one of {PRIORITIES}, "
                f"got {self.priority!r}")
        if self.timeout_s is not None and not self.timeout_s > 0:
            raise ServeError.bad_request(
                f"timeout_s must be positive, got {self.timeout_s!r}")


def request_to_payload(request: JobRequest) -> dict:
    return {
        "alias": request.alias,
        "scale": request.scale,
        "config": config_to_payload(request.config),
        "priority": request.priority,
        "timeout_s": request.timeout_s,
        "anim": (anim_to_payload(request.anim)
                 if request.anim is not None else None),
        "sequence": request.sequence,
    }


def request_from_payload(data: dict) -> JobRequest:
    if not isinstance(data, dict):
        raise ServeError.bad_request("request must be a JSON object")
    config = data.get("config")
    anim = data.get("anim")
    try:
        return JobRequest(
            alias=data.get("alias", ""),
            scale=float(data.get("scale", 1.0)),
            config=(config_from_payload(config)
                    if isinstance(config, dict) else SimulationConfig()),
            priority=data.get("priority", DEFAULT_PRIORITY),
            timeout_s=(float(data["timeout_s"])
                       if data.get("timeout_s") is not None else None),
            anim=(anim_from_payload(anim)
                  if isinstance(anim, dict) else None),
            sequence=(str(data["sequence"])
                      if data.get("sequence") is not None else None),
        )
    except ServeError:
        raise
    except (TypeError, ValueError) as exc:
        raise ServeError.bad_request(f"malformed request: {exc}") from exc


def request_key(request: JobRequest, signature: str = "") -> str:
    """Deterministic identity of one simulation request.

    The same canonical-JSON + SHA-256 derivation the disk store uses:
    ``signature`` is the simulator-code signature (constant within one
    server process), and the payload covers exactly the fields that
    determine the simulation outcome — scheduling hints are excluded.
    """
    canonical = json.dumps(
        {"version": SCHEMA_VERSION, "signature": signature,
         "payload": {"alias": request.alias, "scale": request.scale,
                     "config": config_to_payload(request.config),
                     "anim": (anim_to_payload(request.anim)
                              if request.anim is not None else None)}},
        sort_keys=True, separators=(",", ":"), default=str,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


# -- disk-cache mapping ------------------------------------------------

def disk_mappable(request: JobRequest) -> bool:
    """Whether this request maps onto a PR 2 disk-cache record.

    The store's payloads cover the standard experiment knobs only: a
    custom GPU, contiguous PB-Lists or a dropped background workload
    change the simulation outcome but are not part of any store key,
    so such requests must bypass the disk lane entirely.  Animated /
    Rendering Elimination requests likewise stay off the disk lane:
    their results live in the scheduler's memo and memory tiers, which
    the sequence-affinity routing keeps warm.
    """
    config = request.config
    if config.gpu is not None:
        return False
    if config.rendering_elimination or request.anim is not None:
        return False
    return config.include_background and config.interleaved_lists


def effective_tile_cache_bytes(config: SimulationConfig) -> int:
    """The unified baseline budget this config resolves to."""
    if config.tile_cache_bytes is not None:
        return config.tile_cache_bytes
    return DEFAULT_GPU.tile_cache.size_bytes


def effective_tcor_config(config: SimulationConfig) -> TCORConfig:
    """The split TCOR sizing this config resolves to (mirrors
    :func:`repro.tcor.system.simulate_tcor`'s resolution order:
    explicit config first, then the total-budget split, then the
    paper default)."""
    if config.tcor is not None:
        return config.tcor
    if config.tile_cache_bytes is not None:
        return TCORConfig.for_total_size(config.tile_cache_bytes)
    return DEFAULT_TCOR


def probe_disk(disk, request: JobRequest) -> SystemResult | None:
    """Disk-cache lookup for a :func:`disk_mappable` request."""
    spec = BENCHMARKS[request.alias]
    config = request.config
    if config.kind == "baseline":
        return disk.get_baseline(spec, request.scale,
                                 effective_tile_cache_bytes(config))
    return disk.get_tcor(spec, request.scale,
                         effective_tcor_config(config),
                         l2_enhancements=config.l2_enhancements)


def store_disk(disk, request: JobRequest, result: SystemResult) -> None:
    """Write-through for a :func:`disk_mappable` request's result."""
    spec = BENCHMARKS[request.alias]
    config = request.config
    if config.kind == "baseline":
        disk.put_baseline(spec, request.scale,
                          effective_tile_cache_bytes(config), result)
    else:
        disk.put_tcor(spec, request.scale, effective_tcor_config(config),
                      l2_enhancements=config.l2_enhancements,
                      result=result)


def probe_disk_batch(disk, requests: list[JobRequest]
                     ) -> list[SystemResult | None]:
    """One executor round-trip for a whole micro-batch's warm probes.

    Positionally aligned with ``requests``; entries that are not
    :func:`disk_mappable` come back ``None`` without touching the
    store.  Delegates to the module-level :func:`probe_disk` so tests
    that monkeypatch the singular probe keep working.
    """
    return [probe_disk(disk, request) if disk_mappable(request)
            else None for request in requests]


def store_disk_batch(disk, entries: list[tuple[JobRequest,
                                               SystemResult]]) -> None:
    """One executor round-trip for a batch of write-throughs.

    Skips non-:func:`disk_mappable` requests; delegates per entry to
    :func:`store_disk` (monkeypatch-friendly, like the probe)."""
    for request, result in entries:
        if disk_mappable(request):
            store_disk(disk, request, result)


# -- status / results --------------------------------------------------

@dataclass(frozen=True, slots=True)
class JobStatus:
    """Scheduler-side view of one submitted job.

    ``shard`` is forwarded-job provenance: the cluster router records
    which backend shard a job was (last) routed to; single-node
    schedulers leave it ``None``.
    """

    job_id: str
    state: str
    priority: str = DEFAULT_PRIORITY
    lane: str | None = None
    attempts: int = 0
    coalesced: int = 0
    error: str | None = None
    queued_for_s: float = 0.0
    running_for_s: float = 0.0
    shard: str | None = None


def status_to_payload(status: JobStatus) -> dict:
    return asdict(status)


def status_from_payload(data: dict) -> JobStatus:
    return JobStatus(**_filtered_kwargs(JobStatus, data))


@dataclass(frozen=True, slots=True)
class JobResult:
    """One finished job, with the typed ``SystemResult`` view.

    Forwarded-job provenance rides along: ``shard`` names the backend
    the cluster router served this job through (``None`` off-cluster),
    and ``served_by`` is the serving process's self-reported name
    (``tcor-serve --name``), so a result can always be attributed to
    the exact worker that produced it.
    """

    job_id: str
    state: str
    lane: str | None = None
    attempts: int = 0
    elapsed_s: float = 0.0
    result: SystemResult | None = None
    metrics: Mapping[str, float] = field(default_factory=dict)
    invariant_failures: tuple[str, ...] = ()
    error: str | None = None
    shard: str | None = None
    served_by: str | None = None

    @property
    def ok(self) -> bool:
        return self.state == DONE and not self.invariant_failures


def job_result_to_payload(result: JobResult) -> dict:
    return {
        "id": result.job_id,
        "state": result.state,
        "lane": result.lane,
        "attempts": result.attempts,
        "elapsed_s": result.elapsed_s,
        "result": (result_to_dict(result.result)
                   if result.result is not None else None),
        "metrics": dict(result.metrics),
        "invariant_failures": list(result.invariant_failures),
        "error": result.error,
        "shard": result.shard,
        "served_by": result.served_by,
    }


def job_result_from_payload(data: dict) -> JobResult:
    record = data.get("result")
    return JobResult(
        job_id=data.get("id", ""),
        state=data.get("state", FAILED),
        lane=data.get("lane"),
        attempts=int(data.get("attempts", 0)),
        elapsed_s=float(data.get("elapsed_s", 0.0)),
        result=(result_from_dict(record)
                if isinstance(record, dict) else None),
        metrics=dict(data.get("metrics") or {}),
        invariant_failures=tuple(data.get("invariant_failures") or ()),
        error=data.get("error"),
        shard=data.get("shard"),
        served_by=data.get("served_by"),
    )
