"""The cluster front end: consistent-hash routing over tcor-serve shards.

:class:`Router` scales the single-process service horizontally while
keeping every serving guarantee intact.  It duck-types the scheduler
interface :class:`~repro.serve.server.SimulationServer` speaks, so the
exact same front door (NDJSON + HTTP on one port, typed errors,
``/metrics``) runs in front of a whole cluster:

- **key-affinity sharding** — each request key is owned by one backend
  via the :class:`~repro.serve.ring.HashRing`, so a key's repeats land
  where its memo and disk records already are (warm shards are the
  point: per-shard residency is what inter-frame reuse workloads
  exploit);
- **cluster-wide coalescing** — identical keys share one router job no
  matter which client or connection submitted them, on top of each
  backend's own in-flight coalescing;
- **tiered result cache** — a bounded in-memory LRU at the router
  (:class:`~repro.serve.tiers.MemoryTier`) in front of the shared
  concurrent-writer-safe :class:`~repro.parallel.store.DiskCache`;
  hot keys are answered without suspending, warm keys without
  forwarding, and only cold keys cost a shard round trip;
- **membership & failure handling** — periodic ``healthz`` probes with
  wire-schema version negotiation; a backend that misses
  ``fail_threshold`` consecutive probes (or errors mid-forward) is
  taken off the ring, its in-flight forwards requeue onto surviving
  shards (zero lost jobs), and it is re-probed with exponential
  backoff until it answers again — at which point the ring remaps its
  arcs back.

Forwards are one NDJSON round trip per job on a fresh connection
(``submit`` + ``wait`` inline), so a slow simulation never blocks an
unrelated job's response, and a died-mid-job backend surfaces as a
connection error the retry loop converts into a failover.  Everything
runs on one event loop; blocking work (the disk tier) goes through an
executor, mirroring the single-node scheduler's discipline.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import OrderedDict

from repro.serve import schema
from repro.serve.metrics import ClusterMetrics
from repro.serve.ring import DEFAULT_REPLICAS, HashRing
from repro.serve.schema import JobRequest, JobStatus, ServeError
from repro.serve.tiers import TieredResultCache

DEFAULT_QUEUE_LIMIT = 1024
DEFAULT_MEMO_LIMIT = 2048
DEFAULT_PROBE_INTERVAL_S = 1.0
DEFAULT_FAIL_THRESHOLD = 2
DEFAULT_RECONNECT_BACKOFF_S = 0.5
DEFAULT_RECONNECT_BACKOFF_MAX_S = 30.0
DEFAULT_CONNECT_TIMEOUT_S = 5.0
DEFAULT_FORWARD_TIMEOUT_S = 600.0
DEFAULT_FORWARD_ATTEMPTS = 4
DEFAULT_RETRY_BACKOFF_S = 0.05
DEFAULT_NO_BACKEND_WAIT_S = 10.0

# Backend-reported error codes worth retrying on another pass: the
# shard was healthy enough to answer, just not to take the job now.
_RETRYABLE_CODES = frozenset({"queue_full", "draining", "timeout"})

MAX_LINE_BYTES = 1 << 20


class Backend:
    """One shard's live state as the router sees it."""

    __slots__ = ("name", "host", "port", "up", "failures", "inflight",
                 "backoff_s", "next_probe_s", "schema_version",
                 "last_error")

    def __init__(self, name: str, host: str, port: int) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.up = True            # optimistic: probes/forwards correct
        self.failures = 0
        self.inflight = 0
        self.backoff_s = DEFAULT_RECONNECT_BACKOFF_S
        self.next_probe_s = 0.0
        self.schema_version: int | None = None
        self.last_error: str | None = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def describe(self) -> dict:
        return {"address": self.address, "up": self.up,
                "inflight": self.inflight, "failures": self.failures,
                "schema_version": self.schema_version,
                "error": self.last_error}


def parse_backends(spec) -> list[Backend]:
    """Backends from a membership document.

    Accepts a plain list or a ``{"backends": [...]}`` object; each
    entry is ``"host:port"`` or ``{"name": ..., "host": ..., "port":
    ...}`` (``address`` works in place of host/port).  Names default
    to ``shard0``, ``shard1``, ... in listing order — names are what
    the hash ring and the metrics namespace key on, so keep them
    stable across restarts.
    """
    if isinstance(spec, dict):
        entries = spec.get("backends", [])
    else:
        entries = spec
    backends: list[Backend] = []
    seen: set[str] = set()
    for index, entry in enumerate(entries):
        name = f"shard{index}"
        if isinstance(entry, str):
            address = entry
        elif isinstance(entry, dict):
            name = str(entry.get("name", name))
            address = entry.get("address")
            if address is None:
                address = f"{entry.get('host', '127.0.0.1')}:" \
                    f"{entry.get('port')}"
        else:
            raise ServeError.bad_request(
                f"backend entry {index} must be a string or object, "
                f"got {type(entry).__name__}")
        host, _, port = str(address).rpartition(":")
        if not host or not port.isdigit():
            raise ServeError.bad_request(
                f"backend {name!r}: address must be host:port, "
                f"got {address!r}")
        if name in seen:
            raise ServeError.bad_request(
                f"duplicate backend name {name!r}")
        seen.add(name)
        backends.append(Backend(name, host, int(port)))
    if not backends:
        raise ServeError.bad_request("no backends configured")
    return backends


class RouterJob:
    """One admitted request's lifecycle at the router."""

    __slots__ = ("key", "request", "state", "lane", "shard", "served_by",
                 "attempts", "coalesced", "error", "record", "created_s",
                 "started_s", "finished_s", "done")

    def __init__(self, key: str, request: JobRequest) -> None:
        self.key = key
        self.request = request
        self.state = schema.QUEUED
        self.lane: str | None = None
        self.shard: str | None = None
        self.served_by: str | None = None
        self.attempts = 0
        self.coalesced = 0
        self.error: str | None = None
        self.record: dict | None = None
        self.created_s = time.monotonic()
        self.started_s: float | None = None
        self.finished_s: float | None = None
        self.done = asyncio.Event()

    def status(self) -> JobStatus:
        now = time.monotonic()
        queued_for = (self.started_s or self.finished_s or now) \
            - self.created_s
        running_for = 0.0
        if self.started_s is not None:
            running_for = (self.finished_s or now) - self.started_s
        return JobStatus(job_id=self.key, state=self.state,
                         priority=self.request.priority, lane=self.lane,
                         attempts=self.attempts, coalesced=self.coalesced,
                         error=self.error, queued_for_s=queued_for,
                         running_for_s=running_for, shard=self.shard)


class Router:
    """Consistent-hash front end over N ``tcor-serve`` backends.

    Duck-types the scheduler surface the server needs (``submit`` /
    ``status`` / ``wait`` / ``result_payload`` / ``counts`` /
    ``drain`` / ``close`` / ``metrics`` / ``draining``), so
    ``SimulationServer(Router(...))`` *is* the cluster front door.
    """

    def __init__(self, backends, *,
                 tier: TieredResultCache | None = None,
                 metrics: ClusterMetrics | None = None,
                 replicas: int = DEFAULT_REPLICAS,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 memo_limit: int = DEFAULT_MEMO_LIMIT,
                 probe_interval_s: float = DEFAULT_PROBE_INTERVAL_S,
                 fail_threshold: int = DEFAULT_FAIL_THRESHOLD,
                 reconnect_backoff_s: float = DEFAULT_RECONNECT_BACKOFF_S,
                 reconnect_backoff_max_s: float =
                 DEFAULT_RECONNECT_BACKOFF_MAX_S,
                 connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
                 forward_timeout_s: float = DEFAULT_FORWARD_TIMEOUT_S,
                 max_forward_attempts: int = DEFAULT_FORWARD_ATTEMPTS,
                 retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
                 no_backend_wait_s: float = DEFAULT_NO_BACKEND_WAIT_S
                 ) -> None:
        parsed = backends if all(isinstance(entry, Backend)
                                 for entry in backends) and backends \
            else parse_backends(backends)
        self._backends: dict[str, Backend] = {
            backend.name: backend for backend in parsed}
        self.tier = tier if tier is not None else TieredResultCache()
        self.metrics = metrics if metrics is not None else ClusterMetrics()
        self.ring = HashRing(replicas=replicas)
        self.queue_limit = max(1, int(queue_limit))
        self.memo_limit = max(1, int(memo_limit))
        self.probe_interval_s = probe_interval_s
        self.fail_threshold = max(1, int(fail_threshold))
        self.reconnect_backoff_s = reconnect_backoff_s
        self.reconnect_backoff_max_s = reconnect_backoff_max_s
        self.connect_timeout_s = connect_timeout_s
        self.forward_timeout_s = forward_timeout_s
        self.max_forward_attempts = max(1, int(max_forward_attempts))
        self.retry_backoff_s = retry_backoff_s
        self.no_backend_wait_s = no_backend_wait_s
        self.signature = self.tier.signature
        self.draining = False
        self._closed = False
        self._jobs: dict[str, RouterJob] = {}
        self._finished: OrderedDict[str, None] = OrderedDict()
        self._active = 0
        self._inflight_jobs = 0
        self._routes: dict[asyncio.Task, str] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._membership: asyncio.Event | None = None
        self._prober: asyncio.Task | None = None
        for backend in self._backends.values():
            self.ring.add(backend.name)
            self.metrics.register_shard(backend.name)
        self.metrics.gauge("backends_total", len(self._backends))
        self.metrics.gauge("backends_up", len(self._backends))

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._membership = asyncio.Event()
        self._prober = asyncio.create_task(self._probe_loop())

    async def drain(self, timeout_s: float | None = None) -> int:
        """Stop admitting, let forwarded and queued jobs finish."""
        self.draining = True
        self.metrics.decision("drain")
        live = [job for job in self._jobs.values()
                if job.state not in schema.TERMINAL_STATES]
        if live:
            waits = asyncio.gather(*(job.done.wait() for job in live))
            try:
                await asyncio.wait_for(waits, timeout_s)
            except asyncio.TimeoutError:
                pass  # whatever is left is close()'s to cancel
        drained = sum(1 for job in live
                      if job.state in schema.TERMINAL_STATES)
        self.metrics.count("drained", drained)
        return len(live)

    async def close(self) -> None:
        """Hard stop: cancel the prober and every in-flight forward,
        fail whatever is still live."""
        self.draining = True
        self._closed = True
        pending = [task for task in ([self._prober] + list(self._routes))
                   if task is not None]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for job in list(self._jobs.values()):
            if job.state not in schema.TERMINAL_STATES:
                self._finish(job, schema.CANCELLED, error="router closed")

    # -- submission ----------------------------------------------------
    def submit(self, request: JobRequest) -> tuple[RouterJob, bool]:
        """Admit one request; returns ``(job, reused)``.

        Coalesces onto an identical live job, answers from the memo of
        a finished one or the memory tier without suspending, and
        otherwise spawns the routing task for the cold path.
        """
        key = schema.request_key(request, self.signature)
        self.metrics.count("submitted")
        if request.sequence is not None:
            self.metrics.count("sequence_frames")
        self.metrics.decision("submit", key=key)
        existing = self._jobs.get(key)
        if existing is not None:
            if existing.state in (schema.QUEUED, schema.RUNNING):
                existing.coalesced += 1
                self.metrics.count("coalesced")
                self.metrics.decision("coalesce", key=key,
                                      shard=existing.shard)
                return existing, True
            if existing.state == schema.DONE:
                self.metrics.count("memo_hits")
                self.metrics.decision("memo_hit", key=key, lane="memo")
                return existing, True
            self._finished.pop(key, None)
        if self.draining:
            self.metrics.count("rejected.draining")
            self.metrics.decision("reject", key=key)
            raise ServeError.draining()
        if self._active >= self.queue_limit:
            self.metrics.count("rejected.queue_full")
            self.metrics.decision("reject", key=key)
            raise ServeError.queue_full(self.queue_limit)
        job = RouterJob(key, request)
        self._jobs[key] = job
        self._active += 1
        self.metrics.count("accepted")
        self.metrics.gauge("active", self._active)
        record = self.tier.lookup_memory(key)
        if record is not None:
            self.metrics.count("tier.memory_hits")
            self.metrics.decision("tier_hit", key=key, lane="memory")
            self._finish(job, schema.DONE, record=record, lane="memory")
            return job, False
        assert self._loop is not None, "router not started"
        task = self._loop.create_task(self._route_job(job))
        self._routes[task] = key
        task.add_done_callback(
            lambda done: self._routes.pop(done, None))
        return job, False

    # -- queries (server surface) --------------------------------------
    def status(self, job_id: str) -> RouterJob:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError.not_found(job_id)
        return job

    async def wait(self, job_id: str,
                   timeout_s: float | None = None) -> RouterJob:
        job = self.status(job_id)
        try:
            await asyncio.wait_for(job.done.wait(), timeout_s)
        except asyncio.TimeoutError:
            raise ServeError.wait_timeout(job_id, timeout_s or 0.0) \
                from None
        return job

    def result_payload(self, job: RouterJob) -> dict:
        elapsed = ((job.finished_s or time.monotonic()) - job.created_s)
        payload = {"id": job.key, "state": job.state, "lane": job.lane,
                   "attempts": job.attempts, "elapsed_s": elapsed,
                   "result": None, "metrics": {},
                   "invariant_failures": [], "error": job.error,
                   "shard": job.shard, "served_by": job.served_by}
        if job.record is not None:
            payload["result"] = job.record.get("result")
            payload["metrics"] = job.record.get("metrics", {})
            payload["invariant_failures"] = job.record.get(
                "invariant_failures", [])
        return payload

    def counts(self) -> dict:
        states: dict[str, int] = {}
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {"role": "router", "active": self._active,
                "inflight": self._inflight_jobs, "states": states,
                "backends": {name: backend.describe() for name, backend
                             in sorted(self._backends.items())},
                "backends_up": sum(1 for backend
                                   in self._backends.values()
                                   if backend.up)}

    # -- routing internals ---------------------------------------------
    def _finish(self, job: RouterJob, state: str, *,
                record: dict | None = None, lane: str | None = None,
                error: str | None = None) -> None:
        job.state = state
        job.record = record
        if lane is not None:
            job.lane = lane
        job.error = error
        job.finished_s = time.monotonic()
        self._active -= 1
        if state == schema.DONE:
            self.metrics.count("completed")
            self.metrics.observe_latency(job.finished_s - job.created_s)
            self.metrics.decision("complete", key=job.key,
                                  shard=job.shard, lane=job.lane)
        else:
            self.metrics.count("failed")
            self.metrics.decision("fail", key=job.key, shard=job.shard,
                                  lane=job.lane)
        self.metrics.gauge("active", self._active)
        job.done.set()
        self._finished[job.key] = None
        while len(self._finished) > self.memo_limit:
            stale, _ = self._finished.popitem(last=False)
            self._jobs.pop(stale, None)

    def _track_inflight(self, delta: int) -> None:
        """Adjust the forwarded-jobs counter and its gauge in one
        synchronous step — atomic between suspension points, so the
        count can never be observed mid-update (SIM202 discipline)."""
        self._inflight_jobs += delta
        self.metrics.gauge("inflight", self._inflight_jobs)

    async def _route_job(self, job: RouterJob) -> None:
        try:
            await self._route_job_inner(job)
        except asyncio.CancelledError:
            if job.state not in schema.TERMINAL_STATES:
                self._finish(job, schema.CANCELLED,
                             error="router closed")
            raise
        except Exception as exc:  # defensive: a routing bug must not
            if job.state not in schema.TERMINAL_STATES:  # hang waiters
                self._finish(job, schema.FAILED,
                             error=f"{type(exc).__name__}: {exc}")

    async def _route_job_inner(self, job: RouterJob) -> None:
        assert self._loop is not None
        record = None
        if self.tier.disk_tier is not None \
                and schema.disk_mappable(job.request):
            record = await self._loop.run_in_executor(
                None, self.tier.probe_disk, job.key, job.request)
        if job.state in schema.TERMINAL_STATES:
            return  # close() raced the probe
        if record is not None:
            self.metrics.count("tier.disk_hits")
            self.metrics.decision("tier_hit", key=job.key, lane="disk")
            self._finish(job, schema.DONE, record=record, lane="disk")
            return
        self.metrics.count("tier.misses")
        avoid: set[str] = set()
        while True:
            backend = await self._acquire_backend(job, avoid)
            if backend is None:
                self._finish(job, schema.FAILED,
                             error=ServeError.no_backends().message)
                return
            job.attempts += 1
            job.shard = backend.name
            job.state = schema.RUNNING
            job.started_s = time.monotonic()
            backend.inflight += 1
            self._track_inflight(+1)
            self.metrics.shard_forwarded(backend.name)
            self.metrics.decision("forward", key=job.key,
                                  shard=backend.name)
            try:
                response = await self._forward(backend, job)
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError, ValueError) as exc:
                self._note_backend_failure(backend, exc)
                self.metrics.count("requeued")
                self.metrics.decision("requeue", key=job.key,
                                      shard=backend.name)
                avoid.add(backend.name)
                if not await self._retry_backoff(job):
                    self._finish(
                        job, schema.FAILED,
                        error=f"forward to {backend.name} failed: "
                              f"{type(exc).__name__}: {exc}")
                    return
                continue
            finally:
                backend.inflight -= 1
                self._track_inflight(-1)
            self._note_backend_success(backend)
            if self._complete_from_response(job, backend, response):
                return
            # Typed, retryable backend rejection (queue_full/draining):
            # back off and re-route — possibly to the same shard once
            # its queue clears, or past it if it goes down meanwhile.
            if not await self._retry_backoff(job):
                error = response.get("error") or {}
                self._finish(job, schema.FAILED,
                             error=f"backend {backend.name}: "
                                   f"{error.get('code', 'error')}: "
                                   f"{error.get('message', '')}")
                return

    def _route_key(self, job: RouterJob) -> str:
        """What the hash ring places for this job.

        Frames of one animation stream carry a ``sequence`` hint; they
        route by the stream's identity rather than the per-frame
        request key, so consecutive frames land on the shard whose
        memo and memory tiers the earlier frames already warmed."""
        request = job.request
        if request.sequence is not None:
            return f"seq:{request.alias}:{request.sequence}"
        return job.key

    async def _acquire_backend(self, job: RouterJob,
                               avoid: set[str]) -> Backend | None:
        """The ring owner for this job's routing key among healthy
        backends, waiting briefly through total outages (a restarting
        cluster should queue, not fail)."""
        assert self._membership is not None
        deadline = time.monotonic() + self.no_backend_wait_s
        route_key = self._route_key(job)
        while True:
            down = {name for name, backend in self._backends.items()
                    if not backend.up}
            name = self.ring.node_for(route_key, avoid=down | avoid)
            if name is None and avoid:
                # Every healthy shard was already tried this round;
                # widen back to any healthy shard rather than failing.
                avoid.clear()
                name = self.ring.node_for(route_key, avoid=down)
            if name is not None:
                return self._backends[name]
            remaining = deadline - time.monotonic()
            if remaining <= 0 or self._closed:
                return None
            self._membership.clear()
            try:
                await asyncio.wait_for(self._membership.wait(),
                                       min(remaining,
                                           self.probe_interval_s))
            except asyncio.TimeoutError:
                pass  # re-evaluate membership on the tick

    async def _retry_backoff(self, job: RouterJob) -> bool:
        """Whether the job still has attempt budget; sleeps the
        exponential backoff when it does."""
        if job.attempts >= self.max_forward_attempts or self._closed:
            return False
        self.metrics.count("retries")
        self.metrics.decision("retry", key=job.key)
        job.state = schema.QUEUED
        await asyncio.sleep(
            self.retry_backoff_s * (2 ** max(0, job.attempts - 1)))
        return job.state == schema.QUEUED  # close() may have raced

    def _complete_from_response(self, job: RouterJob, backend: Backend,
                                response: dict) -> bool:
        """Digest one backend reply; ``False`` means retry-worthy."""
        error = response.get("error")
        if error is not None:
            code = str(error.get("code", "internal"))
            if code in _RETRYABLE_CODES:
                return False
            self._finish(job, schema.FAILED,
                         error=f"backend {backend.name}: {code}: "
                               f"{error.get('message', '')}")
            return True
        payload = response.get("result")
        if not isinstance(payload, dict):
            # Malformed success reply: treat like a failed forward.
            self._finish(job, schema.FAILED,
                         error=f"backend {backend.name} returned no "
                               "result payload")
            return True
        job.served_by = payload.get("served_by") or backend.name
        state = payload.get("state", schema.FAILED)
        if state != schema.DONE:
            # Deterministic simulation failure on the shard: retrying
            # elsewhere would reproduce it bit-for-bit.
            self._finish(job, schema.FAILED,
                         lane=payload.get("lane"),
                         error=payload.get("error")
                         or f"backend {backend.name} state {state}")
            return True
        record = {"result": payload.get("result"),
                  "metrics": payload.get("metrics", {}),
                  "invariant_failures": payload.get(
                      "invariant_failures", [])}
        self.tier.admit(job.key, record)
        self._finish(job, schema.DONE, record=record,
                     lane=payload.get("lane") or "pool")
        return True

    # -- backend wire --------------------------------------------------
    async def _forward(self, backend: Backend, job: RouterJob) -> dict:
        """One submit-and-wait round trip to a shard."""
        timeout = job.request.timeout_s or self.forward_timeout_s
        payload = {"op": "submit", "v": schema.SCHEMA_VERSION,
                   "request": schema.request_to_payload(job.request),
                   "wait": True, "timeout_s": timeout}
        # The backend enforces `timeout` itself (504 past it); the
        # outer allowance only catches a shard that stopped answering.
        return await asyncio.wait_for(
            self._backend_call(backend, payload),
            timeout + 2 * self.connect_timeout_s)

    async def _backend_call(self, backend: Backend,
                            payload: dict) -> dict:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(backend.host, backend.port),
            self.connect_timeout_s)
        try:
            writer.write(json.dumps(payload, sort_keys=True).encode()
                         + b"\n")
            await writer.drain()
            line = await reader.readline()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # already torn down under us
        if not line:
            raise ConnectionError(
                f"backend {backend.name} closed the connection")
        if len(line) > MAX_LINE_BYTES:
            raise ValueError(f"backend {backend.name} reply too long")
        response = json.loads(line)
        if not isinstance(response, dict):
            raise ValueError(f"backend {backend.name} sent a non-object")
        return response

    # -- membership / health -------------------------------------------
    def _note_backend_failure(self, backend: Backend,
                              exc: BaseException) -> None:
        backend.failures += 1
        backend.last_error = f"{type(exc).__name__}: {exc}"
        if backend.up and backend.failures >= self.fail_threshold:
            self._mark_down(backend)

    def _note_backend_success(self, backend: Backend) -> None:
        backend.failures = 0
        backend.backoff_s = self.reconnect_backoff_s
        backend.last_error = None
        if not backend.up:
            self._mark_up(backend)

    def _mark_down(self, backend: Backend) -> None:
        backend.up = False
        backend.backoff_s = self.reconnect_backoff_s
        backend.next_probe_s = time.monotonic() + backend.backoff_s
        self.ring.remove(backend.name)
        self.metrics.count("backend_down")
        self.metrics.gauge(
            "backends_up",
            sum(1 for other in self._backends.values() if other.up))
        self.metrics.decision("backend_down", shard=backend.name,
                              jobs=backend.inflight)
        if self._membership is not None:
            self._membership.set()

    def _mark_up(self, backend: Backend) -> None:
        backend.up = True
        backend.failures = 0
        self.ring.add(backend.name)
        self.metrics.count("backend_up")
        self.metrics.gauge(
            "backends_up",
            sum(1 for other in self._backends.values() if other.up))
        self.metrics.decision("backend_up", shard=backend.name)
        if self._membership is not None:
            self._membership.set()

    async def _probe_loop(self) -> None:
        """Health checking: every backend gets a periodic ``healthz``
        probe; down backends are re-probed on their own exponential
        backoff schedule until they answer."""
        while True:
            now = time.monotonic()
            for backend in list(self._backends.values()):
                if now < backend.next_probe_s:
                    continue
                await self._probe(backend)
            await asyncio.sleep(
                min(self.probe_interval_s, 0.25)
                if any(not backend.up
                       for backend in self._backends.values())
                else self.probe_interval_s)

    async def _probe(self, backend: Backend) -> None:
        try:
            response = await asyncio.wait_for(
                self._backend_call(
                    backend,
                    {"op": "healthz", "v": schema.SCHEMA_VERSION}),
                self.connect_timeout_s)
        except (ConnectionError, OSError, asyncio.TimeoutError,
                asyncio.IncompleteReadError, ValueError) as exc:
            self._note_backend_failure(backend, exc)
            if not backend.up:
                backend.backoff_s = min(backend.backoff_s * 2,
                                        self.reconnect_backoff_max_s)
                backend.next_probe_s = time.monotonic() \
                    + backend.backoff_s
            return
        theirs = response.get("schema_version")
        error = response.get("error") or {}
        if error.get("code") == "version_mismatch" or (
                theirs is not None
                and not schema.versions_compatible(int(theirs))):
            # Speaks, but a schema too far away: typed quarantine, slow
            # re-probe (an upgrade, not a reboot, brings it back).
            backend.schema_version = (int(theirs)
                                      if theirs is not None else None)
            backend.last_error = ServeError.version_mismatch(
                theirs).message
            self.metrics.count("version_mismatch")
            self.metrics.decision("version_mismatch",
                                  shard=backend.name)
            if backend.up:
                self._mark_down(backend)
            backend.backoff_s = self.reconnect_backoff_max_s
            backend.next_probe_s = time.monotonic() + backend.backoff_s
            return
        if theirs is not None:
            backend.schema_version = int(theirs)
        backend.next_probe_s = time.monotonic() + self.probe_interval_s
        self._note_backend_success(backend)
