"""Animated workloads and Rendering Elimination (DESIGN.md §15).

Public surface of the animation subsystem:

- :class:`AnimationSpec` / :func:`build_animated_workload` — a
  deterministic, prefix-stable multi-frame layer over the benchmark
  suite (camera paths, object churn, per-object jitter);
- :func:`tile_signatures` / :func:`skip_mask` — the per-tile input
  signatures shared verbatim by the live simulator and the replay IR;
- :class:`RenderingElimination` / :class:`REStats` — the early-discard
  unit and its SIM301-checked stats footprint.
"""

from repro.anim.animate import build_animated_workload
from repro.anim.elimination import (RE_ACCOUNTING_RULE, REStats,
                                    RenderingElimination)
from repro.anim.metrics import (register_energy_gauges, register_re_gauges,
                                register_sequence_gauges)
from repro.anim.paths import (Affine2D, camera_transform, path_parameter,
                              smoothstep)
from repro.anim.signatures import EMPTY_TILE_SIG, skip_mask, tile_signatures
from repro.anim.spec import (PATHS, AnimationSpec, anim_from_payload,
                             anim_to_payload)

__all__ = [
    "Affine2D",
    "AnimationSpec",
    "EMPTY_TILE_SIG",
    "PATHS",
    "RE_ACCOUNTING_RULE",
    "REStats",
    "RenderingElimination",
    "anim_from_payload",
    "anim_to_payload",
    "build_animated_workload",
    "camera_transform",
    "path_parameter",
    "register_energy_gauges",
    "register_re_gauges",
    "register_sequence_gauges",
    "skip_mask",
    "smoothstep",
    "tile_signatures",
]
