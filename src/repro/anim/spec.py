"""Animation sequence description.

An :class:`AnimationSpec` is the content-addressed recipe for a
multi-frame sequence: everything that shapes the per-frame geometry is
in here (camera path, waypoint timing, object churn and jitter, the
animation seed), so two requests carrying equal specs replay the exact
same frames.  The payload round-trip mirrors ``SimulationConfig``'s
wire treatment: field names are stable, unknown keys are dropped, and
the dict feeds straight into the serve request key.

Frame prefixes are stable by construction: every per-frame random draw
is seeded by ``(seed, frame)`` alone, never by ``frames``.  Truncating
a spec to its first ``k`` frames therefore reproduces the first ``k``
frames of the longer sequence bit-for-bit — the property the streaming
client leans on when it submits a sequence one cumulative prefix at a
time.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace

#: Supported camera paths.  ``static`` holds the camera still (only
#: churn/jitter move geometry); the other three are the classic
#: scripted moves of a benchmark flythrough.
PATHS = ("static", "orbit", "dolly", "pan")


@dataclass(frozen=True, slots=True)
class AnimationSpec:
    """Deterministic multi-frame animation recipe.

    Parameters
    ----------
    frames:
        Number of frames in the sequence (>= 1).
    path:
        Camera path family, one of :data:`PATHS`.
    amplitude:
        Path strength per waypoint: radians for ``orbit``, log-scale
        zoom factor for ``dolly``, screen fraction for ``pan``.
    dwell:
        Frames the camera holds still at each waypoint.  Dwell frames
        are where Rendering Elimination earns its keep: with no churn
        or jitter, a held camera repeats the previous frame exactly.
    travel:
        Frames spent easing between consecutive waypoints.
    churn:
        Fraction of objects respawned (new geometry, new location)
        each frame; 1.0 makes every frame's content fresh.
    jitter:
        Per-object drift velocity in pixels/frame (rigid translation
        plus a slow rotation about the object's own centroid).
    seed:
        Animation-layer seed, mixed with the benchmark seed so the
        same benchmark can run under many distinct sequences.
    """

    frames: int = 4
    path: str = "orbit"
    amplitude: float = 0.2
    dwell: int = 1
    travel: int = 1
    churn: float = 0.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.frames < 1:
            raise ValueError("an animation needs at least one frame")
        if self.path not in PATHS:
            raise ValueError(
                f"unknown camera path {self.path!r}; expected one of {PATHS}")
        if self.amplitude < 0.0:
            raise ValueError("amplitude must be non-negative")
        if self.dwell < 0 or self.travel < 0:
            raise ValueError("dwell/travel frame counts must be >= 0")
        if self.dwell + self.travel < 1:
            raise ValueError("dwell + travel must cover at least one frame")
        if not (0.0 <= self.churn <= 1.0):
            raise ValueError("churn is a fraction in [0, 1]")
        if self.jitter < 0.0:
            raise ValueError("jitter must be non-negative")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")

    def prefix(self, frames: int) -> "AnimationSpec":
        """The same animation truncated to its first ``frames`` frames."""
        if not (1 <= frames <= self.frames):
            raise ValueError(
                f"prefix length {frames} outside 1..{self.frames}")
        return replace(self, frames=frames)


def anim_to_payload(spec: AnimationSpec) -> dict:
    """Wire/dict form of an animation spec (canonical field names)."""
    return asdict(spec)


def anim_from_payload(data: dict) -> AnimationSpec:
    """Rebuild a spec from its payload dict.

    Unknown keys are dropped (same forward-compat posture as the config
    payload); missing keys fall back to defaults; invalid values raise
    ``ValueError`` via the dataclass validation.
    """
    known = {f.name for f in fields(AnimationSpec)}
    kwargs = {key: value for key, value in data.items() if key in known}
    return AnimationSpec(**kwargs)
