"""Per-tile input signatures for Rendering Elimination.

A tile's raster output is a pure function of the primitives that
overlap it: their identities, transformed vertex positions, and bound
state (here, the attribute payload size — the only bind the memory
model sees).  Hashing exactly those inputs per tile gives a signature
that matches across frames iff the tile would be rendered identically,
which is the discard condition of *Rendering Elimination: Early
Discard of Redundant Tiles* (PAPERS.md).

Signatures are 56-bit BLAKE2b digests computed from packed binary
vertex data — not Python ``hash()``, which is salted per process and
would break replay/live and cross-process equivalence.  56 bits keeps
the value inside an int64 so the replay IR can carry one flat signed
array per frame.  Tiles with an empty primitive list get the reserved
signature :data:`EMPTY_TILE_SIG` (0); they never participate in the
skip decision because an empty tile generates no fetch traffic to
discard (and counting them would fake perfect skip rates on sparse
screens).  Occupied tiles hashing to 0 are nudged to 1.
"""

from __future__ import annotations

import hashlib
import struct

from repro.geometry.scene import Scene

#: Signature reserved for tiles whose primitive list is empty.
EMPTY_TILE_SIG = 0

_PRIM_PACK = struct.Struct("<qq9d")
_SIG_BYTES = 7  # 56-bit digests fit an int64 with sign bit to spare


def primitive_digest_input(prim) -> bytes:
    """Canonical byte encoding of one primitive's rasterizer inputs."""
    return _PRIM_PACK.pack(
        prim.primitive_id, prim.num_attributes,
        prim.v0.x, prim.v0.y, prim.v0.z,
        prim.v1.x, prim.v1.y, prim.v1.z,
        prim.v2.x, prim.v2.y, prim.v2.z,
    )


def tile_signatures(scene: Scene) -> list[int]:
    """One signature per tile (row-major, ``screen.num_tiles`` long)."""
    blobs = [primitive_digest_input(prim) for prim in scene.primitives]
    signatures: list[int] = []
    for pids in scene.tile_lists():
        if not pids:
            signatures.append(EMPTY_TILE_SIG)
            continue
        digest = hashlib.blake2b(digest_size=_SIG_BYTES)
        for pid in pids:
            digest.update(blobs[pid])
        value = int.from_bytes(digest.digest(), "little")
        signatures.append(value if value != EMPTY_TILE_SIG else 1)
    return signatures


def skip_mask(current: list[int], previous: list[int] | None) -> list[bool]:
    """Which tiles of the current frame are discardable.

    A tile is skipped when it is occupied (non-empty signature) and its
    signature matches the previous frame's.  With no previous frame
    nothing is skipped — frame 0 always renders in full.
    """
    if previous is None:
        return [False] * len(current)
    if len(previous) != len(current):
        raise ValueError("frames disagree on tile count")
    return [sig != EMPTY_TILE_SIG and sig == prev
            for sig, prev in zip(current, previous)]
