"""Camera paths as per-frame affine screen transforms.

The animation layer moves the *camera*, which in screen space is a
rigid/affine transform applied to every primitive of the frame.  Paths
follow a waypoint schedule: the camera **dwells** (holds perfectly
still) for ``dwell`` frames, then **travels** toward the next waypoint
over ``travel`` frames with smoothstep easing.  Dwell frames are the
coherent case Rendering Elimination exploits — with no churn or
jitter, a dwelling camera reproduces the previous frame exactly, so
every occupied tile's signature matches and the whole frame is
discardable.

Everything here is pure float arithmetic on Python scalars, so a path
evaluated at frame ``f`` is bit-identical across runs and processes —
a requirement for content-addressed request keys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.anim.spec import AnimationSpec
from repro.config import ScreenConfig
from repro.geometry.primitives import Primitive, Vertex


@dataclass(frozen=True, slots=True)
class Affine2D:
    """Row-major 2x2 linear part plus a translation.

    ``x' = a*x + b*y + tx``; ``y' = c*x + d*y + ty``.  Depth is passed
    through untouched — the tiler bins in 2D.
    """

    a: float = 1.0
    b: float = 0.0
    c: float = 0.0
    d: float = 1.0
    tx: float = 0.0
    ty: float = 0.0

    def apply(self, x: float, y: float) -> tuple[float, float]:
        return (self.a * x + self.b * y + self.tx,
                self.c * x + self.d * y + self.ty)

    def apply_vertex(self, vertex: Vertex) -> Vertex:
        x, y = self.apply(vertex.x, vertex.y)
        return Vertex(x, y, vertex.z)

    def apply_primitive(self, prim: Primitive) -> Primitive:
        return Primitive(
            prim.primitive_id,
            self.apply_vertex(prim.v0),
            self.apply_vertex(prim.v1),
            self.apply_vertex(prim.v2),
            num_attributes=prim.num_attributes,
        )


IDENTITY = Affine2D()


def smoothstep(t: float) -> float:
    """Hermite ease 3t^2 - 2t^3, clamped to [0, 1]."""
    t = min(1.0, max(0.0, t))
    return t * t * (3.0 - 2.0 * t)


def path_parameter(frame: int, dwell: int, travel: int) -> float:
    """Continuous waypoint coordinate for ``frame``.

    The integer part counts completed waypoints, the fractional part is
    the eased travel progress toward the next one.  While the camera
    dwells the value is exactly the waypoint index, so consecutive
    dwell frames share the exact same transform.
    """
    if frame < 0:
        raise ValueError("frame must be non-negative")
    cycle = dwell + travel
    waypoint, phase = divmod(frame, cycle)
    if phase < dwell or travel == 0:
        return float(waypoint)
    # Travel frames ease from just past the held waypoint to exactly
    # the next one, so the final travel frame already matches the
    # upcoming dwell (one extra coherent frame per cycle).
    return waypoint + smoothstep((phase - dwell + 1) / travel)


def rotation_about(cx: float, cy: float, angle: float) -> Affine2D:
    """Rigid rotation by ``angle`` radians about (cx, cy)."""
    cos_a = math.cos(angle)
    sin_a = math.sin(angle)
    return Affine2D(
        a=cos_a, b=-sin_a, c=sin_a, d=cos_a,
        tx=cx - cos_a * cx + sin_a * cy,
        ty=cy - sin_a * cx - cos_a * cy,
    )


def scale_about(cx: float, cy: float, factor: float) -> Affine2D:
    """Uniform zoom by ``factor`` about (cx, cy)."""
    return Affine2D(
        a=factor, d=factor,
        tx=cx * (1.0 - factor),
        ty=cy * (1.0 - factor),
    )


def camera_transform(spec: AnimationSpec, frame: int,
                     screen: ScreenConfig) -> Affine2D:
    """The camera's screen transform at ``frame``.

    Frame 0 is always the identity (the base scene as generated), so a
    one-frame animation degenerates to the standard workload.
    """
    u = path_parameter(frame, spec.dwell, spec.travel)
    if spec.path == "static" or u == 0.0 or spec.amplitude == 0.0:
        return IDENTITY
    cx = screen.width / 2.0
    cy = screen.height / 2.0
    if spec.path == "orbit":
        return rotation_about(cx, cy, spec.amplitude * u)
    if spec.path == "dolly":
        # Log-space zoom: each waypoint multiplies the scale by
        # exp(amplitude), alternating in and out so the geometry never
        # runs off screen over a long sequence.
        swing = math.sin(u * math.pi / 2.0)
        return scale_about(cx, cy, math.exp(spec.amplitude * swing))
    # pan: bounded Lissajous-style translation, amplitude as a screen
    # fraction so it composes with any resolution.
    dx = spec.amplitude * screen.width * math.sin(u * math.pi / 2.0)
    dy = spec.amplitude * screen.height * (1.0 - math.cos(u * math.pi / 2.0))
    return Affine2D(tx=dx, ty=dy)
