"""Multi-frame animated workloads over the benchmark suite.

``build_workload`` generates every frame independently (full reseed per
frame), which models *statistics* but destroys the inter-frame
coherence tile renderers live on.  This module supplies the coherent
counterpart: frame 0 is exactly the suite's base scene, and each later
frame derives from persistent object state —

- a **camera path** (:mod:`repro.anim.paths`) applies one affine
  transform to the whole frame,
- **object churn** respawns a seeded fraction of objects with fresh
  geometry at fresh locations (content change without population
  change: primitive count and dense IDs stay fixed),
- **object jitter** drifts each object along a per-object velocity
  sampled once per sequence (rigid translation + slow spin about the
  object's base centroid).

Determinism contract: every random draw is seeded by the benchmark
seed, the animation seed and the *frame index* — never by the total
frame count — so any ``AnimationSpec.prefix(k)`` reproduces the first
``k`` frames bit-for-bit.  That property makes animated request keys
content-addressed and lets the streaming serve client submit a
sequence as cumulative prefixes that coalesce and memoize perfectly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.anim.paths import (Affine2D, IDENTITY, camera_transform,
                              rotation_about)
from repro.anim.spec import AnimationSpec
from repro.config import DEFAULT_GPU, ParameterBufferConfig, ScreenConfig
from repro.geometry.generator import (SceneGenerator, SceneParameters,
                                      fat_triangle, sample_attribute_count)
from repro.geometry.primitives import Primitive
from repro.geometry.scene import Scene
from repro.geometry.traversal import TraversalOrder
from repro.tiling.engine import TilingEngine
from repro.workloads.suite import BenchmarkSpec, Workload, build_workload


def _frame_rng(spec: BenchmarkSpec, anim: AnimationSpec,
               frame: int) -> np.random.Generator:
    """Per-frame entropy, keyed by (benchmark, animation, frame) only.

    ``frame`` -1 is the sequence-level stream (per-object velocities);
    the +1 shift keeps every entropy component non-negative for numpy's
    SeedSequence.
    """
    return np.random.default_rng((spec.seed, anim.seed, frame + 1))


def _object_velocities(spec: BenchmarkSpec, anim: AnimationSpec,
                       num_objects: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-object drift velocities, sampled once per sequence.

    Translation is ``jitter`` pixels/frame in a uniform direction; the
    angular velocity is a slow spin proportional to the same knob.
    """
    rng = _frame_rng(spec, anim, -1)
    headings = rng.uniform(0.0, 2.0 * math.pi, size=num_objects)
    velocity = anim.jitter * np.stack(
        [np.cos(headings), np.sin(headings)], axis=1)
    spins = rng.uniform(-1.0, 1.0, size=num_objects) * anim.jitter * 0.004
    return velocity, spins


def _respawn_object(prims: list[Primitive], generator: SceneGenerator,
                    rng: np.random.Generator) -> list[Primitive]:
    """Fresh geometry for one churned object (same IDs, same count).

    Placement and sizing follow the generator's distributions so a
    churned frame keeps the suite's measured statistics; only identity
    (which pixels, which attributes) changes.
    """
    p = generator.params
    screen = generator.screen
    span = math.sqrt(p.coverage_fraction)
    active_w = screen.width * span
    active_h = screen.height * span
    min_x = (screen.width - active_w) / 2
    min_y = (screen.height - active_h) / 2
    ocx = rng.uniform(min_x, min_x + active_w)
    ocy = rng.uniform(min_y, min_y + active_h)
    spread = generator.calibrated_extent * 1.5
    fresh: list[Primitive] = []
    for prim in prims:
        extent = float(generator.calibrated_extent
                       * rng.lognormal(0.0, p.size_spread))
        cx = float(np.clip(ocx + rng.uniform(-spread, spread),
                           1, screen.width - 2))
        cy = float(np.clip(ocy + rng.uniform(-spread, spread),
                           1, screen.height - 2))
        fresh.append(fat_triangle(
            prim.primitive_id, cx, cy, extent,
            sample_attribute_count(p.mean_attributes, rng), rng))
    return fresh


def _object_transform(base: list[Primitive], velocity, spin: float,
                      frame: int) -> Affine2D:
    """The rigid drift of one object at ``frame`` (identity at 0)."""
    xs = [v.x for prim in base for v in prim.vertices]
    ys = [v.y for prim in base for v in prim.vertices]
    pivot_x = sum(xs) / len(xs)
    pivot_y = sum(ys) / len(ys)
    rotation = rotation_about(pivot_x, pivot_y, spin * frame)
    return Affine2D(
        a=rotation.a, b=rotation.b, c=rotation.c, d=rotation.d,
        tx=rotation.tx + float(velocity[0]) * frame,
        ty=rotation.ty + float(velocity[1]) * frame,
    )


def build_animated_workload(
        spec: BenchmarkSpec, anim: AnimationSpec, scale: float = 1.0,
        screen: ScreenConfig | None = None,
        order: TraversalOrder = TraversalOrder.Z_ORDER,
        pbuffer: ParameterBufferConfig | None = None) -> Workload:
    """A coherent multi-frame :class:`Workload` for one benchmark.

    The returned workload is structurally identical to the suite's —
    same spec, screen, background model, one trace per frame — so every
    consumer (live simulator, trace compiler, energy model) works
    unchanged; the workload additionally records ``anim`` so caches and
    the serve layer can key on the sequence recipe.
    """
    from repro.workloads.background import BackgroundTrafficModel

    if scale <= 0:
        raise ValueError("scale must be positive")
    screen = screen or DEFAULT_GPU.screen
    if anim.frames == 1 and anim.churn == 0.0 and anim.jitter == 0.0:
        # Degenerate single-frame sequence: identical to the suite.
        base = build_workload(spec, scale=scale, screen=screen, order=order,
                              pbuffer=pbuffer)
        base.anim = anim
        return base

    num_primitives = max(16, round(spec.num_primitives(pbuffer) * scale))
    generator = SceneGenerator(screen, SceneParameters(
        num_primitives=num_primitives,
        target_reuse=spec.avg_reuse,
        mean_attributes=spec.mean_attributes,
        is_2d=spec.is_2d,
        coverage_fraction=spec.coverage_fraction,
        seed=spec.seed,
    ))
    base_scene = generator.generate(0)

    # Persistent object state: base (untransformed) primitives grouped
    # by draw command.  Draw structure, primitive counts and dense IDs
    # never change across frames — churn replaces content in place.
    draws = list(base_scene.draw_commands)
    objects: list[list[Primitive]] = [
        base_scene.primitives[d.first_primitive:
                              d.first_primitive + d.primitive_count]
        for d in draws
    ]
    velocity, spins = _object_velocities(spec, anim, len(objects))
    moving = anim.jitter > 0.0

    scenes: list[Scene] = []
    for frame in range(anim.frames):
        if frame > 0:
            rng = _frame_rng(spec, anim, frame)
            # One churn draw per object, always consumed in object
            # order, so the stream is identical for every prefix.
            churn_draws = rng.random(len(objects))
            for index, base in enumerate(objects):
                if anim.churn > 0.0 and churn_draws[index] < anim.churn:
                    objects[index] = _respawn_object(base, generator, rng)
        camera = camera_transform(anim, frame, screen)
        if frame == 0:
            scenes.append(base_scene)
            continue
        primitives: list[Primitive] = []
        for index, base in enumerate(objects):
            if moving:
                drift = _object_transform(base, velocity[index],
                                          float(spins[index]), frame)
                staged = [drift.apply_primitive(prim) for prim in base]
            else:
                staged = base
            if camera is IDENTITY:
                # Static camera, no drift: share the base primitives so
                # dwell frames are bit-identical by construction.
                primitives.extend(staged)
            else:
                primitives.extend(camera.apply_primitive(prim)
                                  for prim in staged)
        scenes.append(Scene(screen, primitives, draws))

    traces = [TilingEngine(scene, order, pbuffer).trace()
              for scene in scenes]
    background = BackgroundTrafficModel(spec, screen, scale=scale)
    workload = Workload(spec=spec, screen=screen, scale=scale,
                        scenes=scenes, traces=traces, background=background)
    workload.anim = anim
    return workload
