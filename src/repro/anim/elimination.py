"""The Rendering Elimination model (early discard of redundant tiles).

Between the Polygon List Builder and the raster fetch phase sits a
small signature unit: it stores one 56-bit signature per tile
(:mod:`repro.anim.signatures`) and, at the start of each frame's fetch
phase, compares every tile's signature against the previous frame's.
A match means the tile's rasterizer inputs are unchanged, so the tile
is *discarded*: its PMD reads, attribute fetches, framebuffer writes
and background raster traffic never happen.  The build phase is never
elided — geometry and binning must run to produce the signatures in
the first place — which mirrors where the RE paper places the check
(after geometry, before raster).

Interaction with TCOR's OPT machinery: a discarded tile still reports
``tile_done`` to the tile-progress scoreboard, because the Parameter
Buffer frees its lists exactly as if it had rendered.  OPT numbers
computed at build time therefore remain a *valid* (if optimistic)
next-use order — a primitive whose next user is skipped is simply
fetched one tile later than predicted, which degrades OPT toward its
usual offline bound but never reorders evictions incorrectly.

The stats discipline matches the cache models: :class:`REStats` is the
dataclass the live engine mutates and the replay kernels reconstruct
from raw counters, with SIM301 proving the two footprints identical.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.anim.signatures import skip_mask

#: The registry conservation rule for satellite invariant checking:
#: every considered tile is either rendered or skipped, no third state.
RE_ACCOUNTING_RULE = (
    "RE tile conservation: rendered + skipped == considered",
    ("live.re.tiles_rendered", "live.re.tiles_skipped"),
    ("live.re.tiles_total",),
)


@dataclass
class REStats:
    """Counters of the Rendering Elimination signature unit."""

    signature_compares: int = 0
    tiles_total: int = 0
    tiles_skipped: int = 0
    tiles_rendered: int = 0

    @property
    def skip_fraction(self) -> float:
        if self.tiles_total == 0:
            return 0.0
        return self.tiles_skipped / self.tiles_total

    def as_dict(self) -> dict:
        data = asdict(self)
        data["skip_fraction"] = self.skip_fraction
        return data

    def register(self, registry, prefix: str) -> None:
        """Expose the counters as ``<prefix>.*`` metrics."""
        registry.register(prefix, self)


class RenderingElimination:
    """Per-sequence signature unit state.

    One instance spans all frames of a workload: it remembers the
    previous frame's signature table and produces the skip mask the
    simulator consults before generating any fetch-phase traffic.
    """

    def __init__(self) -> None:
        self.stats = REStats()
        self._previous: list[int] | None = None

    def begin_frame(self, signatures: list[int]) -> list[bool] | None:
        """Install a frame's signatures; return its skip mask.

        Frame 0 returns ``None`` (nothing to compare against — render
        everything).  Later frames charge one signature compare per
        tile, empty tiles included: the unit reads both tables in full
        before it knows which entries are empty.
        """
        previous = self._previous
        self._previous = signatures
        if previous is None:
            return None
        self.stats.signature_compares += len(signatures)
        return skip_mask(signatures, previous)

    def tile_done(self, skipped: bool) -> None:
        """Account one completed tile (rendered or discarded)."""
        self.stats.tiles_total += 1
        if skipped:
            self.stats.tiles_skipped += 1
        else:
            self.stats.tiles_rendered += 1
