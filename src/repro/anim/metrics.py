"""Registry namespaces of the animation subsystem.

The experiment family ``fig_re`` publishes its sweep under two new
namespaces:

- ``anim.<alias>.*`` — sequence shape (frames, churn percentage,
  primitive count), one gauge set per benchmark row;
- ``re.<alias>.c<churn>.*`` — Rendering Elimination outcomes at one
  churn setting (skip percentage, traffic and energy deltas vs RE
  off, attribute hit ratios for the OPT interaction).

The absolute names are minted here — and only here — so SIM302's
module allowlist covers the subsystem with a single prefix entry
(``repro.anim``) instead of waivers scattered over experiment code.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass
class EnergySplitStats:
    """One energy report's memory/compute split, as a registry source.

    A snapshot rather than a live counter set: energy is derived from
    finished simulation results, so the registry reads it at snapshot
    time like any other stats source and the conservation rule below
    can reference its fields by name.
    """

    memory_nj: float = 0.0
    compute_nj: float = 0.0
    total_nj: float = 0.0

    def as_dict(self) -> dict:
        return asdict(self)


def _component(text) -> str:
    """A metric-name path component (dots would split the namespace)."""
    return str(text).replace(".", "_")


def register_sequence_gauges(registry, alias: str, values: dict) -> None:
    """``anim.<alias>.<name>`` gauges describing one animated sequence."""
    base = f"anim.{_component(alias)}"
    for name, value in values.items():
        registry.gauge(f"{base}.{_component(name)}", float(value))


def register_re_gauges(registry, alias: str, churn_pct: int,
                       values: dict) -> None:
    """``re.<alias>.c<churn>.<name>`` gauges for one sweep cell."""
    base = f"re.{_component(alias)}.c{int(churn_pct):03d}"
    for name, value in values.items():
        registry.gauge(f"{base}.{_component(name)}", float(value))


def register_energy_gauges(registry, alias: str, churn_pct: int,
                           report) -> None:
    """``re.<alias>.c<churn>.energy.*`` metrics for one
    :class:`~repro.energy.EnergyReport`, plus the conservation rule.

    The rule is the satellite invariant of the energy split: the
    memory-hierarchy and compute sides must sum to the total, so a
    discarded tile that drops raster energy cannot silently drop (or
    double-count) anything else.  Exact equality is safe because the
    report's ``total_gpu_nj`` is minted by the same float addition the
    registry check performs.  Register one report per ``(alias,
    churn)`` cell: a second *distinct* report under the same prefix
    would sum in snapshots, and float addition does not reassociate.
    """
    base = f"re.{_component(alias)}.c{int(churn_pct):03d}.energy"
    split = EnergySplitStats()
    split.memory_nj = float(report.memory_hierarchy_nj)
    split.compute_nj = float(report.compute_nj)
    split.total_nj = float(report.total_gpu_nj)
    registry.register(base, split)
    registry.expect_sum(
        f"GPU energy conservation ({alias} @ churn {int(churn_pct)}%): "
        f"memory + compute == total",
        (f"{base}.memory_nj", f"{base}.compute_nj"),
        (f"{base}.total_nj",))
