"""Frame-rate model (the abstract's "3.7% increase in FPS").

A mobile GPU frame's wall time splits into compute work (shading,
raster, geometry — identical between the organizations) and memory
stall time that scales with DRAM traffic and, more weakly, with L2
traffic.  TCOR changes only the memory side, so::

    frame_time  = compute_cycles + stall_per_dram * DRAM + stall_per_l2 * L2
    fps_gain    = baseline_frame_time / tcor_frame_time - 1

The stall weights model the *unhidden* fraction of each access's
latency: GPUs overlap most memory latency with massive threading, so
only a small fraction of the 75-cycle DRAM trip stalls the pipeline.
The defaults put the suite-average memory-stall share of frame time
around one quarter, which lands the paper's ~14% DRAM-traffic saving at
the abstract's ~4% FPS gain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DEFAULT_GPU, GPUConfig
from repro.tcor.system import SystemResult
from repro.workloads.suite import Workload

# Unhidden stall cycles per access (latency x non-overlapped fraction).
_DRAM_STALL_CYCLES = 9.0
_L2_STALL_CYCLES = 0.6
# Compute cycles per pixel-instruction and per primitive (throughput of
# the shader cores and the fixed-function front end).
_CYCLES_PER_PIXEL_INSTRUCTION = 0.25
_CYCLES_PER_PRIMITIVE = 12.0


@dataclass(frozen=True)
class FrameTimeEstimate:
    """Cycle budget of one frame under one memory organization."""

    label: str
    alias: str
    compute_cycles: float
    memory_stall_cycles: float

    @property
    def total_cycles(self) -> float:
        return self.compute_cycles + self.memory_stall_cycles

    def fps(self, gpu: GPUConfig | None = None) -> float:
        gpu = gpu or DEFAULT_GPU
        return gpu.frequency_hz / self.total_cycles


def estimate_frame_time(result: SystemResult,
                        workload: Workload) -> FrameTimeEstimate:
    """Frame time from a traffic simulation's access counts."""
    spec = workload.spec
    pixels = (workload.screen.width * workload.screen.height
              * workload.scale)
    compute = (pixels * spec.shader_insts_per_pixel
               * _CYCLES_PER_PIXEL_INSTRUCTION
               + workload.num_primitives * _CYCLES_PER_PRIMITIVE)
    stall = (result.mm_accesses * _DRAM_STALL_CYCLES
             + result.l2_accesses * _L2_STALL_CYCLES)
    return FrameTimeEstimate(
        label=result.label, alias=result.alias,
        compute_cycles=compute, memory_stall_cycles=stall,
    )


def fps_gain(baseline: SystemResult, tcor: SystemResult,
             workload: Workload) -> float:
    """Fractional FPS increase of TCOR over the baseline (0.037 = 3.7%)."""
    base_time = estimate_frame_time(baseline, workload).total_cycles
    tcor_time = estimate_frame_time(tcor, workload).total_cycles
    return base_time / tcor_time - 1.0
