"""Timing models: the Tile Fetcher throughput experiment (Figures 23/24)."""

from repro.timing.tiling_timing import (
    ThroughputResult,
    tile_fetcher_throughput,
)
from repro.timing.fps import FrameTimeEstimate, estimate_frame_time, fps_gain
from repro.timing.parallel_renderers import (
    ParallelRenderingEstimate,
    estimate as estimate_parallel_renderers,
    sustainable_renderers,
)

__all__ = [
    "FrameTimeEstimate",
    "ParallelRenderingEstimate",
    "ThroughputResult",
    "estimate_frame_time",
    "estimate_parallel_renderers",
    "fps_gain",
    "sustainable_renderers",
    "tile_fetcher_throughput",
]
