"""Tile Fetcher throughput model (paper Section V-B.3, Figures 23/24).

The paper measures primitives output per cycle by the Tile Fetcher with
an *unlimited* output queue, so the Tiling Engine never stalls on the
Raster Pipeline.  We model the fetch phase with a simple in-order issue
pipeline:

- one PMD is consumed per cycle when its list block is resident; a
  Primitive List (or baseline Tile Cache) miss stalls issue for the L2
  (and, on an L2 miss, main-memory) latency;
- an attribute request that hits is ready the next cycle; a miss
  allocates MSHR entries (one per missing block) and is ready when its
  slowest block returns;
- a full MSHR file stalls issue until an entry retires;
- primitives are delivered to the Rasterizer in order, at most one per
  cycle (the paper's 1-primitive/cycle ceiling).

The binning phase is replayed untimed first, leaving the caches and the
shared L2 in the same state as the traffic simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.hierarchy import MemoryCounters, SharedL2
from repro.caches.line import LineMeta
from repro.caches.mshr import MSHRFile
from repro.caches.policies.lru import LRUPolicy
from repro.caches.set_assoc import SetAssociativeCache
from repro.config import DEFAULT_GPU, GPUConfig, TCORConfig
from repro.pbuffer.layout import (
    ContiguousPBListsLayout,
    InterleavedPBListsLayout,
)
from repro.tcor.attribute_cache import AttributeCache
from repro.tcor.baseline_tile_cache import BaselineTileCache
from repro.tcor.l2_policy import DeadLinePriorityPolicy, TcorSharedL2, TileProgress
from repro.tcor.primitive_list_cache import PrimitiveListCache
from repro.tiling.events import (
    AttributeRead,
    AttributeWrite,
    PmdRead,
    PmdWrite,
    TileDone,
)
from repro.workloads.suite import Workload


@dataclass(frozen=True)
class ThroughputResult:
    """Fetch-phase cycle accounting for one configuration."""

    label: str
    alias: str
    primitives_delivered: int
    cycles: int
    issue_stall_cycles: int
    mshr_peak: int

    @property
    def primitives_per_cycle(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.primitives_delivered / self.cycles


class _LatencyProbe:
    """Turns L1 lowering outcomes into request latencies.

    Fill reads go to the shared L2 (mutating it, like the traffic sim);
    writebacks are posted and cost no latency.
    """

    def __init__(self, shared: SharedL2, l2_latency: int,
                 memory_latency: int, dram=None) -> None:
        self.shared = shared
        self.l2_latency = l2_latency
        self.memory_latency = memory_latency
        self.dram = dram

    def block_latencies(self, requests) -> list[int]:
        """Latency of each fill read in an L1 request bundle."""
        latencies = []
        for request in requests:
            meta = LineMeta(region=request.region,
                            last_tile_rank=request.last_tile_rank)
            mem_reads, _ = self.shared.access(
                request.address, is_write=request.is_write, meta=meta)
            if request.is_write:
                continue  # posted writeback
            latency = self.l2_latency
            if mem_reads:
                if self.dram is not None:
                    # Row-buffer-aware latency (DRAMSim2 substitute).
                    latency += self.dram.access(request.address)
                else:
                    latency += self.memory_latency
            latencies.append(latency)
        return latencies


def _drain_mshr(mshr: MSHRFile, now: int) -> int:
    mshr.retire_ready(now)
    return now


def tile_fetcher_throughput(workload: Workload, system: str = "baseline",
                            gpu: GPUConfig | None = None,
                            tcor: TCORConfig | None = None,
                            total_tile_cache_bytes: int | None = None,
                            include_background: bool = True,
                            dram=None) -> ThroughputResult:
    """Primitives per cycle of the Tile Fetcher (one frame).

    ``system`` is ``"baseline"`` or ``"tcor"``.  Pass a
    :class:`~repro.dram.DRAMModel` as ``dram`` for row-buffer-aware
    memory latencies instead of the flat Table I average.
    """
    if system not in ("baseline", "tcor"):
        raise ValueError("system must be 'baseline' or 'tcor'")
    gpu = gpu or DEFAULT_GPU
    trace = workload.traces[0]
    pb = trace.pb
    l2_latency = gpu.l2_cache.latency_cycles
    memory_latency = gpu.memory.avg_latency_cycles
    progress = TileProgress()

    if system == "baseline":
        if total_tile_cache_bytes is not None:
            gpu = gpu.with_tile_cache_size(total_tile_cache_bytes)
        shared = SharedL2(SetAssociativeCache(
            gpu.l2_cache.num_sets, gpu.l2_cache.associativity,
            gpu.l2_cache.line_bytes, LRUPolicy(), name="l2"), MemoryCounters())
        layout = ContiguousPBListsLayout(workload.screen.num_tiles, pb.pbuffer)
        tile_cache = BaselineTileCache(gpu.tile_cache, layout, pb.attributes,
                                       pb.rank_of_tile)
        read_pmd = tile_cache.read_pmd
        write_pmd = tile_cache.write_pmd
        write_attrs = tile_cache.write_attributes
        read_attrs = tile_cache.read_attributes
    else:
        if tcor is None:
            tcor = (TCORConfig.for_total_size(total_tile_cache_bytes)
                    if total_tile_cache_bytes is not None else TCORConfig())
        policy = DeadLinePriorityPolicy(progress)
        shared = TcorSharedL2(SetAssociativeCache(
            gpu.l2_cache.num_sets, gpu.l2_cache.associativity,
            gpu.l2_cache.line_bytes, policy, name="l2"),
            progress, MemoryCounters())
        layout = InterleavedPBListsLayout(workload.screen.num_tiles,
                                          pb.pbuffer)
        pl_cache = PrimitiveListCache(tcor.primitive_list_cache, layout,
                                      pb.rank_of_tile)
        # Unlimited output queue: the Rasterizer never back-pressures, so
        # the in-flight lock window is effectively unbounded.
        attr_cache = AttributeCache(tcor, pb.attributes,
                                    inflight_window=1 << 20)
        read_pmd = pl_cache.read_pmd
        write_pmd = pl_cache.write_pmd

        def write_attrs(primitive_id):
            record = pb.records[primitive_id]
            return attr_cache.write(primitive_id, record.num_attributes,
                                    record.first_use_rank,
                                    record.last_use_rank).l2_requests

        read_attrs = None  # handled inline below (needs OPT numbers)

    probe = _LatencyProbe(shared, l2_latency, memory_latency, dram=dram)

    # ------------------------------------------------------------------
    # Untimed binning phase (warms caches exactly like the traffic sim).
    # ------------------------------------------------------------------
    for event in trace.build_events:
        if isinstance(event, PmdWrite):
            probe.block_latencies(write_pmd(event.tile_id, event.position))
        elif isinstance(event, AttributeWrite):
            probe.block_latencies(write_attrs(event.primitive_id))

    # ------------------------------------------------------------------
    # Timed fetch phase.
    # ------------------------------------------------------------------
    mshr = MSHRFile(gpu.tiling.mshr_entries)
    now = 0
    stall_cycles = 0
    delivered = 0
    last_delivery = 0

    for event in trace.fetch_events:
        if isinstance(event, TileDone):
            progress.tile_done(event.tile_rank)
            if include_background:
                for access in workload.background.tile_accesses(event.tile_id):
                    shared.access(access.address, is_write=access.is_write,
                                  meta=LineMeta(region=access.region))
            continue
        if isinstance(event, PmdRead):
            now += 1  # one PMD consumed per cycle
            latencies = probe.block_latencies(
                read_pmd(event.tile_id, event.position))
            if latencies:
                # The fetcher prefetches list blocks one block ahead, so a
                # block's fetch overlaps the 16 PMDs of the previous one;
                # only the excess stalls issue.
                stall = max(0, max(latencies) - pb.pbuffer.pmds_per_block // 2)
                now += stall
                stall_cycles += stall
            _drain_mshr(mshr, now)
            continue
        assert isinstance(event, AttributeRead)
        if system == "baseline":
            requests = read_attrs(event.primitive_id)
        else:
            requests = attr_cache.read(
                event.primitive_id, event.num_attributes,
                event.opt_number, event.last_use_rank,
            ).l2_requests
        latencies = probe.block_latencies(requests)
        if not latencies:
            ready = now + 1
        else:
            # Each missing block occupies an MSHR entry.
            ready = now
            for latency in latencies:
                while mshr.full:
                    earliest = mshr.earliest_ready()
                    assert earliest is not None
                    stall_cycles += max(0, earliest - now)
                    now = max(now, earliest)
                    mshr.retire_ready(now)
                mshr.allocate(_fresh_token(), now + latency)
                ready = max(ready, now + latency)
        delivered += 1
        last_delivery = max(ready, last_delivery + 1)
        _drain_mshr(mshr, now)

    cycles = max(last_delivery, now, 1)
    return ThroughputResult(
        label=system, alias=workload.spec.alias,
        primitives_delivered=delivered, cycles=cycles,
        issue_stall_cycles=stall_cycles, mshr_peak=mshr.peak_occupancy,
    )


_token_counter = 0


def _fresh_token() -> int:
    """Unique MSHR keys: timing treats each missing block independently."""
    global _token_counter
    _token_counter += 1
    return _token_counter
