"""Parallel Renderers — the paper's future-work extension.

The conclusion argues TCOR's faster Tiling Engine "opens the door to
more aggressive Raster Pipeline implementations, including the use of
Parallel Renderers".  This model quantifies the claim: N renderers
consume tiles concurrently (TBR tiles are disjoint, the original
motivation for the architecture), each demanding primitives at some
rate; the Tiling Engine feeds them at its measured primitives-per-cycle.

The question the model answers: *how many renderers can each Tiling
Engine sustain before it becomes the bottleneck?*
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.timing.tiling_timing import ThroughputResult

# A renderer consumes primitives as fast as it shades their fragments;
# with ~200 fragments/primitive and ~4 pixels/cycle of shading throughput
# a single renderer draws roughly one primitive every 50 cycles.
DEFAULT_RENDERER_DEMAND_PPC = 0.02


@dataclass(frozen=True)
class ParallelRenderingEstimate:
    """Feeding N renderers from one Tiling Engine."""

    tiling_ppc: float
    renderer_demand_ppc: float
    num_renderers: int

    @property
    def demand_ppc(self) -> float:
        return self.renderer_demand_ppc * self.num_renderers

    @property
    def renderer_utilization(self) -> float:
        """Fraction of renderer capacity the Tiling Engine can feed."""
        if self.demand_ppc == 0:
            return 1.0
        return min(1.0, self.tiling_ppc / self.demand_ppc)

    @property
    def tiling_bound(self) -> bool:
        return self.renderer_utilization < 1.0

    @property
    def frame_speedup_vs_one_renderer(self) -> float:
        """Throughput gain over a single renderer, respecting the feed."""
        effective = min(self.demand_ppc, self.tiling_ppc)
        single = min(self.renderer_demand_ppc, self.tiling_ppc)
        return effective / single if single else 0.0


def sustainable_renderers(tiling: ThroughputResult,
                          renderer_demand_ppc: float
                          = DEFAULT_RENDERER_DEMAND_PPC) -> int:
    """Largest N the measured Tiling Engine keeps fully busy."""
    if renderer_demand_ppc <= 0:
        raise ValueError("renderer demand must be positive")
    return max(1, int(tiling.primitives_per_cycle / renderer_demand_ppc))


def estimate(tiling: ThroughputResult, num_renderers: int,
             renderer_demand_ppc: float = DEFAULT_RENDERER_DEMAND_PPC
             ) -> ParallelRenderingEstimate:
    if num_renderers <= 0:
        raise ValueError("need at least one renderer")
    return ParallelRenderingEstimate(
        tiling_ppc=tiling.primitives_per_cycle,
        renderer_demand_ppc=renderer_demand_ppc,
        num_renderers=num_renderers,
    )
