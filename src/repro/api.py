"""Public facade: the one import downstream code needs.

Two entry points cover the library's use cases:

- :func:`simulate` — run one workload through one memory organization
  and get a :class:`RunResult` (the :class:`SystemResult` plus a
  metrics snapshot and its conservation-invariant check);
- :func:`run_experiment` — regenerate one of the paper's tables or
  figures and get a :class:`Report`.

Inputs are frozen dataclasses (:class:`SimulationConfig`), so a config
can be shared, hashed and reused across runs without defensive copies.

    from repro.api import SimulationConfig, simulate
    from repro.workloads import BENCHMARKS, build_workload

    workload = build_workload(BENCHMARKS["CCS"], scale=0.25)
    base = simulate(workload, SimulationConfig(kind="baseline"))
    tcor = simulate(workload, SimulationConfig(kind="tcor"))
    print(tcor.result.pb_l2_accesses / base.result.pb_l2_accesses)

Heavy modules (the simulator, the experiment driver) import lazily
inside the functions, keeping ``import repro`` fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.config import GPUConfig, TCORConfig
from repro.obs.registry import MetricsRegistry, Observation

if TYPE_CHECKING:
    from repro.experiments.common import ExperimentResult, SimulationProvider
    from repro.tcor.system import SystemResult
    from repro.workloads.suite import Workload

__all__ = [
    "Report",
    "RunResult",
    "SimulationConfig",
    "connect",
    "run_experiment",
    "simulate",
    "simulation_cache",
]

_KINDS = ("baseline", "tcor")


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Frozen description of one simulation to run.

    ``kind`` selects the memory organization (``"baseline"`` or
    ``"tcor"``); every other field has the simulator's default and only
    applies where it makes sense (``l2_enhancements``, ``tcor`` and
    ``interleaved_lists`` are TCOR-only; ``tile_cache_bytes`` is the
    unified budget for the baseline and the total split budget for
    TCOR).
    """

    kind: str = "tcor"
    tile_cache_bytes: int | None = None
    l2_enhancements: bool = True
    interleaved_lists: bool = True
    include_background: bool = True
    # Rendering Elimination (repro.anim): discard fetch-phase work for
    # tiles whose input signature matches the previous frame.  Only
    # meaningful on multi-frame workloads; a single frame never skips.
    rendering_elimination: bool = False
    tcor: TCORConfig | None = None
    gpu: GPUConfig | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"kind must be one of {_KINDS}, got {self.kind!r}")


@dataclass(frozen=True, slots=True)
class RunResult:
    """One finished simulation.

    ``result`` is the raw :class:`SystemResult`; ``metrics`` is the
    flat ``{dotted.name: number}`` registry snapshot taken right after
    the run; ``invariant_failures`` lists any conservation invariants
    the snapshot violated (empty on a healthy run).
    """

    result: "SystemResult"
    config: SimulationConfig
    metrics: Mapping[str, float] = field(default_factory=dict)
    invariant_failures: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.invariant_failures


@dataclass(frozen=True, slots=True)
class Report:
    """One experiment's regenerated tables plus the run's metrics."""

    name: str
    scale: float
    tables: tuple["ExperimentResult", ...]
    metrics: Mapping[str, float] = field(default_factory=dict)

    def table(self, exp_id: str) -> "ExperimentResult":
        for result in self.tables:
            if result.exp_id == exp_id:
                return result
        raise KeyError(exp_id)

    def __str__(self) -> str:
        from repro.experiments.common import format_table

        return "\n\n".join(format_table(result) for result in self.tables)


_ENGINES = ("auto", "live", "replay")


def simulate(workload: "Workload",
             config: SimulationConfig | None = None,
             *, obs: Observation | None = None,
             engine: str = "auto") -> RunResult:
    """Run ``workload`` through the organization ``config`` describes.

    ``obs`` threads a caller-owned :class:`Observation` through the run
    (to share a registry across several simulations, or to attach a
    tracer); by default each call gets a fresh one, so ``metrics`` and
    ``invariant_failures`` cover exactly this run.

    ``engine`` selects the execution path: ``"auto"`` (the default)
    replays the workload's compiled access trace through the fast
    kernels when the run is eligible — bit-identical results and
    metrics, order-of-magnitude faster — and falls back to the live
    simulator when it is not (a tracer is attached, ``REPRO_NO_REPLAY``
    is set, or the configuration steps outside the kernels' model);
    ``"live"`` forces the reference simulator; ``"replay"`` forces the
    kernels and raises :class:`~repro.replay.ReplayUnsupportedError`
    when they cannot honor the run.
    """
    from repro.tcor.system import simulate_baseline, simulate_tcor

    if engine not in _ENGINES:
        raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
    config = config if config is not None else SimulationConfig()
    if obs is None:
        obs = Observation(MetricsRegistry())
    result = None
    if engine != "live":
        from repro.replay import try_replay

        result = try_replay(workload, config, obs,
                            require=(engine == "replay"))
    if result is None:
        if config.kind == "baseline":
            result = simulate_baseline(
                workload, gpu=config.gpu,
                tile_cache_bytes=config.tile_cache_bytes,
                include_background=config.include_background,
                rendering_elimination=config.rendering_elimination, obs=obs)
        else:
            result = simulate_tcor(
                workload, gpu=config.gpu, tcor=config.tcor,
                total_tile_cache_bytes=config.tile_cache_bytes,
                l2_enhancements=config.l2_enhancements,
                interleaved_lists=config.interleaved_lists,
                include_background=config.include_background,
                rendering_elimination=config.rendering_elimination, obs=obs)
    return RunResult(result=result, config=config,
                     metrics=obs.snapshot(),
                     invariant_failures=tuple(obs.registry.check_invariants()))


def simulation_cache(scale: float, *,
                     aliases: tuple[str, ...] | None = None,
                     jobs: int = 1,
                     disk: bool = True) -> "SimulationProvider":
    """A memoizing simulation provider for experiment/benchmark runs.

    ``jobs > 1`` returns the process-pool fan-out provider; ``disk``
    keeps the persistent result store enabled (``$REPRO_CACHE_DIR`` or
    ``.repro-cache/``).
    """
    from repro.parallel import DiskCache, ParallelSimulationCache

    store = DiskCache() if disk else None
    return ParallelSimulationCache(scale=scale, aliases=aliases,
                                   jobs=jobs, disk=store)


def connect(endpoints, *, scale: float = 1.0,
            aliases: tuple[str, ...] | None = None,
            timeout_s: float = 600.0) -> "SimulationProvider":
    """A remote simulation provider over a running ``tcor-serve``
    worker or cluster router.

    ``endpoints`` is one ``"host:port"`` string, a ``(host, port)``
    pair, or a list of either for client-side failover.  The returned
    :class:`~repro.serve.handle.ServeHandle` is a drop-in for
    :func:`simulation_cache` — same provider contract, byte-identical
    results — with the simulations executed (and coalesced, cached and
    sharded) by the service.
    """
    from repro.serve.handle import connect as serve_connect

    return serve_connect(endpoints, scale=scale, aliases=aliases,
                         timeout_s=timeout_s)


def run_experiment(name: str, *, scale: float = 1.0, jobs: int = 1,
                   benchmarks: tuple[str, ...] | None = None,
                   cache: "SimulationProvider | None" = None,
                   disk: bool = False) -> Report:
    """Regenerate one of the paper's tables/figures as a :class:`Report`.

    ``name`` is an experiment id (``"fig14"``, ``"tables"``, ... — the
    same ids ``tcor-experiments`` accepts, including paired-figure
    aliases like ``"fig15"``).  ``jobs`` fans the simulations out over
    worker processes; ``cache`` reuses a provider across calls (e.g.
    from :func:`simulation_cache`); ``disk`` enables the persistent
    result store when no provider is passed.
    """
    from repro.experiments import driver

    store = None
    if cache is None and disk:
        from repro.parallel import DiskCache

        store = DiskCache()
    registry = MetricsRegistry()
    results = driver.run_experiments([name], scale=scale,
                                     aliases=benchmarks, jobs=jobs,
                                     disk=store, cache=cache,
                                     registry=registry)
    return Report(name=name, scale=scale, tables=tuple(results),
                  metrics=registry.snapshot())
