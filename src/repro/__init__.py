"""TCOR: A Tile Cache with Optimal Replacement — reproduction library.

A full-system model of the paper's Tile-Based-Rendering GPU memory
hierarchy: geometry binning, the Parameter Buffer, a pluggable cache
simulator, the TCOR Attribute Cache with hardware OPT replacement, the
dead-line-aware L2, and the energy/timing models behind every figure in
the paper's evaluation.

Quickstart::

    from repro.workloads import BENCHMARKS, build_workload
    from repro.tcor.system import simulate_baseline, simulate_tcor

    workload = build_workload(BENCHMARKS["CCS"], scale=0.25)
    base = simulate_baseline(workload)
    tcor = simulate_tcor(workload)
    print(tcor.pb_l2_accesses / base.pb_l2_accesses)
"""

from repro.config import (
    DEFAULT_GPU,
    DEFAULT_TCOR,
    CacheConfig,
    GPUConfig,
    MemoryConfig,
    ParameterBufferConfig,
    ScreenConfig,
    TCORConfig,
    TilingEngineConfig,
)

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "DEFAULT_GPU",
    "DEFAULT_TCOR",
    "GPUConfig",
    "MemoryConfig",
    "ParameterBufferConfig",
    "ScreenConfig",
    "TCORConfig",
    "TilingEngineConfig",
    "__version__",
]
