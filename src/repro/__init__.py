"""TCOR: A Tile Cache with Optimal Replacement — reproduction library.

A full-system model of the paper's Tile-Based-Rendering GPU memory
hierarchy: geometry binning, the Parameter Buffer, a pluggable cache
simulator, the TCOR Attribute Cache with hardware OPT replacement, the
dead-line-aware L2, and the energy/timing models behind every figure in
the paper's evaluation.

Quickstart (the :mod:`repro.api` facade is the supported surface)::

    import repro
    from repro.workloads import BENCHMARKS, build_workload

    workload = build_workload(BENCHMARKS["CCS"], scale=0.25)
    base = repro.simulate(workload, repro.SimulationConfig(kind="baseline"))
    tcor = repro.simulate(workload)
    print(tcor.result.pb_l2_accesses / base.result.pb_l2_accesses)
"""

from repro.api import (
    Report,
    RunResult,
    SimulationConfig,
    run_experiment,
    simulate,
    simulation_cache,
)
from repro.config import (
    DEFAULT_GPU,
    DEFAULT_TCOR,
    CacheConfig,
    GPUConfig,
    MemoryConfig,
    ParameterBufferConfig,
    ScreenConfig,
    TCORConfig,
    TilingEngineConfig,
)

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "DEFAULT_GPU",
    "DEFAULT_TCOR",
    "GPUConfig",
    "MemoryConfig",
    "ParameterBufferConfig",
    "Report",
    "RunResult",
    "ScreenConfig",
    "SimulationConfig",
    "TCORConfig",
    "TilingEngineConfig",
    "__version__",
    "run_experiment",
    "simulate",
    "simulation_cache",
]
