"""Metrics drift detection (the ``tcor-metrics diff`` gate's core).

Compares two flat metric snapshots and reports every counter whose
value moved, plus names present on only one side.  Simulation counters
are deterministic, so the default tolerance is exact; a relative
tolerance admits timing-derived metrics (benchmark means) whose noise
is expected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Drift:
    """One metric whose value differs between baseline and current."""

    name: str
    baseline: float
    current: float

    @property
    def delta(self) -> float:
        return self.current - self.baseline

    @property
    def relative(self) -> float:
        if self.baseline == 0:
            return math.inf if self.current else 0.0
        return self.delta / self.baseline

    def describe(self) -> str:
        rel = self.relative
        rel_text = "new" if math.isinf(rel) else f"{rel:+.4%}"
        return (f"{self.name}: {self.baseline!r} -> {self.current!r} "
                f"({rel_text})")


@dataclass(frozen=True)
class DiffReport:
    """Outcome of one snapshot comparison."""

    drifts: tuple[Drift, ...]
    missing: tuple[str, ...]   # in baseline, absent from current
    added: tuple[str, ...]     # in current, absent from baseline
    compared: int

    @property
    def clean(self) -> bool:
        return not self.drifts and not self.missing

    def describe(self) -> str:
        lines = []
        for drift in self.drifts:
            lines.append("drift    " + drift.describe())
        for name in self.missing:
            lines.append(f"missing  {name} (present in baseline only)")
        for name in self.added:
            lines.append(f"added    {name} (present in current only)")
        verdict = "CLEAN" if self.clean else "DRIFT"
        lines.append(f"{verdict}: {self.compared} metrics compared, "
                     f"{len(self.drifts)} drifted, {len(self.missing)} "
                     f"missing, {len(self.added)} added")
        return "\n".join(lines)


def _matches(baseline: float, current: float, rel_tol: float) -> bool:
    # Integer counters are deterministic simulation facts: they compare
    # exactly at ANY tolerance, so a --rel-tol meant for timing-derived
    # floats can never mask a +-1 counter drift.
    if isinstance(baseline, int) and isinstance(current, int):
        return baseline == current
    return math.isclose(baseline, current, rel_tol=rel_tol, abs_tol=0.0)


def diff_metrics(baseline: dict, current: dict, rel_tol: float = 0.0,
                 prefix: str = "") -> DiffReport:
    """Compare ``current`` against ``baseline``.

    ``prefix`` restricts the comparison to one namespace (e.g.
    ``sim.``), which is how a simulation dump is gated against a
    benchmark artifact that also carries timing metrics.  Added names
    are reported but do not make the diff unclean: new counters are how
    the codebase grows, vanished or moved counters are regressions.
    """
    if prefix:
        baseline = {k: v for k, v in baseline.items()
                    if k.startswith(prefix)}
        current = {k: v for k, v in current.items() if k.startswith(prefix)}
    drifts = []
    compared = 0
    for name in sorted(baseline.keys() & current.keys()):
        compared += 1
        if not _matches(baseline[name], current[name], rel_tol):
            drifts.append(Drift(name=name, baseline=baseline[name],
                                current=current[name]))
    missing = tuple(sorted(baseline.keys() - current.keys()))
    added = tuple(sorted(current.keys() - baseline.keys()))
    return DiffReport(drifts=tuple(drifts), missing=missing, added=added,
                      compared=compared)
