"""Typed trace events (the observability layer's wire schema).

Every hook point in the simulator emits one of these records; sinks
serialize them to JSONL (``{"type": ..., **fields}``) and the loader
reconstructs the identical dataclass, so a trace replayed through
:class:`~repro.obs.trace.TileSummarySink` reproduces the live summary
exactly.

This module must stay import-light: the hot-path modules
(``repro.caches.set_assoc``, ``repro.caches.hierarchy``,
``repro.dram.model``, ``repro.tcor.attribute_cache``) import it, so it
may not import any simulator module back.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields


@dataclass(frozen=True, slots=True)
class TraceHeader:
    """Opens one simulation's event stream (workload + screen geometry).

    ``tiles_x``/``tiles_y`` let the per-tile exporters fold tile IDs
    back onto the screen grid for heatmaps.
    """

    label: str
    alias: str
    scale: float
    tiles_x: int
    tiles_y: int


@dataclass(frozen=True, slots=True)
class CacheAccess:
    """One access to a set-associative cache (hit, miss or bypass)."""

    cache: str
    tile: int | None
    is_write: bool
    hit: bool
    bypassed: bool
    tag: int
    set_index: int
    region: int | None
    opt_number: int | None


@dataclass(frozen=True, slots=True)
class Eviction:
    """A line displaced from a set-associative cache (or flushed)."""

    cache: str
    tile: int | None
    tag: int
    dirty: bool
    region: int | None
    last_tile_rank: int | None


@dataclass(frozen=True, slots=True)
class OptDecision:
    """One Attribute Cache decision (paper Sections III-C.3/III-C.4).

    ``op`` is one of ``read_hit``, ``read_miss``, ``write_insert``,
    ``write_bypass``, ``evict`` or ``forced_unlock``; ``opt_number`` is
    the OPT Number the decision was made against (the victim's for
    ``evict``, the request's otherwise).
    """

    cache: str
    tile: int | None
    op: str
    primitive_id: int
    opt_number: int | None
    dirty: bool = False


@dataclass(frozen=True, slots=True)
class DeadLineDrop:
    """The dead-line L2 dropped a dead Parameter Buffer line.

    ``dirty`` lines are the interesting ones: their writeback to main
    memory was suppressed (paper Section III-D.2).
    """

    cache: str
    tile: int | None
    tag: int
    dirty: bool
    region: int | None


@dataclass(frozen=True, slots=True)
class TileMark:
    """The Tile Fetcher finished a tile (the L2 tile-progress signal)."""

    tile_id: int
    rank: int


@dataclass(frozen=True, slots=True)
class MemoryTraffic:
    """One main-memory access recorded by the shared-L2 accounting."""

    tile: int | None
    is_write: bool
    region: int | None


@dataclass(frozen=True, slots=True)
class DramAccess:
    """One DRAM command through the row-buffer model.

    ``outcome`` is ``hit``, ``empty`` or ``conflict``.
    """

    tile: int | None
    is_write: bool
    bank: int
    row: int
    outcome: str


@dataclass(frozen=True, slots=True)
class ServeDecision:
    """One scheduling decision made by the simulation service.

    ``op`` names the decision (``submit``, ``enqueue``, ``coalesce``,
    ``memo_hit``, ``disk_hit``, ``reject``, ``dispatch``, ``complete``,
    ``fail``, ``retry``, ``timeout``, ``recycle``, ``drain``); ``key``
    is the deterministic request key the decision concerns (``None``
    for pool-wide decisions); ``lane`` is how the job is being served
    (``pool``, ``disk`` or ``memo``); ``jobs`` counts the jobs a
    batch-level decision covers.
    """

    op: str
    key: str | None = None
    lane: str | None = None
    jobs: int = 0


@dataclass(frozen=True, slots=True)
class ClusterDecision:
    """One routing decision made by the cluster front-end router.

    ``op`` names the decision (``submit``, ``coalesce``, ``memo_hit``,
    ``tier_hit``, ``forward``, ``complete``, ``fail``, ``retry``,
    ``requeue``, ``reject``, ``backend_down``, ``backend_up``,
    ``version_mismatch``, ``drain``); ``key`` is the deterministic
    request key concerned; ``shard`` names the backend shard involved
    (``None`` for cluster-wide decisions); ``lane`` is how the job was
    ultimately served (``memory``, ``disk``, or the backend's own
    lane); ``jobs`` counts the jobs a shard-level decision covers
    (e.g. the in-flight jobs requeued when a backend is lost).
    """

    op: str
    key: str | None = None
    shard: str | None = None
    lane: str | None = None
    jobs: int = 0


TraceEvent = (TraceHeader | CacheAccess | Eviction | OptDecision
              | DeadLineDrop | TileMark | MemoryTraffic | DramAccess
              | ServeDecision | ClusterDecision)

_EVENT_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (TraceHeader, CacheAccess, Eviction, OptDecision,
                DeadLineDrop, TileMark, MemoryTraffic, DramAccess,
                ServeDecision, ClusterDecision)
}


def to_record(event: TraceEvent) -> dict:
    """JSON-serializable dict with a ``type`` discriminator."""
    record = asdict(event)
    record["type"] = type(event).__name__
    return record


def from_record(record: dict) -> TraceEvent:
    """Inverse of :func:`to_record`; unknown keys are dropped so old
    traces stay loadable when an event type grows a field."""
    cls = _EVENT_TYPES[record["type"]]
    names = {f.name for f in fields(cls)}
    return cls(**{key: value for key, value in record.items()
                  if key in names})
