"""Observability layer: metrics registry, event tracing, exporters.

The three pieces compose:

- :class:`MetricsRegistry` — one hierarchical namespace the simulator's
  ``*Stats`` objects register into (:class:`StatsLike`), with the
  conservation invariants attached;
- :class:`Tracer` + :func:`activation` — the optional structured event
  trace (off by default; the simulator's hook points are no-ops while
  ``repro.obs.trace.ACTIVE`` is ``None``);
- exporters and :func:`diff_metrics` — JSON dumps, Prometheus text,
  per-tile heatmaps, and the ``tcor-metrics diff`` regression gate.

:class:`Observation` bundles a registry and tracer into the single
handle ``simulate_baseline`` / ``simulate_tcor`` accept.
"""

from repro.obs.diff import DiffReport, Drift, diff_metrics
from repro.obs.events import (
    CacheAccess,
    ClusterDecision,
    DeadLineDrop,
    DramAccess,
    Eviction,
    MemoryTraffic,
    OptDecision,
    ServeDecision,
    TileMark,
    TraceEvent,
    TraceHeader,
    from_record,
    to_record,
)
from repro.obs.exporters import (
    load_metrics,
    metrics_document,
    parse_prometheus_text,
    prometheus_text,
    tile_heatmap,
    write_metrics,
)
from repro.obs.registry import (
    Histogram,
    MetricsInvariantError,
    MetricsRegistry,
    Observation,
    StatsLike,
    flatten,
)
from repro.obs.trace import (
    JsonlSink,
    Sink,
    TileSummarySink,
    Tracer,
    activation,
    read_trace,
    summarize_trace,
)

__all__ = [
    "CacheAccess",
    "ClusterDecision",
    "DeadLineDrop",
    "DiffReport",
    "DramAccess",
    "Drift",
    "Eviction",
    "Histogram",
    "JsonlSink",
    "MemoryTraffic",
    "MetricsInvariantError",
    "MetricsRegistry",
    "Observation",
    "OptDecision",
    "ServeDecision",
    "Sink",
    "StatsLike",
    "TileMark",
    "TileSummarySink",
    "TraceEvent",
    "TraceHeader",
    "Tracer",
    "activation",
    "diff_metrics",
    "flatten",
    "from_record",
    "load_metrics",
    "metrics_document",
    "parse_prometheus_text",
    "prometheus_text",
    "read_trace",
    "summarize_trace",
    "tile_heatmap",
    "to_record",
    "write_metrics",
]
