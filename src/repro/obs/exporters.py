"""Metrics exporters: JSON dumps, Prometheus-style text, tile heatmaps.

Three output shapes for one snapshot:

- :func:`write_metrics` / :func:`load_metrics` — the canonical JSON
  dump (``{"format": "tcor-metrics", "metrics": {...}}``) that the
  ``tcor-metrics diff`` regression gate consumes.  The loader also
  understands pytest-benchmark JSON (``BENCH_*.json``), flattening its
  per-benchmark stats to ``bench.<name>.<stat>`` so a dump can be
  diffed against a committed benchmark artifact.
- :func:`prometheus_text` / :func:`parse_prometheus_text` — exposition
  format, one ``tcor_metric{name="..."} value`` sample per counter.
  The dotted name travels in a label so the round-trip is exact.
- :func:`tile_heatmap` — per-tile counters from a
  :class:`~repro.obs.trace.TileSummarySink` folded onto the screen's
  tile grid via :func:`repro.analysis.ascii_plot.ascii_heatmap`.
"""

from __future__ import annotations

import json
import re

METRICS_FORMAT = "tcor-metrics"
METRICS_VERSION = 1


def metrics_document(metrics: dict, meta: dict | None = None) -> dict:
    return {
        "format": METRICS_FORMAT,
        "version": METRICS_VERSION,
        "meta": dict(meta or {}),
        "metrics": {name: metrics[name] for name in sorted(metrics)},
    }


def write_metrics(path: str, metrics: dict,
                  meta: dict | None = None) -> None:
    """Write one snapshot as the canonical sorted JSON dump."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(metrics_document(metrics, meta), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")


def _flatten_benchmark_json(document: dict) -> dict:
    """pytest-benchmark JSON -> ``bench.<name>.<stat>`` leaves."""
    flat: dict = {}
    for bench in document.get("benchmarks", []):
        name = bench.get("name", "unnamed")
        for stat, value in bench.get("stats", {}).items():
            if isinstance(value, (int, float)):
                flat[f"bench.{name}.{stat}"] = value
    return flat


def load_metrics(path: str) -> dict:
    """Flat ``{name: number}`` from any supported dump format."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: not a metrics document")
    if document.get("format") == METRICS_FORMAT:
        return dict(document["metrics"])
    if "benchmarks" in document:
        return _flatten_benchmark_json(document)
    # Bare flat dict (hand-written baselines).
    flat = {name: value for name, value in document.items()
            if isinstance(value, (int, float))}
    if not flat:
        raise ValueError(f"{path}: no numeric metrics found")
    return flat


_SAMPLE_RE = re.compile(
    r'^tcor_metric\{name="(?P<name>[^"]+)"\} (?P<value>\S+)$')


def prometheus_text(metrics: dict) -> str:
    """Prometheus exposition text, one sample per counter.

    The dotted metric name is carried in the ``name`` label (labels
    admit the full character set, metric names do not), which keeps
    :func:`parse_prometheus_text` an exact inverse.
    """
    lines = [
        "# HELP tcor_metric TCOR simulator counter",
        "# TYPE tcor_metric untyped",
    ]
    for name in sorted(metrics):
        value = metrics[name]
        rendered = repr(value) if isinstance(value, float) else str(value)
        lines.append(f'tcor_metric{{name="{name}"}} {rendered}')
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict:
    """Inverse of :func:`prometheus_text`."""
    metrics: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable sample line: {line!r}")
        raw = match.group("value")
        value = float(raw)
        if value.is_integer() and "." not in raw and "e" not in raw.lower():
            value = int(raw)
        metrics[match.group("name")] = value
    return metrics


def tile_heatmap(summary_sink, cache: str, counter: str = "accesses",
                 tiles_x: int | None = None,
                 tiles_y: int | None = None) -> str:
    """ASCII heatmap of one cache's per-tile counter on the tile grid.

    Grid geometry comes from the trace header when present; pass
    ``tiles_x``/``tiles_y`` for headerless traces.
    """
    header = summary_sink.header
    if header is not None:
        tiles_x = tiles_x or header.tiles_x
        tiles_y = tiles_y or header.tiles_y
    if not tiles_x or not tiles_y:
        raise ValueError("trace has no header; pass tiles_x/tiles_y")
    from repro.analysis.ascii_plot import ascii_heatmap

    values = {
        tile: cell[counter]
        for tile, cell in summary_sink.summary().get(cache, {}).items()
        if tile is not None
    }
    title = f"{cache}.{counter} per tile"
    if header is not None:
        title += f" [{header.alias} @ scale {header.scale:g}]"
    return ascii_heatmap(values, tiles_x, tiles_y, title=title)
