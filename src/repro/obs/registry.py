"""Metrics registry: one hierarchical namespace over every counter.

The simulator's five ``*Stats`` classes each keep their own counters
(one owner per counter — no double counting); the registry does not
copy them, it *registers* the live objects and reads them out through
the shared :class:`StatsLike` protocol at snapshot time.  A snapshot is
a flat ``{dotted.name: number}`` dict:

    live.l2.read_misses                  (registered CacheStats)
    live.l2.by_region.pb_lists.reads     (region split, by enum name)
    live.attribute_cache.read_hits       (registered AttributeCacheStats)
    live.system.pb_l2_reads              (explicit counter)

Registering the *same* object under the same prefix twice is a no-op;
registering a *different* object under the same prefix accumulates
(successive per-frame cache instances sum into one series).

The registry also carries the conservation invariants the integration
tests assert: structural ones every cache-like source must satisfy
(``accesses == reads + writes`` ...) plus cross-structure sum rules
added with :meth:`MetricsRegistry.expect_sum`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Protocol, runtime_checkable


@runtime_checkable
class StatsLike(Protocol):
    """What the registry needs from a stats object.

    Every ``*Stats`` class in the simulator implements this pair:
    ``as_dict`` surfaces all counters (and derived ratios), and
    ``register`` hands the live object to a registry under a prefix.
    """

    def as_dict(self) -> dict: ...

    def register(self, registry: "MetricsRegistry", prefix: str) -> None: ...


class MetricsInvariantError(AssertionError):
    """A conservation invariant does not hold over the registry."""


def _metric_key(part) -> str:
    """Stable dotted-name component for a dict key (Region enums render
    by name, everything else by ``str``)."""
    name = getattr(part, "name", None)
    if isinstance(name, str):
        return name.lower()
    return str(part)


def flatten(mapping: dict, prefix: str = "") -> dict:
    """Recursively flatten nested dicts to dotted numeric leaves.

    Non-numeric leaves (labels, paths) are dropped: metrics are numbers.
    Booleans count as numbers (0/1) so flag-style gauges survive.
    """
    flat: dict = {}
    for key, value in mapping.items():
        name = f"{prefix}.{_metric_key(key)}" if prefix else _metric_key(key)
        if isinstance(value, dict):
            flat.update(flatten(value, name))
        elif isinstance(value, (int, float)):
            flat[name] = value
    return flat


# Structural invariants every cache-like source must satisfy, expressed
# over one source's flattened counter dict: (description, lhs counter,
# rhs counters whose sum must equal it).  A rule only applies when all
# of its counters exist in the source.
_STRUCTURAL_RULES = (
    ("accesses == reads + writes", "accesses", ("reads", "writes"), ()),
    ("misses == read_misses + write_misses",
     "misses", ("read_misses", "write_misses"), ()),
    ("hits == accesses - misses", "hits", ("accesses",), ("misses",)),
    ("read_hits == reads - read_misses",
     "read_hits", ("reads",), ("read_misses",)),
)


class Histogram:
    """Fixed-bucket counting histogram (cumulative, Prometheus-style).

    ``bounds`` are the inclusive upper bucket edges; one implicit
    ``+Inf`` bucket catches the rest.  Snapshots flatten to
    ``<name>.count``, ``<name>.sum`` and ``<name>.bucket.le_<edge>``.
    """

    def __init__(self, bounds: Iterable[float]) -> None:
        self.bounds = tuple(sorted(bounds))
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def as_dict(self) -> dict:
        summary: dict = {"count": self.count, "sum": self.sum}
        cumulative = 0
        buckets: dict = {}
        for edge, bucket in zip(self.bounds, self.bucket_counts):
            cumulative += bucket
            buckets[f"le_{edge:g}"] = cumulative
        buckets["le_inf"] = self.count
        summary["bucket"] = buckets
        return summary

    def register(self, registry: "MetricsRegistry", prefix: str) -> None:
        registry.register(prefix, self)


class MetricsRegistry:
    """Named, hierarchical counters/gauges/histograms.

    Three kinds of entries share the dotted namespace:

    - **registered sources** (live ``StatsLike`` objects, read at
      snapshot time — the one source of truth for simulator counters);
    - **counters** (monotonic, owned by the registry, via :meth:`count`);
    - **gauges** (last-write-wins, via :meth:`gauge`).
    """

    def __init__(self) -> None:
        self._sources: dict[str, list] = {}
        self._source_ids: set[tuple[str, int]] = set()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._sum_rules: list[tuple[str, tuple, tuple]] = []

    # -- population ----------------------------------------------------
    def register(self, prefix: str, source) -> None:
        """Attach a live stats object under ``prefix`` (idempotent per
        object; distinct objects under one prefix sum in snapshots)."""
        key = (prefix, id(source))
        if key in self._source_ids:
            return
        self._source_ids.add(key)
        self._sources.setdefault(prefix, []).append(source)

    def count(self, name: str, delta: float = 1) -> None:
        """Increment a registry-owned monotonic counter."""
        self._counters[name] = self._counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time value (last write wins)."""
        self._gauges[name] = value

    def histogram(self, name: str,
                  bounds: Iterable[float]) -> Histogram:
        """Get-or-create a histogram owned by the registry."""
        existing = self._histograms.get(name)
        if existing is None:
            existing = self._histograms[name] = Histogram(bounds)
        return existing

    # -- reading -------------------------------------------------------
    def snapshot(self) -> dict:
        """Flat ``{dotted.name: number}`` over everything registered."""
        flat: dict = {}
        for prefix, sources in self._sources.items():
            for source in sources:
                for name, value in flatten(source.as_dict(), prefix).items():
                    flat[name] = flat.get(name, 0) + value
        for name, histogram in self._histograms.items():
            flat.update(flatten(histogram.as_dict(), name))
        flat.update(self._counters)
        flat.update(self._gauges)
        return flat

    def prefixes(self) -> list[str]:
        return sorted(self._sources)

    # -- invariants ----------------------------------------------------
    def expect_sum(self, description: str, lhs: Iterable[str],
                   rhs: Iterable[str]) -> None:
        """Require ``sum(lhs counters) == sum(rhs counters)`` at check
        time.  This is how cross-structure conservation rules (PB L2
        accounting, tap-vs-counter equality) attach to the registry.
        Idempotent: re-attaching an identical rule is a no-op, so
        several simulations can share one registry."""
        rule = (description, tuple(lhs), tuple(rhs))
        if rule not in self._sum_rules:
            self._sum_rules.append(rule)

    def check_invariants(self) -> list[str]:
        """Every violated invariant as a human-readable string."""
        failures: list[str] = []
        for prefix, sources in self._sources.items():
            for source in sources:
                flat = flatten(source.as_dict())
                for description, target, plus, minus in _STRUCTURAL_RULES:
                    if target not in flat:
                        continue
                    if any(name not in flat for name in plus + minus):
                        continue
                    expected = (sum(flat[name] for name in plus)
                                - sum(flat[name] for name in minus))
                    if flat[target] != expected:
                        failures.append(
                            f"{prefix}: {description} "
                            f"({flat[target]} != {expected})")
        snapshot = self.snapshot()
        for description, lhs, rhs in self._sum_rules:
            missing = [name for name in lhs + rhs if name not in snapshot]
            if missing:
                failures.append(f"{description}: missing {missing}")
                continue
            left = sum(snapshot[name] for name in lhs)
            right = sum(snapshot[name] for name in rhs)
            if left != right:
                failures.append(f"{description} ({left} != {right})")
        return failures

    def assert_invariants(self) -> None:
        failures = self.check_invariants()
        if failures:
            raise MetricsInvariantError("; ".join(failures))


class Observation:
    """The handle a caller threads through one simulation.

    Bundles the registry the run's stats register into and (optionally)
    the tracer capturing its event stream; ``simulate_baseline`` /
    ``simulate_tcor`` accept one as their ``obs`` argument.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 tracer=None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        if tracer is not None and tracer.registry is None:
            tracer.registry = self.registry
        self.tracer = tracer

    def expect_sum(self, description: str, lhs: Iterable[str],
                   rhs: Iterable[str]) -> None:
        self.registry.expect_sum(description, lhs, rhs)

    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def assert_invariants(self) -> None:
        self.registry.assert_invariants()
