"""Structured event tracing: the tracer, the ring buffer and the sinks.

The simulator's hook points consult the module-global :data:`ACTIVE`
tracer.  It is ``None`` by default, so the disabled path costs one
attribute load and a ``None`` check per hook — the
``tests/test_perf_equivalence.py`` gate holds bit-identical counters
either way.  Activation is scoped::

    tracer = Tracer(sinks=[JsonlSink(path)], registry=registry)
    with activation(tracer):
        simulate_tcor(workload)
    tracer.close()

Every event the tracer emits lands in a bounded ring buffer (recent
history for debugging) and in each attached sink.  Sinks are small
objects with ``emit(event)``/``close()``:

- :class:`JsonlSink` streams events as JSON lines;
- :class:`TileSummarySink` folds events into per-(cache, tile) counters
  — and :func:`summarize_trace` rebuilds the identical summary from a
  JSONL file, which is the exporter round-trip the tests pin down.

The tracer also carries the *tile context*: the system simulator marks
the tile currently being built/fetched, and every event emitted by the
caches underneath is tagged with it.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from typing import IO, Iterable, Iterator, Protocol

from repro.obs.events import (
    CacheAccess,
    DeadLineDrop,
    DramAccess,
    Eviction,
    MemoryTraffic,
    OptDecision,
    TileMark,
    TraceEvent,
    TraceHeader,
    from_record,
    to_record,
)

# The one global hook target.  Reads must stay this cheap: the cache
# access path executes `trace.ACTIVE is None` hundreds of millions of
# times per full-scale run.
ACTIVE: "Tracer | None" = None

DEFAULT_RING_ENTRIES = 4096


class Sink(Protocol):
    """Anything that consumes a stream of trace events."""

    def emit(self, event: TraceEvent) -> None: ...

    def close(self) -> None: ...


class JsonlSink:
    """Streams events to a JSONL file (one ``{"type": ...}`` per line)."""

    def __init__(self, target: str | IO[str]) -> None:
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self.events_written = 0

    def emit(self, event: TraceEvent) -> None:
        self._handle.write(json.dumps(to_record(event), sort_keys=True))
        self._handle.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()
        else:
            self._handle.flush()


# Counter names of one per-(cache, tile) summary cell, in report order.
SUMMARY_COUNTERS = ("accesses", "reads", "writes", "hits", "misses",
                    "bypasses", "evictions", "dirty_evictions",
                    "opt_evictions", "opt_bypasses", "dead_drops",
                    "dead_writebacks_avoided")


def _new_cell() -> dict:
    return dict.fromkeys(SUMMARY_COUNTERS, 0)


class TileSummarySink:
    """Folds the event stream into per-(cache, tile) counters.

    The summary is a plain nested dict ``{cache: {tile: {counter: n}}}``
    (``tile`` is ``None`` for events outside any tile context, e.g. the
    end-of-frame flush or a bare cache driven outside the system
    simulator).  Summing a cache's cells across tiles reproduces that
    cache's registry counters exactly — the conservation bridge between
    the trace and the metrics registry.
    """

    def __init__(self) -> None:
        self.header: TraceHeader | None = None
        self.tiles_done = 0
        self._cells: dict[str, dict[int | None, dict]] = {}

    def _cell(self, cache: str, tile: int | None) -> dict:
        tiles = self._cells.setdefault(cache, {})
        cell = tiles.get(tile)
        if cell is None:
            cell = tiles[tile] = _new_cell()
        return cell

    def emit(self, event: TraceEvent) -> None:
        if isinstance(event, CacheAccess):
            cell = self._cell(event.cache, event.tile)
            cell["accesses"] += 1
            cell["writes" if event.is_write else "reads"] += 1
            if event.bypassed:
                cell["bypasses"] += 1
            cell["hits" if event.hit else "misses"] += 1
        elif isinstance(event, Eviction):
            cell = self._cell(event.cache, event.tile)
            cell["evictions"] += 1
            if event.dirty:
                cell["dirty_evictions"] += 1
        elif isinstance(event, OptDecision):
            cell = self._cell(event.cache, event.tile)
            if event.op in ("read_hit", "read_miss"):
                cell["accesses"] += 1
                cell["reads"] += 1
                cell["hits" if event.op == "read_hit" else "misses"] += 1
            elif event.op in ("write_insert", "write_bypass"):
                cell["accesses"] += 1
                cell["writes"] += 1
                if event.op == "write_bypass":
                    cell["opt_bypasses"] += 1
            elif event.op == "evict":
                cell["opt_evictions"] += 1
                if event.dirty:
                    cell["dirty_evictions"] += 1
        elif isinstance(event, DeadLineDrop):
            cell = self._cell(event.cache, event.tile)
            cell["dead_drops"] += 1
            if event.dirty:
                cell["dead_writebacks_avoided"] += 1
        elif isinstance(event, TileMark):
            self.tiles_done += 1
        elif isinstance(event, TraceHeader):
            self.header = event
        # MemoryTraffic / DramAccess are carried by the JSONL stream but
        # have no per-tile cell; the registry owns their totals.

    def close(self) -> None:
        return None

    def summary(self) -> dict:
        """Deep copy of the per-(cache, tile) counters."""
        return {
            cache: {tile: dict(cell) for tile, cell in tiles.items()}
            for cache, tiles in self._cells.items()
        }

    def cache_totals(self, cache: str) -> dict:
        """One cache's counters summed over every tile."""
        totals = _new_cell()
        for cell in self._cells.get(cache, {}).values():
            for counter, value in cell.items():
                totals[counter] += value
        return totals


class Tracer:
    """Receives hook calls, tags them with the tile context, fans out.

    ``registry`` (optional) is a
    :class:`~repro.obs.registry.MetricsRegistry`; when set, every cache
    that emits an event self-registers its stats object under
    ``live.<cache-name>`` — so a traced run always has registry
    counters to check the trace against, even for caches driven outside
    the full-system simulator (e.g. the fig10 worked example).
    """

    def __init__(self, sinks: Iterable[Sink] = (),
                 ring_entries: int = DEFAULT_RING_ENTRIES,
                 registry=None) -> None:
        self.sinks: list[Sink] = list(sinks)
        self.ring: deque[TraceEvent] = deque(maxlen=ring_entries)
        self.registry = registry
        self.current_tile: int | None = None
        self.current_rank: int | None = None
        self.events_emitted = 0

    # -- plumbing ------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        self.ring.append(event)
        self.events_emitted += 1
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def _register(self, name: str, stats) -> None:
        if self.registry is not None:
            self.registry.register(f"live.{name}", stats)

    # -- tile context (system simulator) -------------------------------
    def set_tile(self, tile_id: int | None,
                 rank: int | None = None) -> None:
        self.current_tile = tile_id
        self.current_rank = rank

    def tile_done(self, tile_id: int, rank: int) -> None:
        self.emit(TileMark(tile_id=tile_id, rank=rank))
        self.set_tile(None)

    def header(self, label: str, alias: str, scale: float,
               tiles_x: int, tiles_y: int) -> None:
        self.emit(TraceHeader(label=label, alias=alias, scale=scale,
                              tiles_x=tiles_x, tiles_y=tiles_y))

    # -- hook points (called from the simulator) -----------------------
    def cache_access(self, name: str, stats, *, is_write: bool, hit: bool,
                     bypassed: bool, tag: int, set_index: int,
                     region: int | None,
                     opt_number: int | None) -> None:
        self._register(name, stats)
        self.emit(CacheAccess(cache=name, tile=self.current_tile,
                              is_write=is_write, hit=hit, bypassed=bypassed,
                              tag=tag, set_index=set_index, region=region,
                              opt_number=opt_number))

    def eviction(self, name: str, *, tag: int, dirty: bool,
                 region: int | None,
                 last_tile_rank: int | None) -> None:
        self.emit(Eviction(cache=name, tile=self.current_tile, tag=tag,
                           dirty=dirty, region=region,
                           last_tile_rank=last_tile_rank))

    def opt_decision(self, name: str, stats, *, op: str, primitive_id: int,
                     opt_number: int | None, dirty: bool = False) -> None:
        self._register(name, stats)
        self.emit(OptDecision(cache=name, tile=self.current_tile, op=op,
                              primitive_id=primitive_id,
                              opt_number=opt_number, dirty=dirty))

    def dead_line_drop(self, name: str, *, tag: int, dirty: bool,
                       region: int | None) -> None:
        self.emit(DeadLineDrop(cache=name, tile=self.current_tile, tag=tag,
                               dirty=dirty, region=region))

    def memory_traffic(self, stats, *, is_write: bool,
                       region: int | None) -> None:
        self._register("dram", stats)
        self.emit(MemoryTraffic(tile=self.current_tile, is_write=is_write,
                                region=region))

    def dram_access(self, stats, *, is_write: bool, bank: int, row: int,
                    outcome: str) -> None:
        self._register("dram_model", stats)
        self.emit(DramAccess(tile=self.current_tile, is_write=is_write,
                             bank=bank, row=row, outcome=outcome))


@contextmanager
def activation(tracer: Tracer | None) -> Iterator[Tracer | None]:
    """Install ``tracer`` as the global hook target for the scope.

    Nests: the previous tracer (usually ``None``) is restored on exit.
    Passing ``None`` is a no-op scope, which lets call sites write one
    ``with activation(obs and obs.tracer):`` unconditionally.
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = tracer
    try:
        yield tracer
    finally:
        ACTIVE = previous


def read_trace(path: str) -> Iterator[TraceEvent]:
    """Stream a JSONL trace back as typed events."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield from_record(json.loads(line))


def summarize_trace(path: str) -> TileSummarySink:
    """Rebuild the per-tile summary from a JSONL trace file.

    Feeding the reloaded events through a fresh
    :class:`TileSummarySink` guarantees the offline summary is
    byte-identical to a live one attached during the run.
    """
    sink = TileSummarySink()
    for event in read_trace(path):
        sink.emit(event)
    return sink
