"""End-to-end frame simulation of the baseline and TCOR systems.

Replays a workload's Tiling Engine trace (plus the background traffic
that shares the L2) through either memory organization and reports the
traffic counters behind Figures 14-19 and the per-structure access
counts the energy model consumes.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.caches.hierarchy import MemoryCounters, SharedL2
from repro.caches.line import LineMeta
from repro.caches.policies.lru import LRUPolicy
from repro.caches.set_assoc import SetAssociativeCache
from repro.config import DEFAULT_GPU, CacheConfig, GPUConfig, TCORConfig
from repro.obs import trace as obs_trace
from repro.obs.registry import Observation
from repro.pbuffer.layout import (
    ContiguousPBListsLayout,
    InterleavedPBListsLayout,
)
from repro.tcor.attribute_cache import AttributeCache
from repro.tcor.baseline_tile_cache import BaselineTileCache
from repro.tcor.l2_policy import (
    DeadLinePriorityPolicy,
    TcorSharedL2,
    TileProgress,
    line_is_dead,
)
from repro.tcor.primitive_list_cache import PrimitiveListCache
from repro.tcor.requests import L2Request
from repro.tiling.events import (
    AttributeRead,
    AttributeWrite,
    PmdRead,
    PmdWrite,
    TileDone,
    tile_context,
)
from repro.workloads.suite import Workload
from repro.workloads.trace import Region

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # circular-free: repro.anim imports repro.workloads
    from repro.anim.elimination import RenderingElimination

_PB_REGIONS = (Region.PB_LISTS, Region.PB_ATTRIBUTES)


@dataclass
class SystemResult:
    """Traffic accounting of one simulated configuration."""

    label: str
    alias: str
    pb_l2_reads: int = 0
    pb_l2_writes: int = 0
    pb_mm_reads: int = 0
    pb_mm_writes: int = 0
    mm_reads: int = 0
    mm_writes: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    dead_writebacks_avoided: int = 0
    attr_read_hits: int = 0
    attr_reads: int = 0
    write_bypasses: int = 0
    # Rendering Elimination accounting (repro.anim); all zero unless the
    # run had ``rendering_elimination`` enabled.
    tiles_total: int = 0
    tiles_skipped: int = 0
    signature_compares: int = 0
    structure_accesses: dict = field(default_factory=dict)

    @property
    def pb_l2_accesses(self) -> int:
        return self.pb_l2_reads + self.pb_l2_writes

    @property
    def pb_mm_accesses(self) -> int:
        return self.pb_mm_reads + self.pb_mm_writes

    @property
    def mm_accesses(self) -> int:
        return self.mm_reads + self.mm_writes

    @property
    def attr_read_hit_ratio(self) -> float:
        return self.attr_read_hits / self.attr_reads if self.attr_reads else 0.0

    @property
    def tiles_skipped_fraction(self) -> float:
        return self.tiles_skipped / self.tiles_total if self.tiles_total \
            else 0.0


def _l2_cache(config: CacheConfig, policy) -> SetAssociativeCache:
    return SetAssociativeCache(
        num_sets=config.num_sets, ways=config.associativity,
        line_bytes=config.line_bytes, policy=policy, name=config.name,
    )


def _send(shared: SharedL2, requests: list[L2Request] | tuple[L2Request, ...],
          counters: dict) -> None:
    """Forward L1->L2 requests and count the PB ones (Figures 14/15).

    This is the simulator's hottest loop, so one scratch ``LineMeta`` is
    reused across requests (``access`` copies its fields, never retains
    the object) and the PB counters are accumulated locally and flushed
    once per batch.
    """
    meta = LineMeta()
    access = shared.access
    pb_reads = pb_writes = 0
    for request in requests:
        region = request.region
        meta.region = region
        meta.last_tile_rank = request.last_tile_rank
        access(request.address, is_write=request.is_write, meta=meta)
        if region in _PB_REGIONS:
            if request.is_write:
                pb_writes += 1
            else:
                pb_reads += 1
    if pb_reads:
        counters["pb_l2_reads"] += pb_reads
    if pb_writes:
        counters["pb_l2_writes"] += pb_writes


def _send_background(shared: SharedL2, accesses) -> None:
    meta = LineMeta()
    send = shared.access
    for access in accesses:
        meta.region = access.region
        send(access.address, is_write=access.is_write, meta=meta)


def _is_pb_line(line) -> bool:
    return line.meta.region in _PB_REGIONS


def _writeback_pb_lines(shared: SharedL2, progress: TileProgress | None) -> None:
    """End of frame: the Parameter Buffer is torn down.

    Dirty PB lines still in the L2 are written back (baseline) unless
    they are dead under the TCOR enhancement — at frame end every PB
    line is dead, so TCOR writes none of them back.
    """
    l2 = shared.l2
    tracer = obs_trace.ACTIVE
    for evicted in l2.evict_matching(_is_pb_line):
        if not evicted.dirty:
            continue
        if progress is not None and line_is_dead(evicted.meta, progress):
            l2.stats.note_dead_writeback_avoided()
            if tracer is not None:
                tracer.dead_line_drop(l2.name, tag=evicted.tag, dirty=True,
                                      region=evicted.meta.region)
        else:
            shared.memory.record(is_write=True, region=evicted.meta.region)


def _finalize(result: SystemResult, shared: SharedL2,
              counters: dict) -> SystemResult:
    result.pb_l2_reads = counters["pb_l2_reads"]
    result.pb_l2_writes = counters["pb_l2_writes"]
    memory = shared.memory
    result.pb_mm_reads = sum(memory.region_reads(r) for r in _PB_REGIONS)
    result.pb_mm_writes = sum(memory.region_writes(r) for r in _PB_REGIONS)
    result.mm_reads = memory.reads
    result.mm_writes = memory.writes
    result.l2_accesses = shared.l2.stats.accesses
    result.l2_misses = shared.l2.stats.misses
    result.dead_writebacks_avoided = shared.l2.stats.dead_writebacks_avoided
    return result


# The cross-structure conservation rule every simulation attaches to its
# registry: the pb_l2_* request counters must equal the L2's by-region
# accounting of Parameter Buffer traffic (one counter owner, two views).
PB_ACCOUNTING_RULE = (
    "L2 PB accounting: by-region PB reads+writes == pb_l2 counters",
    ("live.l2.by_region.pb_lists.reads",
     "live.l2.by_region.pb_lists.writes",
     "live.l2.by_region.pb_attributes.reads",
     "live.l2.by_region.pb_attributes.writes"),
    ("live.system.pb_l2_reads", "live.system.pb_l2_writes"),
)


def _observe_shared(obs: Observation, shared: SharedL2) -> None:
    """Register the run-long structures (L2, main memory)."""
    shared.l2.stats.register(obs.registry, f"live.{shared.l2.name}")
    shared.memory.register(obs.registry, "live.dram")


def _observe_counters(obs: Observation, counters: dict) -> None:
    """Export the PB request counters and attach the conservation rule."""
    obs.registry.count("live.system.pb_l2_reads", counters["pb_l2_reads"])
    obs.registry.count("live.system.pb_l2_writes", counters["pb_l2_writes"])
    obs.expect_sum(*PB_ACCOUNTING_RULE)


def _re_engine(rendering_elimination: bool,
               obs: Observation | None):
    """The run's Rendering Elimination unit (or None when disabled).

    Registered up front so its counters appear in the registry even for
    a sequence where nothing ever matches, and the tile-conservation
    invariant is attached alongside (DESIGN.md §15).
    """
    if not rendering_elimination:
        return None
    from repro.anim.elimination import RE_ACCOUNTING_RULE, RenderingElimination

    engine = RenderingElimination()
    if obs is not None:
        engine.stats.register(obs.registry, "live.re")
        obs.expect_sum(*RE_ACCOUNTING_RULE)
    return engine


def _frame_skip_mask(engine: RenderingElimination | None,
                     workload: Workload, frame_index: int):
    """The frame's per-tile skip mask, or None (render everything)."""
    if engine is None:
        return None
    from repro.anim.signatures import tile_signatures

    return engine.begin_frame(
        tile_signatures(workload.scenes[frame_index]))


def _re_tile_done(engine: RenderingElimination | None,
                  skipped: bool) -> None:
    """Account one completed tile with the signature unit, if present."""
    if engine is not None:
        engine.tile_done(skipped)


def _finalize_re(result: SystemResult, engine) -> None:
    """Copy the signature unit's counters into the result.

    The ``signature_unit`` structure-access entry exists only when RE
    ran, so RE-off results (and their energy) are byte-identical to
    pre-RE builds.
    """
    if engine is None:
        return
    stats = engine.stats
    result.tiles_total = stats.tiles_total
    result.tiles_skipped = stats.tiles_skipped
    result.signature_compares = stats.signature_compares
    result.structure_accesses["signature_unit"] = stats.signature_compares


def _trace_scope(obs: Observation | None):
    """Activate the observation's tracer for the simulation's duration.

    Without a tracer this is a no-op scope — crucially it must NOT
    disturb a tracer some caller already activated globally.
    """
    if obs is not None and obs.tracer is not None:
        return obs_trace.activation(obs.tracer)
    return nullcontext()


def _emit_header(label: str, workload: Workload) -> None:
    tracer = obs_trace.ACTIVE
    if tracer is not None:
        tracer.header(label=label, alias=workload.spec.alias,
                      scale=workload.scale,
                      tiles_x=workload.screen.tiles_x,
                      tiles_y=workload.screen.tiles_y)


def simulate_baseline(workload: Workload,
                      gpu: GPUConfig | None = None,
                      tile_cache_bytes: int | None = None,
                      include_background: bool = True,
                      rendering_elimination: bool = False,
                      obs: Observation | None = None) -> SystemResult:
    """The paper's baseline: unified LRU Tile Cache, contiguous PB-Lists
    layout, LRU L2 with no dead-line awareness.

    ``obs`` threads an :class:`~repro.obs.registry.Observation` through
    the run: live stats register into its metrics registry, and its
    tracer (if any) is activated for the simulation's duration.
    ``rendering_elimination`` arms the early-discard unit: tiles whose
    input signature matches the previous frame generate no fetch-phase
    traffic (build traffic is unchanged — the Parameter Buffer must be
    built to compute the signatures).
    """
    gpu = gpu or DEFAULT_GPU
    if tile_cache_bytes is not None:
        gpu = gpu.with_tile_cache_size(tile_cache_bytes)
    shared = SharedL2(_l2_cache(gpu.l2_cache, LRUPolicy()), MemoryCounters())
    counters = {"pb_l2_reads": 0, "pb_l2_writes": 0}
    result = SystemResult(label="baseline", alias=workload.spec.alias)
    tile_cache_accesses = 0
    re_engine = _re_engine(rendering_elimination, obs)
    if obs is not None:
        _observe_shared(obs, shared)

    with _trace_scope(obs):
        _emit_header("baseline", workload)
        tracer = obs_trace.ACTIVE
        for frame_index, trace in enumerate(workload.traces):
            pb = trace.pb
            skip = _frame_skip_mask(re_engine, workload, frame_index)
            skip_tile = False
            layout = ContiguousPBListsLayout(workload.screen.num_tiles,
                                             pb.pbuffer)
            tile_cache = BaselineTileCache(gpu.tile_cache, layout,
                                           pb.attributes, pb.rank_of_tile)
            if obs is not None:
                tile_cache.stats.register(obs.registry, "live.tile")
            for event in trace.build_events:
                if tracer is not None:
                    mark = tile_context(event)
                    if mark is not None:
                        tracer.set_tile(*mark)
                if isinstance(event, PmdWrite):
                    _send(shared, tile_cache.write_pmd(event.tile_id,
                                                       event.position),
                          counters)
                elif isinstance(event, AttributeWrite):
                    if include_background:
                        _send_background(
                            shared,
                            workload.background.primitive_accesses(
                                event.primitive_id),
                        )
                    _send(shared,
                          tile_cache.write_attributes(event.primitive_id),
                          counters)
            for event in trace.fetch_events:
                if tracer is not None:
                    mark = tile_context(event)
                    if mark is not None:
                        tracer.set_tile(*mark)
                if isinstance(event, PmdRead):
                    skip_tile = skip is not None and skip[event.tile_id]
                    if skip_tile:
                        continue
                    _send(shared, tile_cache.read_pmd(event.tile_id,
                                                      event.position),
                          counters)
                elif isinstance(event, AttributeRead):
                    if skip_tile:
                        continue
                    result.attr_reads += 1
                    _send(shared,
                          tile_cache.read_attributes(event.primitive_id),
                          counters)
                elif isinstance(event, TileDone):
                    skipped = skip is not None and skip[event.tile_id]
                    skip_tile = False
                    _re_tile_done(re_engine, skipped)
                    if include_background and not skipped:
                        _send_background(
                            shared,
                            workload.background.tile_accesses(event.tile_id),
                        )
                        # Transaction elimination: tiles with no geometry
                        # are unchanged and never flushed to the Frame
                        # Buffer.
                        if pb.list_length(event.tile_id):
                            for _ in range(workload.background
                                           .framebuffer_writes_per_tile()):
                                shared.memory.record(is_write=True,
                                                     region=Region.FRAMEBUFFER)
                    if tracer is not None:
                        tracer.tile_done(event.tile_id, event.tile_rank)
            if tracer is not None:
                tracer.set_tile(None)
            _send(shared, tile_cache.flush(), counters)
            tile_cache_accesses += tile_cache.stats.accesses
            _writeback_pb_lines(shared, progress=None)

    result.structure_accesses = {
        "tile_cache": tile_cache_accesses,
        "l2": shared.l2.stats.accesses,
        "dram": shared.memory.accesses,
    }
    if include_background:
        result.structure_accesses.update(
            workload.background.l1_access_estimates(workload.num_primitives)
        )
    _finalize_re(result, re_engine)
    if obs is not None:
        _observe_counters(obs, counters)
    return _finalize(result, shared, counters)


def simulate_tcor(workload: Workload,
                  gpu: GPUConfig | None = None,
                  tcor: TCORConfig | None = None,
                  total_tile_cache_bytes: int | None = None,
                  l2_enhancements: bool = True,
                  interleaved_lists: bool = True,
                  include_background: bool = True,
                  rendering_elimination: bool = False,
                  obs: Observation | None = None) -> SystemResult:
    """TCOR: split Tile Cache (LRU Primitive List Cache + OPT Attribute
    Cache), interleaved PB-Lists, and optionally the dead-line L2.

    ``obs`` threads an :class:`~repro.obs.registry.Observation` through
    the run exactly as in :func:`simulate_baseline`; a discarded tile
    still reports ``tile_done`` to the progress scoreboard (its PB
    lists are freed exactly as if rendered), which is how RE composes
    with the dead-line L2 and the OPT attribute policy.
    """
    gpu = gpu or DEFAULT_GPU
    if tcor is None:
        tcor = (TCORConfig.for_total_size(total_tile_cache_bytes)
                if total_tile_cache_bytes is not None else TCORConfig())
    progress = TileProgress()
    if l2_enhancements:
        policy = DeadLinePriorityPolicy(progress)
        shared: SharedL2 = TcorSharedL2(_l2_cache(gpu.l2_cache, policy),
                                        progress, MemoryCounters())
    else:
        shared = SharedL2(_l2_cache(gpu.l2_cache, LRUPolicy()),
                          MemoryCounters())
    counters = {"pb_l2_reads": 0, "pb_l2_writes": 0}
    label = "tcor" if l2_enhancements else "tcor_no_l2"
    result = SystemResult(label=label, alias=workload.spec.alias)
    pl_accesses = 0
    pb_buffer_ops = 0
    attr_entries_moved = 0
    re_engine = _re_engine(rendering_elimination, obs)

    layout_cls = (InterleavedPBListsLayout if interleaved_lists
                  else ContiguousPBListsLayout)
    if obs is not None:
        _observe_shared(obs, shared)

    with _trace_scope(obs):
        _emit_header(label, workload)
        tracer = obs_trace.ACTIVE
        for frame_index, trace in enumerate(workload.traces):
            pb = trace.pb
            progress.reset()
            skip = _frame_skip_mask(re_engine, workload, frame_index)
            skip_tile = False
            layout = layout_cls(workload.screen.num_tiles, pb.pbuffer)
            pl_cache = PrimitiveListCache(tcor.primitive_list_cache, layout,
                                          pb.rank_of_tile)
            attr_cache = AttributeCache(
                tcor, pb.attributes,
                inflight_window=gpu.tiling.output_queue_entries,
            )
            if obs is not None:
                pl_cache.stats.register(obs.registry, "live.primitive_list")
                attr_cache.stats.register(obs.registry,
                                          "live.attribute_cache")
            for event in trace.build_events:
                if tracer is not None:
                    mark = tile_context(event)
                    if mark is not None:
                        tracer.set_tile(*mark)
                if isinstance(event, PmdWrite):
                    _send(shared, pl_cache.write_pmd(event.tile_id,
                                                     event.position),
                          counters)
                elif isinstance(event, AttributeWrite):
                    if include_background:
                        _send_background(
                            shared,
                            workload.background.primitive_accesses(
                                event.primitive_id),
                        )
                    outcome = attr_cache.write(
                        event.primitive_id, event.num_attributes,
                        event.opt_number, event.last_use_rank,
                    )
                    pb_buffer_ops += 1
                    attr_entries_moved += event.num_attributes
                    _send(shared, outcome.l2_requests, counters)
            for event in trace.fetch_events:
                if tracer is not None:
                    mark = tile_context(event)
                    if mark is not None:
                        tracer.set_tile(*mark)
                if isinstance(event, PmdRead):
                    skip_tile = skip is not None and skip[event.tile_id]
                    if skip_tile:
                        continue
                    _send(shared, pl_cache.read_pmd(event.tile_id,
                                                    event.position),
                          counters)
                elif isinstance(event, AttributeRead):
                    if skip_tile:
                        continue
                    outcome = attr_cache.read(
                        event.primitive_id, event.num_attributes,
                        event.opt_number, event.last_use_rank,
                    )
                    result.attr_reads += 1
                    if outcome.hit:
                        result.attr_read_hits += 1
                    pb_buffer_ops += 1
                    attr_entries_moved += 2 * event.num_attributes
                    _send(shared, outcome.l2_requests, counters)
                elif isinstance(event, TileDone):
                    skipped = skip is not None and skip[event.tile_id]
                    skip_tile = False
                    _re_tile_done(re_engine, skipped)
                    # The scoreboard advances for skipped tiles too: the
                    # PB frees their lists exactly as if rendered.
                    progress.tile_done(event.tile_rank)
                    if include_background and not skipped:
                        _send_background(
                            shared,
                            workload.background.tile_accesses(event.tile_id),
                        )
                        # Transaction elimination (see the baseline path).
                        if pb.list_length(event.tile_id):
                            for _ in range(workload.background
                                           .framebuffer_writes_per_tile()):
                                shared.memory.record(is_write=True,
                                                     region=Region.FRAMEBUFFER)
                    if tracer is not None:
                        tracer.tile_done(event.tile_id, event.tile_rank)
            if tracer is not None:
                tracer.set_tile(None)
            _send(shared, attr_cache.flush(), counters)
            _send(shared, pl_cache.flush(), counters)
            pl_accesses += pl_cache.stats.accesses
            result.write_bypasses += attr_cache.stats.write_bypasses
            _writeback_pb_lines(shared,
                                progress if l2_enhancements else None)

    result.structure_accesses = {
        "primitive_list_cache": pl_accesses,
        "primitive_buffer": pb_buffer_ops,
        "attribute_buffer": attr_entries_moved,
        "l2": shared.l2.stats.accesses,
        "dram": shared.memory.accesses,
    }
    if include_background:
        result.structure_accesses.update(
            workload.background.l1_access_estimates(workload.num_primitives)
        )
    _finalize_re(result, re_engine)
    if obs is not None:
        _observe_counters(obs, counters)
    return _finalize(result, shared, counters)
