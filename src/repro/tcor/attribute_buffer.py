"""The Attribute Buffer (paper Figure 8, lower half).

A pool of 48-byte entries, one attribute each.  A primitive's attributes
form a linked list of entries; a linked free list manages allocation.
Each entry has a valid bit, a lock bit and a next pointer (None for the
last attribute).  Locking the *first* entry suffices to pin a primitive:
the rest are only reachable through it and are freed together.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BufferEntry:
    valid: bool = False
    locked: bool = False
    primitive_id: int | None = None
    slot: int | None = None          # attribute index within the primitive
    next_entry: int | None = None


class AttributeBuffer:
    """Fixed-capacity linked-list attribute store."""

    def __init__(self, num_entries: int) -> None:
        if num_entries <= 0:
            raise ValueError("attribute buffer needs at least one entry")
        self.num_entries = num_entries
        self._entries = [BufferEntry() for _ in range(num_entries)]
        # Free list threaded through next_entry.
        for index in range(num_entries - 1):
            self._entries[index].next_entry = index + 1
        self._free_head: int | None = 0
        self._free_count = num_entries
        self.peak_used = 0

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def free_entries(self) -> int:
        return self._free_count

    @property
    def used_entries(self) -> int:
        return self.num_entries - self._free_count

    def can_allocate(self, count: int) -> bool:
        return 0 < count <= self._free_count

    # ------------------------------------------------------------------
    # Allocation / release
    # ------------------------------------------------------------------
    def allocate(self, primitive_id: int, count: int) -> int:
        """Take ``count`` entries for a primitive; returns the head index
        (the Attribute Buffer Pointer)."""
        if not self.can_allocate(count):
            raise RuntimeError(
                f"attribute buffer has {self._free_count} free entries; "
                f"{count} requested"
            )
        head: int | None = None
        tail: int | None = None
        for slot in range(count):
            index = self._free_head
            assert index is not None
            entry = self._entries[index]
            self._free_head = entry.next_entry
            self._free_count -= 1
            entry.valid = True
            entry.locked = False
            entry.primitive_id = primitive_id
            entry.slot = slot
            entry.next_entry = None
            if head is None:
                head = index
            else:
                assert tail is not None
                self._entries[tail].next_entry = index
            tail = index
        self.peak_used = max(self.peak_used, self.used_entries)
        assert head is not None
        return head

    def free(self, head: int) -> int:
        """Return a primitive's chain to the free list; returns the number
        of entries released."""
        self._check_head(head)
        if self._entries[head].locked:
            raise RuntimeError("freeing a locked primitive chain")
        released = 0
        index: int | None = head
        while index is not None:
            entry = self._entries[index]
            next_index = entry.next_entry
            entry.valid = False
            entry.locked = False
            entry.primitive_id = None
            entry.slot = None
            entry.next_entry = self._free_head
            self._free_head = index
            self._free_count += 1
            released += 1
            index = next_index
        return released

    # ------------------------------------------------------------------
    # Locks and traversal
    # ------------------------------------------------------------------
    def _check_head(self, head: int) -> None:
        if not (0 <= head < self.num_entries):
            raise IndexError(f"entry {head} out of range")
        if not self._entries[head].valid:
            raise RuntimeError(f"entry {head} is not a valid chain head")

    def lock(self, head: int) -> None:
        """Lock the first attribute; the rest are linked and will not be
        released until the first one is (paper Section III-C.3)."""
        self._check_head(head)
        self._entries[head].locked = True

    def unlock(self, head: int) -> None:
        self._check_head(head)
        self._entries[head].locked = False

    def is_locked(self, head: int) -> bool:
        self._check_head(head)
        return self._entries[head].locked

    def chain(self, head: int) -> list[int]:
        """Entry indices of a primitive's attribute list, in order."""
        self._check_head(head)
        indices = []
        index: int | None = head
        while index is not None:
            indices.append(index)
            index = self._entries[index].next_entry
        return indices

    def chain_primitive(self, head: int) -> int:
        self._check_head(head)
        primitive = self._entries[head].primitive_id
        assert primitive is not None
        return primitive

    def check_invariants(self) -> None:
        """Free list and chains partition the entries (test hook)."""
        free = set()
        index = self._free_head
        while index is not None:
            if index in free:
                raise AssertionError("cycle in free list")
            free.add(index)
            index = self._entries[index].next_entry
        if len(free) != self._free_count:
            raise AssertionError("free count out of sync")
        for position, entry in enumerate(self._entries):
            if position in free and entry.valid:
                raise AssertionError("valid entry on the free list")
