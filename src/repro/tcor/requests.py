"""Requests emitted by an L1 structure toward the shared L2."""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.trace import Region


@dataclass(frozen=True, slots=True)
class L2Request:
    """One block request an L1 sends down to the L2.

    ``last_tile_rank`` is the dead-line tag travelling with Parameter
    Buffer blocks (stored in spare block bytes by the Polygon List
    Builder, paper Section III-D.1); the TCOR L2 copies it into the
    line's metadata.
    """

    address: int
    is_write: bool
    region: Region
    last_tile_rank: int | None = None
