"""The Primitive List Cache (paper Section III-C.1).

A conventional set-associative LRU cache in front of the PB-Lists
section.  PB-Lists traffic is small (a 4-byte PMD per primitive per
tile) and each block is read exactly once by the Tile Fetcher, so LRU is
sufficient; the interleaved layout (Section III-B) removes the
power-of-two conflicts of the baseline layout.
"""

from __future__ import annotations

from repro.caches.line import LineMeta
from repro.caches.policies.lru import LRUPolicy
from repro.caches.set_assoc import SetAssociativeCache
from repro.config import CacheConfig
from repro.geometry.traversal import TraversalOrder
from repro.pbuffer.layout import PBListsLayout
from repro.tcor.requests import L2Request
from repro.workloads.trace import Region


class PrimitiveListCache:
    """LRU block cache over a PB-Lists layout."""

    def __init__(self, config: CacheConfig, layout: PBListsLayout,
                 rank_of_tile) -> None:
        self.layout = layout
        self._rank_of_tile = rank_of_tile
        self.cache = SetAssociativeCache(
            num_sets=config.num_sets, ways=config.associativity,
            line_bytes=config.line_bytes, policy=LRUPolicy(),
            name=config.name,
        )
        # Write-validate: a PMD append to a block whose earlier PMDs were
        # evicted must fetch the block back to merge; first touches of the
        # fresh per-frame buffer allocate without fetching.
        self._written_blocks: set[int] = set()

    @property
    def stats(self):
        return self.cache.stats

    def _last_tile_rank_of(self, address: int) -> int | None:
        """Dead-line tag of a PB-Lists block: the rank of its owning tile
        (the only tile that will ever read it)."""
        tile = self.layout.tile_of_block(address)
        if tile is None:
            return None
        return self._rank_of_tile[tile]

    def _lower(self, address: int, is_write: bool) -> list[L2Request]:
        rank = self._last_tile_rank_of(address)
        meta = LineMeta(region=Region.PB_LISTS, last_tile_rank=rank)
        block = address - address % self.cache.line_bytes
        result = self.cache.access(address, is_write=is_write, meta=meta)
        requests: list[L2Request] = []
        if not result.hit and not result.bypassed:
            needs_fetch = not is_write or block in self._written_blocks
            if needs_fetch:
                requests.append(L2Request(address=address, is_write=False,
                                          region=Region.PB_LISTS,
                                          last_tile_rank=rank))
        if is_write:
            self._written_blocks.add(block)
        if result.evicted is not None and result.evicted.dirty:
            evicted_addr = result.evicted.tag * self.cache.line_bytes
            requests.append(L2Request(
                address=evicted_addr, is_write=True, region=Region.PB_LISTS,
                last_tile_rank=result.evicted.meta.last_tile_rank,
            ))
        return requests

    def write_pmd(self, tile_id: int, position: int) -> list[L2Request]:
        return self._lower(self.layout.pmd_address(tile_id, position),
                           is_write=True)

    def read_pmd(self, tile_id: int, position: int) -> list[L2Request]:
        return self._lower(self.layout.pmd_address(tile_id, position),
                           is_write=False)

    def flush(self) -> list[L2Request]:
        requests = []
        for evicted in self.cache.flush():
            if evicted.dirty:
                requests.append(L2Request(
                    address=evicted.tag * self.cache.line_bytes,
                    is_write=True, region=Region.PB_LISTS,
                    last_tile_rank=evicted.meta.last_tile_rank,
                ))
        return requests
