"""The baseline unified Tile Cache (paper Sections II-C/II-D).

One 64 KiB, 4-way, LRU, block-granularity cache serves both Parameter
Buffer sections: PMDs through the contiguous PB-Lists layout and each
48-byte attribute through its own block.  This is the organization every
TCOR result is normalized against.
"""

from __future__ import annotations

from repro.caches.line import LineMeta
from repro.caches.policies.lru import LRUPolicy
from repro.caches.set_assoc import SetAssociativeCache
from repro.config import CacheConfig
from repro.pbuffer.attributes import PBAttributesMap
from repro.pbuffer.layout import PBListsLayout
from repro.tcor.requests import L2Request
from repro.workloads.trace import Region


class BaselineTileCache:
    """Unified LRU Tile Cache over both Parameter Buffer sections."""

    def __init__(self, config: CacheConfig, lists_layout: PBListsLayout,
                 attributes: PBAttributesMap, rank_of_tile) -> None:
        self.lists_layout = lists_layout
        self.attributes = attributes
        self._rank_of_tile = rank_of_tile
        self.cache = SetAssociativeCache(
            num_sets=config.num_sets, ways=config.associativity,
            line_bytes=config.line_bytes, policy=LRUPolicy(),
            name=config.name,
        )
        # Blocks that already hold earlier-written data.  A partial-line
        # write miss to such a block must fetch it back from the L2 to
        # merge (write-validate semantics); a first-touch write to a fresh
        # per-frame buffer block allocates without fetching.
        self._written_blocks: set[int] = set()

    @property
    def stats(self):
        return self.cache.stats

    # ------------------------------------------------------------------
    # Lowering helpers
    # ------------------------------------------------------------------
    def _region_of(self, address: int) -> Region:
        if self.lists_layout.contains(address):
            return Region.PB_LISTS
        return Region.PB_ATTRIBUTES

    def _last_tile_rank_of(self, address: int, region: Region) -> int | None:
        if region is Region.PB_LISTS:
            tile = self.lists_layout.tile_of_block(address)
            return None if tile is None else self._rank_of_tile[tile]
        block = address - address % self.cache.line_bytes
        return self.attributes.last_tile_of_block(block)

    def _access(self, address: int, is_write: bool) -> list[L2Request]:
        region = self._region_of(address)
        rank = self._last_tile_rank_of(address, region)
        meta = LineMeta(region=region, last_tile_rank=rank)
        block = address - address % self.cache.line_bytes
        result = self.cache.access(address, is_write=is_write, meta=meta)
        requests: list[L2Request] = []
        if not result.hit and not result.bypassed:
            needs_fetch = not is_write or block in self._written_blocks
            if needs_fetch:
                requests.append(L2Request(address=address, is_write=False,
                                          region=region, last_tile_rank=rank))
        if is_write:
            self._written_blocks.add(block)
        if result.evicted is not None and result.evicted.dirty:
            evicted_addr = result.evicted.tag * self.cache.line_bytes
            requests.append(L2Request(
                address=evicted_addr, is_write=True,
                region=result.evicted.meta.region or region,
                last_tile_rank=result.evicted.meta.last_tile_rank,
            ))
        return requests

    # ------------------------------------------------------------------
    # Tiling Engine operations
    # ------------------------------------------------------------------
    def write_pmd(self, tile_id: int, position: int) -> list[L2Request]:
        return self._access(self.lists_layout.pmd_address(tile_id, position),
                            is_write=True)

    def read_pmd(self, tile_id: int, position: int) -> list[L2Request]:
        return self._access(self.lists_layout.pmd_address(tile_id, position),
                            is_write=False)

    def write_attributes(self, primitive_id: int) -> list[L2Request]:
        requests: list[L2Request] = []
        for address in self.attributes.attribute_addresses(primitive_id):
            requests.extend(self._access(address, is_write=True))
        return requests

    def read_attributes(self, primitive_id: int) -> list[L2Request]:
        requests: list[L2Request] = []
        for address in self.attributes.attribute_addresses(primitive_id):
            requests.extend(self._access(address, is_write=False))
        return requests

    def flush(self) -> list[L2Request]:
        requests = []
        for evicted in self.cache.flush():
            if evicted.dirty:
                requests.append(L2Request(
                    address=evicted.tag * self.cache.line_bytes,
                    is_write=True,
                    region=evicted.meta.region or Region.PB_ATTRIBUTES,
                    last_tile_rank=evicted.meta.last_tile_rank,
                ))
        return requests
