"""The TCOR Attribute Cache (paper Section III-C.2 and Figure 8).

Primitive-granularity cache over PB-Attributes, decoupled into:

- the **Primitive Buffer**: a set-associative tag store indexed by
  primitive ID (XOR placement), one line per primitive holding valid,
  lock and dirty bits, the OPT Number and the Attribute Buffer Pointer;
- the **Attribute Buffer**: a linked-list pool of 48-byte attribute
  entries (:class:`~repro.tcor.attribute_buffer.AttributeBuffer`).

Replacement evicts the unlocked line with the greatest OPT Number.
Writes from the Polygon List Builder may *bypass* to the L2 when every
resident line will be read sooner than the incoming primitive.  Reads
from the Tile Fetcher lock the primitive until the Rasterizer consumes
it, which we model with a bounded in-flight window (the Tile Fetcher
output queue).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass

from repro.caches.indexing import ModuloIndexing, SetIndexing, XorIndexing
from repro.config import TCORConfig
from repro.constants import NO_NEXT_USE_RANK
from repro.obs import trace as obs_trace
from repro.pbuffer.attributes import PBAttributesMap
from repro.tcor.attribute_buffer import AttributeBuffer
from repro.tcor.requests import L2Request
from repro.workloads.trace import Region

__all__ = ["AttributeCache", "AttributeCacheResult", "AttributeCacheStats",
           "NO_NEXT_USE_RANK", "PrimitiveLine"]


@dataclass
class PrimitiveLine:
    """One Primitive Buffer line."""

    primitive_id: int
    num_attributes: int
    abp: int                     # Attribute Buffer Pointer (chain head)
    opt_number: int              # next-use traversal rank
    last_use_rank: int           # dead-line tag carried to the L2
    dirty: bool
    lock_count: int = 0

    @property
    def locked(self) -> bool:
        return self.lock_count > 0


@dataclass
class AttributeCacheStats:
    reads: int = 0
    read_misses: int = 0
    writes: int = 0
    write_bypasses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    forced_unlocks: int = 0
    space_evictions: int = 0

    @property
    def read_hits(self) -> int:
        return self.reads - self.read_misses

    @property
    def read_hit_ratio(self) -> float:
        return self.read_hits / self.reads if self.reads else 0.0

    def as_dict(self) -> dict:
        summary = dataclasses.asdict(self)
        summary["read_hits"] = self.read_hits
        summary["read_hit_ratio"] = self.read_hit_ratio
        return summary

    def register(self, registry, prefix: str) -> None:
        """Attach this live object to a metrics registry (StatsLike)."""
        registry.register(prefix, self)


@dataclass(frozen=True)
class AttributeCacheResult:
    """Outcome of one Tile Fetcher read or Polygon List Builder write."""

    hit: bool
    bypassed: bool
    l2_requests: tuple[L2Request, ...]
    abp: int | None = None


class AttributeCache:
    """Primitive Buffer + Attribute Buffer with OPT replacement."""

    name = "attribute_cache"

    def __init__(self, config: TCORConfig, attributes: PBAttributesMap,
                 inflight_window: int = 32) -> None:
        self.config = config
        self.attributes = attributes
        ways = config.primitive_buffer_associativity
        entries = config.primitive_buffer_entries
        self.num_sets = max(1, entries // ways)
        self.ways = ways
        self.indexing: SetIndexing = (
            XorIndexing(self.num_sets) if config.use_xor_indexing
            else ModuloIndexing(self.num_sets)
        )
        self._sets: list[dict[int, PrimitiveLine]] = [
            dict() for _ in range(self.num_sets)
        ]
        self.buffer = AttributeBuffer(config.attribute_buffer_entries)
        self.stats = AttributeCacheStats()
        if inflight_window <= 0:
            raise ValueError("in-flight window must be positive")
        self._inflight: deque[int] = deque()
        self._inflight_window = inflight_window

    # ------------------------------------------------------------------
    # Placement helpers
    # ------------------------------------------------------------------
    def set_of(self, primitive_id: int) -> int:
        return self.indexing.set_of(primitive_id)

    def probe(self, primitive_id: int) -> PrimitiveLine | None:
        return self._sets[self.set_of(primitive_id)].get(primitive_id)

    def resident_primitives(self) -> int:
        return sum(len(lines) for lines in self._sets)

    @staticmethod
    def _effective_opt(line: PrimitiveLine) -> int:
        from repro.pbuffer.pmd import NO_NEXT_TILE
        if line.opt_number == NO_NEXT_TILE:
            return NO_NEXT_USE_RANK
        return line.opt_number

    # ------------------------------------------------------------------
    # Locking (Rasterizer consumption window)
    # ------------------------------------------------------------------
    def _lock(self, line: PrimitiveLine) -> None:
        line.lock_count += 1
        self.buffer.lock(line.abp)
        self._inflight.append(line.primitive_id)
        while len(self._inflight) > self._inflight_window:
            self._consume_oldest()

    def _consume_oldest(self) -> None:
        """The Rasterizer picks up the oldest in-flight primitive."""
        if not self._inflight:
            raise RuntimeError(
                "no in-flight primitive to consume; the cache is "
                "deadlocked (primitive larger than the Attribute Buffer?)"
            )
        primitive_id = self._inflight.popleft()
        line = self.probe(primitive_id)
        if line is not None and line.lock_count > 0:
            line.lock_count -= 1
            if line.lock_count == 0:
                self.buffer.unlock(line.abp)

    def drain_inflight(self) -> None:
        """Consume everything outstanding (end of frame)."""
        while self._inflight:
            self._consume_oldest()

    def _note_forced_unlock(self) -> None:
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            oldest = self._inflight[0] if self._inflight else -1
            tracer.opt_decision(self.name, self.stats, op="forced_unlock",
                                primitive_id=oldest, opt_number=None)

    # ------------------------------------------------------------------
    # Eviction machinery
    # ------------------------------------------------------------------
    def _attribute_writes(self, line: PrimitiveLine) -> list[L2Request]:
        return [
            L2Request(address=address, is_write=True,
                      region=Region.PB_ATTRIBUTES,
                      last_tile_rank=line.last_use_rank)
            for address in self.attributes.attribute_addresses(line.primitive_id)
        ]

    def _evict(self, line: PrimitiveLine) -> list[L2Request]:
        del self._sets[self.set_of(line.primitive_id)][line.primitive_id]
        self.buffer.free(line.abp)
        self.stats.evictions += 1
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.opt_decision(self.name, self.stats, op="evict",
                                primitive_id=line.primitive_id,
                                opt_number=self._effective_opt(line),
                                dirty=line.dirty)
        if line.dirty:
            self.stats.dirty_evictions += 1
            return self._attribute_writes(line)
        return []

    def _unlocked_in_set(self, set_index: int) -> list[PrimitiveLine]:
        return [line for line in self._sets[set_index].values()
                if not line.locked]

    def _victim_in_set(self, set_index: int) -> PrimitiveLine | None:
        candidates = self._unlocked_in_set(set_index)
        if not candidates:
            return None
        return max(candidates, key=self._effective_opt)

    def _global_victim(self) -> PrimitiveLine | None:
        best: PrimitiveLine | None = None
        for lines in self._sets:
            for line in lines.values():
                if line.locked:
                    continue
                if best is None or self._effective_opt(line) > self._effective_opt(best):
                    best = line
        return best

    def _make_room_in_buffer(self, needed: int) -> list[L2Request]:
        """Evict primitives (greatest OPT Number first) until ``needed``
        attribute entries are free (paper Section III-C.3, Miss)."""
        requests: list[L2Request] = []
        while not self.buffer.can_allocate(needed):
            victim = self._global_victim()
            if victim is None:
                # Everything is locked: the Rasterizer must make progress.
                self.stats.forced_unlocks += 1
                self._note_forced_unlock()
                self._consume_oldest()
                continue
            self.stats.space_evictions += 1
            requests.extend(self._evict(victim))
        return requests

    # ------------------------------------------------------------------
    # Tile Fetcher reads (paper Section III-C.3)
    # ------------------------------------------------------------------
    def read(self, primitive_id: int, num_attributes: int,
             opt_number: int, last_use_rank: int) -> AttributeCacheResult:
        if num_attributes > self.buffer.num_entries:
            # A read must deliver through the Attribute Buffer; a
            # primitive that cannot fit is a configuration error (writes
            # merely bypass, but reads have nowhere to stage the data).
            raise ValueError(
                f"primitive {primitive_id} has {num_attributes} attributes "
                f"but the Attribute Buffer holds only "
                f"{self.buffer.num_entries} entries"
            )
        self.stats.reads += 1
        set_index = self.set_of(primitive_id)
        line = self._sets[set_index].get(primitive_id)
        tracer = obs_trace.ACTIVE
        if line is not None:
            # Hit: lock, refresh the OPT Number from the request, hand the
            # ABP to the Rasterizer.
            line.opt_number = opt_number
            self._lock(line)
            if tracer is not None:
                tracer.opt_decision(self.name, self.stats, op="read_hit",
                                    primitive_id=primitive_id,
                                    opt_number=opt_number)
            return AttributeCacheResult(hit=True, bypassed=False,
                                        l2_requests=(), abp=line.abp)

        self.stats.read_misses += 1
        if tracer is not None:
            tracer.opt_decision(self.name, self.stats, op="read_miss",
                                primitive_id=primitive_id,
                                opt_number=opt_number)
        requests: list[L2Request] = []

        # A line must be freed in this set.
        while len(self._sets[set_index]) >= self.ways:
            victim = self._victim_in_set(set_index)
            if victim is None:
                self.stats.forced_unlocks += 1
                self._note_forced_unlock()
                self._consume_oldest()
                continue
            requests.extend(self._evict(victim))

        # Enough Attribute Buffer slots for all the attributes.
        requests.extend(self._make_room_in_buffer(num_attributes))

        abp = self.buffer.allocate(primitive_id, num_attributes)
        line = PrimitiveLine(
            primitive_id=primitive_id, num_attributes=num_attributes,
            abp=abp, opt_number=opt_number, last_use_rank=last_use_rank,
            dirty=False,
        )
        self._sets[set_index][primitive_id] = line
        self._lock(line)
        # Fetch every attribute from the L2 (one MSHR request each).
        requests.extend(
            L2Request(address=address, is_write=False,
                      region=Region.PB_ATTRIBUTES,
                      last_tile_rank=last_use_rank)
            for address in self.attributes.attribute_addresses(primitive_id)
        )
        return AttributeCacheResult(hit=False, bypassed=False,
                                    l2_requests=tuple(requests), abp=abp)

    # ------------------------------------------------------------------
    # Polygon List Builder writes (paper Section III-C.4)
    # ------------------------------------------------------------------
    def write(self, primitive_id: int, num_attributes: int,
              opt_number: int, last_use_rank: int) -> AttributeCacheResult:
        self.stats.writes += 1
        set_index = self.set_of(primitive_id)
        if primitive_id in self._sets[set_index]:
            raise RuntimeError(
                f"primitive {primitive_id} written twice into PB-Attributes"
            )

        def bypass() -> AttributeCacheResult:
            self.stats.write_bypasses += 1
            tracer = obs_trace.ACTIVE
            if tracer is not None:
                tracer.opt_decision(self.name, self.stats, op="write_bypass",
                                    primitive_id=primitive_id,
                                    opt_number=opt_number)
            writes = tuple(
                L2Request(address=address, is_write=True,
                          region=Region.PB_ATTRIBUTES,
                          last_tile_rank=last_use_rank)
                for address in self.attributes.attribute_addresses(primitive_id)
            )
            return AttributeCacheResult(hit=False, bypassed=True,
                                        l2_requests=writes)

        requests: list[L2Request] = []
        request_opt = opt_number

        if len(self._sets[set_index]) >= self.ways:
            if not self.config.write_bypass:
                victim = self._victim_in_set(set_index)
                if victim is None:
                    return bypass()  # fully locked set: nowhere to put it
                requests.extend(self._evict(victim))
            else:
                victim = self._victim_in_set(set_index)
                if victim is None:
                    return bypass()
                # Evict only if that line's next use is strictly farther
                # than the incoming primitive's first use; equal or nearer
                # means every resident line is needed sooner: bypass.
                if self._effective_opt(victim) > request_opt:
                    requests.extend(self._evict(victim))
                else:
                    return bypass()

        # Attribute Buffer space, under the same OPT comparison rule.
        while not self.buffer.can_allocate(num_attributes):
            victim = self._global_victim()
            if victim is None:
                # Fully locked buffer: already-evicted lines stay evicted,
                # the incoming write bypasses to the L2.
                return AttributeCacheResult(
                    hit=False, bypassed=True,
                    l2_requests=tuple(requests) + bypass().l2_requests,
                )
            if self.config.write_bypass \
                    and self._effective_opt(victim) <= request_opt:
                result = bypass()
                return AttributeCacheResult(
                    hit=False, bypassed=True,
                    l2_requests=tuple(requests) + result.l2_requests,
                )
            self.stats.space_evictions += 1
            requests.extend(self._evict(victim))

        abp = self.buffer.allocate(primitive_id, num_attributes)
        self._sets[set_index][primitive_id] = PrimitiveLine(
            primitive_id=primitive_id, num_attributes=num_attributes,
            abp=abp, opt_number=opt_number, last_use_rank=last_use_rank,
            dirty=True,
        )
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.opt_decision(self.name, self.stats, op="write_insert",
                                primitive_id=primitive_id,
                                opt_number=opt_number)
        return AttributeCacheResult(hit=False, bypassed=False,
                                    l2_requests=tuple(requests), abp=abp)

    # ------------------------------------------------------------------
    # Frame teardown
    # ------------------------------------------------------------------
    def flush(self) -> list[L2Request]:
        """Evict everything; dirty primitives write their attributes back."""
        self.drain_inflight()
        requests: list[L2Request] = []
        for lines in self._sets:
            for line in list(lines.values()):
                requests.extend(self._evict(line))
        return requests
