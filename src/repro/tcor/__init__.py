"""TCOR core: the split Tile Cache with OPT replacement and the
dead-line-aware L2 (paper Section III).

- :mod:`repro.tcor.attribute_buffer` — the linked-list attribute store.
- :mod:`repro.tcor.attribute_cache` — Primitive Buffer + Attribute
  Buffer with OPT-number replacement and write bypass.
- :mod:`repro.tcor.primitive_list_cache` — LRU cache over the
  interleaved PB-Lists layout.
- :mod:`repro.tcor.l2_policy` — dead-line priority replacement for the
  shared L2, plus writeback suppression for dead lines.
- :mod:`repro.tcor.baseline_tile_cache` — the unified LRU Tile Cache the
  paper compares against.
- :mod:`repro.tcor.system` — end-to-end frame simulation of both
  organizations over a workload.
"""

from repro.tcor.attribute_buffer import AttributeBuffer
from repro.tcor.attribute_cache import AttributeCache, AttributeCacheResult
from repro.tcor.primitive_list_cache import PrimitiveListCache
from repro.tcor.l2_policy import DeadLinePriorityPolicy, TcorSharedL2, TileProgress
from repro.tcor.baseline_tile_cache import BaselineTileCache
from repro.tcor.system import (
    SystemResult,
    simulate_baseline,
    simulate_tcor,
)

__all__ = [
    "AttributeBuffer",
    "AttributeCache",
    "AttributeCacheResult",
    "BaselineTileCache",
    "DeadLinePriorityPolicy",
    "PrimitiveListCache",
    "SystemResult",
    "TcorSharedL2",
    "TileProgress",
    "simulate_baseline",
    "simulate_tcor",
]
