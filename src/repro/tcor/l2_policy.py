"""TCOR's L2 enhancements (paper Section III-D).

Every L2 line carries a 2-bit region tag (PB-Lists / PB-Attributes /
other) and a 12-bit last-tile field.  The Tile Fetcher signals the L2
each time it finishes a tile; a Parameter Buffer line whose last tile
has already been processed is *dead*: it will never be read again.

Replacement priority (Section III-D.2):

1. dead Parameter Buffer lines (never written back, even if dirty);
2. non-Parameter-Buffer lines (textures/instructions/vertices — always
   clean, so eviction is free);
3. live Parameter Buffer lines.

LRU orders lines within each priority class.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

from repro.caches.hierarchy import MemoryCounters, SharedL2
from repro.caches.line import CacheLine, LineMeta
from repro.caches.policies.base import AccessContext, ReplacementPolicy
from repro.caches.set_assoc import SetAssociativeCache
from repro.obs import trace as obs_trace
from repro.workloads.trace import Region


@dataclass
class TileProgress:
    """Shared 'last tile finished' register (NULL before the first tile).

    The Tile Fetcher bumps it on every ``TileDone``; the L2 policy reads
    it to classify Parameter Buffer lines as dead or live.
    """

    completed_rank: int = -1

    def tile_done(self, rank: int) -> None:
        if rank < self.completed_rank:
            raise ValueError("tiles complete in traversal order")
        self.completed_rank = rank

    def reset(self) -> None:
        self.completed_rank = -1


def line_is_dead(meta: LineMeta, progress: TileProgress) -> bool:
    """A PB line is dead once its last-use tile has been processed."""
    if meta.region not in (int(Region.PB_LISTS), int(Region.PB_ATTRIBUTES)):
        return False
    return (meta.last_tile_rank is not None
            and meta.last_tile_rank <= progress.completed_rank)


class DeadLinePriorityPolicy(ReplacementPolicy):
    """dead PB > non-PB > live PB, LRU within each class."""

    name = "dead_line_priority"

    def __init__(self, progress: TileProgress) -> None:
        self.progress = progress
        self._recency: dict[int, OrderedDict[int, None]] = {}

    def _set(self, set_index: int) -> OrderedDict[int, None]:
        return self._recency.setdefault(set_index, OrderedDict())

    def on_insert(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        self._set(set_index)[tag] = None

    def on_hit(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        self._set(set_index).move_to_end(tag)

    def _priority(self, line: CacheLine) -> int:
        if line_is_dead(line.meta, self.progress):
            return 0
        if line.meta.region not in (int(Region.PB_LISTS),
                                    int(Region.PB_ATTRIBUTES)):
            return 1
        return 2

    def victim(self, set_index: int, candidates: Sequence[CacheLine],
               ctx: AccessContext) -> int:
        by_tag = {line.tag: line for line in candidates}
        best_tag: int | None = None
        best_priority = 3
        # Recency order is oldest first, so the first line seen in each
        # priority class is its LRU member.
        for tag in self._set(set_index):
            line = by_tag.get(tag)
            if line is None:
                continue
            priority = self._priority(line)
            if priority == 0:
                return tag
            if priority < best_priority:
                best_priority = priority
                best_tag = tag
        if best_tag is None:
            raise RuntimeError("victim() called with no evictable candidate")
        return best_tag

    def on_evict(self, set_index: int, tag: int) -> None:
        self._set(set_index).pop(tag, None)

    def reset(self) -> None:
        self._recency.clear()


class TcorSharedL2(SharedL2):
    """Shared L2 with dead-line writeback suppression.

    A dead dirty line needs no writeback: the data will never be read
    again this frame, and the Parameter Buffer is rebuilt from scratch
    next frame (paper Section III-D.2).
    """

    def __init__(self, l2: SetAssociativeCache, progress: TileProgress,
                 memory: MemoryCounters | None = None) -> None:
        super().__init__(l2, memory)
        self.progress = progress

    def access(self, address: int, is_write: bool,
               meta: LineMeta | None = None) -> tuple[int, int]:
        region = meta.region if meta else None
        result = self.l2.access(address, is_write=is_write, meta=meta)
        mem_reads = mem_writes = 0
        if not result.hit and not result.bypassed and not is_write:
            # Read-miss fill; write misses allocate without fetching.
            self.memory.record(is_write=False, region=region)
            mem_reads += 1
        if result.bypassed:
            self.memory.record(is_write=is_write, region=region)
            if is_write:
                mem_writes += 1
            else:
                mem_reads += 1
        if result.evicted is not None:
            evicted_dead = line_is_dead(result.evicted.meta, self.progress)
            if evicted_dead:
                self._note_dead_line(result.evicted)
            if result.evicted.dirty:
                if evicted_dead:
                    self.l2.stats.note_dead_writeback_avoided()
                else:
                    self.memory.record(is_write=True,
                                       region=result.evicted.meta.region)
                    mem_writes += 1
        return mem_reads, mem_writes

    def _note_dead_line(self, evicted) -> None:
        """Account (and trace) one dead PB line leaving the L2."""
        self.l2.stats.note_dead_eviction()
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.dead_line_drop(self.l2.name, tag=evicted.tag,
                                  dirty=evicted.dirty,
                                  region=evicted.meta.region)

    def flush(self) -> int:
        writebacks = 0
        for evicted in self.l2.flush():
            evicted_dead = line_is_dead(evicted.meta, self.progress)
            if evicted_dead:
                self._note_dead_line(evicted)
            if evicted.dirty:
                if evicted_dead:
                    self.l2.stats.note_dead_writeback_avoided()
                else:
                    self.memory.record(is_write=True,
                                       region=evicted.meta.region)
                    writebacks += 1
        return writebacks
