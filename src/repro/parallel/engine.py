"""Process-pool fan-out over the experiment job matrix.

The paper's figure regeneration is embarrassingly parallel: every
(benchmark, tile-cache size, organization) simulation is independent —
the same disjoint-work structure TBR itself exploits across tiles.
:class:`ParallelSimulationCache` enumerates the exact jobs the
requested experiment modules will ask for, fans them out across a
``ProcessPoolExecutor``, and memoizes the returned
:class:`~repro.tcor.system.SystemResult` records under the same keys
the serial cache uses — so figure modules are oblivious to how their
inputs were produced, and parallel runs are byte-identical to serial
ones (every workload is seeded, no state crosses workloads).

Workload construction happens *inside* each worker (one build per
benchmark, shared by all of that benchmark's variants), so nothing
large is ever pickled into the pool; only compact ``SystemResult``
counter records come back.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass

from repro.config import TCORConfig
from repro.obs import trace as obs_trace
from repro.experiments.common import (
    DEFAULT_SCALE,
    TILE_CACHE_SIZES,
    SimulationCache,
)
from repro.tcor.system import SystemResult, simulate_baseline, simulate_tcor
from repro.workloads.suite import BENCHMARKS, build_workload

# Which cache-backed simulation variants each experiment module
# consumes (modules that only need workloads build them in-process).
EXPERIMENT_VARIANTS: dict[str, tuple[str, ...]] = {
    "headline": ("baseline", "tcor"),
    "fig14": ("baseline", "tcor"),
    "fig16": ("baseline", "tcor"),
    "fig18": ("baseline", "tcor"),
    "fig20": ("baseline", "tcor", "tcor_no_l2"),
    "fig22": ("baseline", "tcor"),
}
_ALL_KINDS = ("baseline", "tcor", "tcor_no_l2")


@dataclass(frozen=True)
class SimJob:
    """One full-system simulation: a cell of the experiment matrix."""

    kind: str             # "baseline" | "tcor" | "tcor_no_l2"
    alias: str
    tile_cache_bytes: int


def enumerate_jobs(names, aliases) -> list[SimJob]:
    """The job matrix the named experiments need, in deterministic
    (benchmark-major) order."""
    kinds: set[str] = set()
    for name in names:
        kinds.update(EXPERIMENT_VARIANTS.get(name, ()))
    jobs = []
    for alias in aliases:
        for kind in _ALL_KINDS:
            if kind in kinds:
                for size in TILE_CACHE_SIZES.values():
                    jobs.append(SimJob(kind, alias, size))
    return jobs


def simulate_job_batch(alias: str, scale: float,
                       jobs: tuple[SimJob, ...],
                       use_replay: bool = True,
                       trace_dir: str | None = None
                       ) -> list[tuple[SimJob, SystemResult]]:
    """Worker entry point: one trace compile, then every variant.

    Must stay a module-level function (pickled by name into the pool)
    and must mirror :class:`SimulationCache`'s simulation calls exactly
    so pooled and lazy results are interchangeable.

    ``use_replay`` (default) compiles the workload's access trace once
    and replays it through the fast kernels for every job in the batch
    — bit-identical to the live calls, which remain the fallback for
    ineligible configurations.  ``trace_dir``, when given, is a
    :class:`~repro.parallel.store.DiskCache` directory to load/persist
    the compiled trace through: on a trace hit the worker skips
    building the workload (geometry + binning) entirely.

    With the fork start method a worker inherits the parent's module
    state, including any tracer installed in ``obs.trace.ACTIVE`` at
    fork time — whose sinks hold duplicated file handles.  Simulating
    under that inherited tracer would interleave worker events into the
    parent's trace stream, so the batch runs under an explicit
    ``activation(None)`` scope: process-local, restored on exit, and
    the only module state this worker ever touches.
    """
    with obs_trace.activation(None):
        spec = BENCHMARKS[alias]
        replay = None
        if use_replay:
            from repro import replay as replay_module

            if replay_module.replay_allowed() is None:
                replay = replay_module
        disk = None
        trace = None
        if replay is not None and trace_dir is not None:
            from repro.parallel.store import DiskCache

            disk = DiskCache(trace_dir)
            trace = disk.get_trace(spec, scale)
        workload = None
        results = []
        for job in jobs:
            result = None
            if replay is not None:
                if trace is None:
                    if workload is None:
                        workload = build_workload(spec, scale=scale)
                    trace = replay.compiled_trace_for(workload)
                    if disk is not None:
                        disk.put_trace(spec, scale, trace)
                try:
                    if job.kind == "baseline":
                        result = replay.replay_baseline(
                            trace,
                            tile_cache_bytes=job.tile_cache_bytes).result
                    else:
                        result = replay.replay_tcor(
                            trace,
                            tcor=TCORConfig.for_total_size(
                                job.tile_cache_bytes),
                            l2_enhancements=(job.kind == "tcor"),
                        ).result
                except replay.ReplayUnsupportedError:
                    result = None
            if result is None:
                if workload is None:
                    workload = build_workload(spec, scale=scale)
                if job.kind == "baseline":
                    result = simulate_baseline(
                        workload, tile_cache_bytes=job.tile_cache_bytes)
                else:
                    result = simulate_tcor(
                        workload,
                        tcor=TCORConfig.for_total_size(job.tile_cache_bytes),
                        l2_enhancements=(job.kind == "tcor"),
                    )
            results.append((job, result))
        return results


class ParallelSimulationCache(SimulationCache):
    """A drop-in :class:`SimulationCache` with process-pool prefetch.

    ``prefetch`` populates the memo table up front; everything not
    prefetched (or requested later) falls back to the inherited lazy
    path, so correctness never depends on the prefetch set being
    complete.
    """

    def __init__(self, scale: float = DEFAULT_SCALE,
                 aliases: tuple[str, ...] | None = None,
                 jobs: int = 1, disk=None, use_replay: bool = True,
                 trace_cache: bool = True) -> None:
        super().__init__(scale=scale, aliases=aliases, disk=disk,
                         use_replay=use_replay, trace_cache=trace_cache)
        self.jobs = max(1, int(jobs))

    def _worker_trace_dir(self) -> str | None:
        """Trace-store directory for pool workers (compiled once by the
        first worker, loaded by the rest), or ``None`` when disabled."""
        if not (self.use_replay and self.trace_cache):
            return None
        directory = getattr(self.disk, "directory", None)
        return str(directory) if directory is not None else None

    # -- keys and storage ----------------------------------------------
    def _job_key(self, job: SimJob) -> tuple:
        if job.kind == "baseline":
            return self.baseline_key(job.alias, job.tile_cache_bytes)
        tcor = TCORConfig.for_total_size(job.tile_cache_bytes)
        return self.tcor_key(job.alias, job.tile_cache_bytes, tcor,
                              l2_enhancements=(job.kind == "tcor"))

    def _store_job(self, job: SimJob, result: SystemResult) -> None:
        self._systems[self._job_key(job)] = result
        if self.disk is not None:
            spec = BENCHMARKS[job.alias]
            if job.kind == "baseline":
                self.disk.put_baseline(spec, self.scale,
                                       job.tile_cache_bytes, result)
            else:
                self.disk.put_tcor(
                    spec, self.scale,
                    TCORConfig.for_total_size(job.tile_cache_bytes),
                    l2_enhancements=(job.kind == "tcor"), result=result)

    def _probe_disk(self, job: SimJob) -> SystemResult | None:
        if self.disk is None:
            return None
        spec = BENCHMARKS[job.alias]
        if job.kind == "baseline":
            return self.disk.get_baseline(spec, self.scale,
                                          job.tile_cache_bytes)
        return self.disk.get_tcor(
            spec, self.scale, TCORConfig.for_total_size(job.tile_cache_bytes),
            l2_enhancements=(job.kind == "tcor"))

    # -- fan-out -------------------------------------------------------
    def prefetch(self, names=None) -> int:
        """Simulate (in parallel) every job the named experiments need.

        ``names`` are resolved experiment keys (``fig14`` etc.); with
        ``None`` the full cache-backed matrix is assumed.  Jobs already
        memoized or on disk are skipped.  Returns the number of jobs
        actually simulated.
        """
        names = tuple(names) if names is not None else tuple(EXPERIMENT_VARIANTS)
        pending = []
        for job in enumerate_jobs(names, self.aliases):
            key = self._job_key(job)
            if key in self._systems:
                continue
            hit = self._probe_disk(job)
            if hit is not None:
                self._systems[key] = hit
                continue
            pending.append(job)
        if not pending:
            return 0

        by_alias: dict[str, list[SimJob]] = {}
        for job in pending:
            by_alias.setdefault(job.alias, []).append(job)

        if self.jobs == 1 or len(by_alias) == 1:
            # Serial fallback: run in-process (and reuse this cache's
            # workload memo instead of rebuilding in a worker).
            for job in pending:
                if job.kind == "baseline":
                    self.baseline(job.alias, job.tile_cache_bytes)
                else:
                    self.tcor(job.alias, job.tile_cache_bytes,
                              l2_enhancements=(job.kind == "tcor"))
            return len(pending)

        workers = min(self.jobs, len(by_alias))
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            # The worker's only reachable global write is its own scoped
            # activation(None) — the fork-hygiene reset above, process-
            # local and restored on exit.
            trace_dir = self._worker_trace_dir()
            futures = [
                pool.submit(simulate_job_batch, alias,  # lint: disable=SIM101
                            self.scale, tuple(batch), self.use_replay,
                            trace_dir)
                for alias, batch in by_alias.items()
            ]
            for future in as_completed(futures):
                for job, result in future.result():
                    self._store_job(job, result)
        except BaseException:
            # Ctrl-C (or a server drain cancelling the prefetch) must
            # not block on — or orphan — workers still crunching queued
            # batches: drop everything not yet started and re-raise
            # without waiting for stragglers.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown()
        return len(pending)
