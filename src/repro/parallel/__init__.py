"""Parallel experiment engine: process-pool fan-out + persistent cache.

Three layers (see DESIGN.md, "Parallel experiment engine"):

- :class:`~repro.parallel.engine.ParallelSimulationCache` — a drop-in
  :class:`~repro.experiments.common.SimulationCache` that prefetches
  the experiment job matrix across a process pool;
- :class:`~repro.parallel.store.DiskCache` — a content-addressed
  on-disk store keyed by (benchmark spec, machine config, scale,
  simulator-code signature), so repeated invocations skip simulation
  entirely and any simulator edit invalidates cleanly;
- the hot-path tuning the equivalence suite gates lives with the
  simulator itself (``repro/tcor/system.py``, ``repro/caches``).
"""

from repro.parallel.engine import (
    EXPERIMENT_VARIANTS,
    ParallelSimulationCache,
    SimJob,
    enumerate_jobs,
    simulate_job_batch,
)
from repro.parallel.store import (
    DEFAULT_CACHE_DIR,
    DiskCache,
    ResultTier,
    experiment_code_signature,
    result_from_dict,
    result_to_dict,
    simulation_code_signature,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "DiskCache",
    "EXPERIMENT_VARIANTS",
    "ParallelSimulationCache",
    "ResultTier",
    "SimJob",
    "enumerate_jobs",
    "experiment_code_signature",
    "result_from_dict",
    "result_to_dict",
    "simulate_job_batch",
    "simulation_code_signature",
]
