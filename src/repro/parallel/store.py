"""Persistent, content-addressed store for simulation results.

A full-system simulation is a pure function of (benchmark spec, machine
configuration, geometry scale, simulator code).  The store keys each
:class:`~repro.tcor.system.SystemResult` by a SHA-256 over exactly
those inputs — the code contribution reuses the lint engine's
package-signature idea: a hash of every simulator source file, so *any*
edit to the simulator invalidates every cached record cleanly, while
edits to experiment formatting, lint rules or this store leave warm
caches warm.

Records are one JSON file per key under ``.repro-cache/`` (override
with ``REPRO_CACHE_DIR`` or a constructor argument); writes go through
a temp file + ``os.replace`` so concurrent workers never publish a
torn record, and unreadable records degrade to cache misses.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
from abc import ABC, abstractmethod
from dataclasses import asdict, fields
from pathlib import Path

from repro import envvars
from repro.config import DEFAULT_GPU, GPUConfig, TCORConfig
from repro.tcor.system import SystemResult
from repro.workloads.suite import BenchmarkSpec

CACHE_VERSION = 2
DEFAULT_CACHE_DIR = ".repro-cache"

# The simulator proper: everything a SystemResult's counters depend on.
# Excludes experiments/analysis/lint/parallel/perf, whose edits cannot
# change simulation outcomes.
_SIMULATION_SOURCES = (
    "config.py",
    "constants.py",
    "anim",
    "caches",
    "dram",
    "energy",
    "geometry",
    "pbuffer",
    "raster",
    "tcor",
    "textures",
    "tiling",
    "workloads",
)

# Cached experiment *tables* additionally depend on the code that
# sweeps, aggregates and formats: any edit here must invalidate table
# records while leaving raw SystemResult records warm.
_EXPERIMENT_SOURCES = _SIMULATION_SOURCES + ("analysis", "experiments",
                                             "timing")

# Compiled access traces depend only on what shapes the event stream
# and the IR itself — deliberately *narrower* than the simulation
# signature, so a cache-model edit (tcor/, caches/) re-simulates
# against warm traces instead of recompiling every workload.
_TRACE_SOURCES = (
    "config.py",
    "constants.py",
    "anim",
    "geometry",
    "pbuffer",
    "replay",
    "tiling",
    "workloads",
)

# Compiled traces are big (npz archives, not counter records), so the
# trace store is capped: least-recently-used archives are evicted once
# the total size passes the budget.
_TRACE_CACHE_BYTES_ENV = envvars.TRACE_CACHE_BYTES
DEFAULT_TRACE_CACHE_BYTES = 512 * 1024 * 1024


def _tree_signature(root: Path, names: tuple[str, ...]) -> str:
    digest = hashlib.sha256()
    for rel in names:
        path = root / rel
        if path.is_file():
            digest.update(rel.encode())
            digest.update(path.read_bytes())
        elif path.is_dir():
            for source in sorted(path.rglob("*.py")):
                digest.update(source.relative_to(root).as_posix().encode())
                digest.update(source.read_bytes())
    return digest.hexdigest()


def _package_root(package_root: str | os.PathLike | None) -> Path:
    return (Path(package_root) if package_root is not None
            else Path(__file__).resolve().parent.parent)


def simulation_code_signature(package_root: str | os.PathLike | None = None
                              ) -> str:
    """Hash of the simulator's own sources (code-edit invalidation).

    ``package_root`` defaults to the installed ``repro`` package; tests
    point it at a scratch tree to exercise invalidation without
    touching real sources.
    """
    return _tree_signature(_package_root(package_root), _SIMULATION_SOURCES)


def experiment_code_signature(package_root: str | os.PathLike | None = None
                              ) -> str:
    """Hash of simulator + experiment/analysis sources, for table
    records: coarser than :func:`simulation_code_signature` because a
    formatting or sweep change alters the table without altering any
    ``SystemResult``."""
    return _tree_signature(_package_root(package_root), _EXPERIMENT_SOURCES)


def trace_code_signature(package_root: str | os.PathLike | None = None
                         ) -> str:
    """Hash of the sources a compiled access trace depends on (the
    event stream producers + the trace compiler)."""
    return _tree_signature(_package_root(package_root), _TRACE_SOURCES)


def result_to_dict(result: SystemResult) -> dict:
    """JSON-serializable form of one ``SystemResult`` record."""
    return asdict(result)


def result_from_dict(data: dict) -> SystemResult:
    """Inverse of :func:`result_to_dict`; unknown keys are dropped so
    old records stay loadable when ``SystemResult`` grows a field."""
    names = {f.name for f in fields(SystemResult)}
    return SystemResult(**{key: value for key, value in data.items()
                           if key in names})


class ResultTier(ABC):
    """One level of a tiered result cache (memory → disk → compute).

    The serving layer stacks tiers in front of the shared
    :class:`DiskCache`: a router-local in-memory LRU first, then the
    concurrent-writer-safe disk store every worker and CLI shares.
    The contract is deliberately tiny — records are the JSON-able
    ``{"result", "metrics", "invariant_failures"}`` dicts the wire
    schema already speaks, keyed by the deterministic request key —
    so a tier neither knows nor cares what sits above or below it.

    ``context`` carries whatever the tier needs beyond the key (the
    disk tier re-derives the store's spec/config payload from the
    original request; the memory tier ignores it).  Implementations
    count their own ``hits``/``misses`` so hit-rate metrics fall out
    of a snapshot, not instrumentation at every call site.
    """

    name: str = "tier"

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @abstractmethod
    def get(self, key: str, context=None) -> dict | None:
        """The cached record for ``key``, or ``None`` on a miss."""

    @abstractmethod
    def put(self, key: str, record: dict, context=None) -> None:
        """Admit one record; eviction policy is the tier's business."""

    def stats_line(self) -> str:
        return f"{self.name} tier: {self.hits} hits, {self.misses} misses"


# Distinguishes temp files written by concurrent threads of one process
# (the serve scheduler's write-through and the pool engine share a
# cache directory); the pid component covers concurrent processes.
_TMP_SEQUENCE = itertools.count()


class DiskCache:
    """Content-addressed ``SystemResult`` records on disk.

    ``get_*``/``put_*`` mirror the :class:`SimulationCache` entry
    points; the in-memory cache consults this object purely through
    them, so it stays duck-typed and import-cycle-free.
    """

    def __init__(self, directory: str | os.PathLike | None = None,
                 signature: str | None = None,
                 table_signature: str | None = None,
                 trace_signature: str | None = None,
                 trace_cache_bytes: int | None = None) -> None:
        if directory is None:
            directory = os.environ.get(envvars.CACHE_DIR) \
                or DEFAULT_CACHE_DIR
        self.directory = Path(directory)
        self.signature = (signature if signature is not None
                          else simulation_code_signature())
        self.table_signature = (table_signature if table_signature is not None
                                else experiment_code_signature())
        self.trace_signature = (trace_signature if trace_signature is not None
                                else trace_code_signature())
        if trace_cache_bytes is None:
            trace_cache_bytes = int(
                os.environ.get(_TRACE_CACHE_BYTES_ENV)
                or DEFAULT_TRACE_CACHE_BYTES)
        self.trace_cache_bytes = trace_cache_bytes
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keys ----------------------------------------------------------
    def _key(self, payload: dict) -> str:
        canonical = json.dumps(
            {"version": CACHE_VERSION, "signature": self.signature,
             "payload": payload},
            sort_keys=True, separators=(",", ":"), default=str,
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    @staticmethod
    def _anim_payload(anim) -> dict | None:
        # Animated sequences are part of simulation identity; the
        # single-frame default keys to None so pre-animation records
        # and requests share keys.
        if anim is None:
            return None
        from repro.anim.spec import anim_to_payload

        return anim_to_payload(anim)

    @staticmethod
    def _baseline_payload(spec: BenchmarkSpec, scale: float,
                          tile_cache_bytes: int,
                          gpu: GPUConfig | None = None,
                          rendering_elimination: bool = False,
                          anim=None) -> dict:
        gpu = (gpu or DEFAULT_GPU).with_tile_cache_size(tile_cache_bytes)
        return {"kind": "baseline", "spec": asdict(spec), "scale": scale,
                "gpu": asdict(gpu),
                "rendering_elimination": rendering_elimination,
                "anim": DiskCache._anim_payload(anim)}

    @staticmethod
    def _tcor_payload(spec: BenchmarkSpec, scale: float,
                      tcor: TCORConfig, l2_enhancements: bool,
                      gpu: GPUConfig | None = None,
                      rendering_elimination: bool = False,
                      anim=None) -> dict:
        return {"kind": "tcor", "spec": asdict(spec), "scale": scale,
                "gpu": asdict(gpu or DEFAULT_GPU), "tcor": asdict(tcor),
                "l2_enhancements": l2_enhancements,
                "rendering_elimination": rendering_elimination,
                "anim": DiskCache._anim_payload(anim)}

    # -- record I/O ----------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _load(self, key: str) -> dict | None:
        path = self._path(key)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if record.get("version") != CACHE_VERSION or "data" not in record:
            self.misses += 1
            return None
        self.hits += 1
        return record["data"]

    def _read(self, key: str) -> SystemResult | None:
        data = self._load(key)
        return None if data is None else result_from_dict(data)

    def _write(self, key: str, meta: dict, data: dict | list) -> None:
        # The temp name is unique per (process, thread, write), so any
        # number of concurrent writers — pool workers, server batches,
        # separate CLI invocations — publish whole records via
        # ``os.replace`` without ever clobbering each other's temp
        # files; the last writer of one key wins with identical bytes.
        record = {"version": CACHE_VERSION, "signature": self.signature,
                  "meta": meta, "data": data}
        path = self._path(key)
        tmp = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}."
            f"{next(_TMP_SEQUENCE)}")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(record, sort_keys=True, default=str))
            os.replace(tmp, path)
            self.stores += 1
        except OSError:
            # Best-effort persistence: a full disk or read-only cache
            # directory must never fail the simulation itself.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    # -- SimulationCache-facing API ------------------------------------
    def get_baseline(self, spec: BenchmarkSpec, scale: float,
                     tile_cache_bytes: int,
                     rendering_elimination: bool = False,
                     anim=None) -> SystemResult | None:
        return self._read(
            self._key(self._baseline_payload(
                spec, scale, tile_cache_bytes,
                rendering_elimination=rendering_elimination, anim=anim)))

    def put_baseline(self, spec: BenchmarkSpec, scale: float,
                     tile_cache_bytes: int, result: SystemResult,
                     rendering_elimination: bool = False,
                     anim=None) -> None:
        payload = self._baseline_payload(
            spec, scale, tile_cache_bytes,
            rendering_elimination=rendering_elimination, anim=anim)
        meta = {"kind": "baseline", "alias": spec.alias, "scale": scale,
                "tile_cache_bytes": tile_cache_bytes}
        self._write(self._key(payload), meta, result_to_dict(result))

    def get_tcor(self, spec: BenchmarkSpec, scale: float, tcor: TCORConfig,
                 l2_enhancements: bool,
                 rendering_elimination: bool = False,
                 anim=None) -> SystemResult | None:
        return self._read(
            self._key(self._tcor_payload(
                spec, scale, tcor, l2_enhancements,
                rendering_elimination=rendering_elimination, anim=anim)))

    def put_tcor(self, spec: BenchmarkSpec, scale: float, tcor: TCORConfig,
                 l2_enhancements: bool, result: SystemResult,
                 rendering_elimination: bool = False,
                 anim=None) -> None:
        payload = self._tcor_payload(
            spec, scale, tcor, l2_enhancements,
            rendering_elimination=rendering_elimination, anim=anim)
        meta = {"kind": "tcor", "alias": spec.alias, "scale": scale,
                "l2_enhancements": l2_enhancements}
        self._write(self._key(payload), meta, result_to_dict(result))

    # -- compiled access traces ----------------------------------------
    def _trace_key(self, spec: BenchmarkSpec, scale: float,
                   anim=None) -> str:
        # Keyed by the *trace* signature (event-stream producers + the
        # IR), not the full simulation signature: cache-model edits must
        # leave compiled traces warm.
        canonical = json.dumps(
            {"version": CACHE_VERSION, "signature": self.trace_signature,
             "payload": {"kind": "trace", "spec": asdict(spec),
                         "scale": scale,
                         "anim": self._anim_payload(anim)}},
            sort_keys=True, separators=(",", ":"), default=str,
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _trace_path(self, key: str) -> Path:
        return self.directory / f"trace-{key}.npz"

    def get_trace(self, spec: BenchmarkSpec, scale: float, anim=None):
        """The persisted compiled trace for (spec, scale), or ``None``.

        Any failure — missing file, torn archive, IR version mismatch —
        degrades to a cache miss."""
        from repro.replay import load_trace

        path = self._trace_path(self._trace_key(spec, scale, anim))
        try:
            with open(path, "rb") as handle:
                trace = load_trace(handle)
        except (OSError, ValueError, KeyError):
            self.misses += 1
            return None
        try:
            # LRU bookkeeping for the size cap; best-effort.
            os.utime(path)
        except OSError:
            pass
        self.hits += 1
        return trace

    def put_trace(self, spec: BenchmarkSpec, scale: float, trace,
                  anim=None) -> None:
        from repro.replay import save_trace

        path = self._trace_path(self._trace_key(spec, scale, anim))
        tmp = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}."
            f"{next(_TMP_SEQUENCE)}")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                save_trace(handle, trace)
            os.replace(tmp, path)
            self.stores += 1
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return
        self._enforce_trace_cap(keep=path)

    def _enforce_trace_cap(self, keep: Path) -> int:
        """Evict least-recently-used trace archives over the budget.

        The just-written archive is always spared (evicting it would
        defeat the write), so a single trace larger than the whole
        budget still persists.  Returns the number evicted."""
        try:
            archives = [(path, path.stat()) for path
                        in self.directory.glob("trace-*.npz")]
        except OSError:
            return 0
        total = sum(stat.st_size for _, stat in archives)
        evicted = 0
        # Oldest first; the spared file sorts wherever, it is skipped.
        for path, stat in sorted(archives, key=lambda item: item[1].st_mtime):
            if total <= self.trace_cache_bytes:
                break
            if path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= stat.st_size
            evicted += 1
        return evicted

    # -- runner-facing table records -----------------------------------
    def _tables_payload(self, experiment: str, scale: float,
                        aliases: tuple[str, ...]) -> dict:
        # The experiment signature rides in the payload (the envelope
        # signature covers only simulator sources), so sweep/formatting
        # edits invalidate tables without touching SystemResult records.
        return {"kind": "tables", "experiment": experiment, "scale": scale,
                "aliases": list(aliases),
                "table_signature": self.table_signature}

    def get_tables(self, experiment: str, scale: float,
                   aliases: tuple[str, ...]) -> list | None:
        """Cached :class:`ExperimentResult` list for one experiment, or
        ``None``.  A warm runner invocation skips the module entirely."""
        data = self._load(
            self._key(self._tables_payload(experiment, scale, aliases)))
        if data is None:
            return None
        from repro.experiments.common import ExperimentResult
        return [ExperimentResult(**entry) for entry in data]

    def put_tables(self, experiment: str, scale: float,
                   aliases: tuple[str, ...], results: list) -> None:
        payload = self._tables_payload(experiment, scale, aliases)
        meta = {"kind": "tables", "experiment": experiment, "scale": scale}
        self._write(self._key(payload), meta,
                    [asdict(result) for result in results])

    # -- maintenance ---------------------------------------------------
    def stats_line(self) -> str:
        return (f"disk cache: {self.hits} hits, {self.misses} misses, "
                f"{self.stores} stores ({self.directory})")

    def clear(self) -> int:
        """Delete every record (results, tables and compiled traces);
        returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for pattern in ("*.json", "trace-*.npz"):
                for path in self.directory.glob(pattern):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed
