"""Replay kernels: run cache models over the IR, bit-identically.

Each kernel re-implements one live simulator path (``simulate_baseline``
/ ``simulate_tcor``) as closure-based state machines over the compiled
trace's flat arrays, with cache state held as per-set ``{tag: [dirty,
region, rank, stamp]}`` maps.  The encoding choices are dictated by
bit-identity with the live path, which tests/test_replay_equivalence.py
gates for every figure workload and policy:

- **Insertion-ordered per-set dicts** (not flat set*ways+way arrays)
  reproduce the live cache's victim tie-breaking exactly: LRU == the
  minimum insertion/hit stamp, the dead-line policy == the minimum
  ``(priority, stamp)`` pair, and the OPT victim scan is first-maximum
  over insertion order — all of which depend on residency order.
- A single **monotonic stamp** replaces the recency ``OrderedDict``s
  (hit == restamp, insert == new stamp).
- The Attribute Buffer reduces to a **free-entry count**: chains are
  only ever allocated and freed whole, and victims are by construction
  unlocked, so the linked free list never affects the outcome.
- All addresses are pre-lowered to 64-byte **block tags**; the single
  tag namespace is valid because every cache in the hierarchy uses the
  Parameter Buffer's 64-byte block as its line size (checked, else
  :class:`ReplayUnsupportedError`).

The live simulator remains the reference oracle; the kernels carry no
authority of their own.
"""

from __future__ import annotations

from collections import deque

from repro.caches.hierarchy import MemoryCounters
from repro.caches.stats import CacheStats
from repro.config import DEFAULT_GPU, GPUConfig, TCORConfig
from repro.constants import NO_NEXT_USE_RANK
from repro.pbuffer.pmd import NO_NEXT_TILE
from repro.tcor.attribute_cache import AttributeCacheStats
from repro.tcor.system import SystemResult
from repro.workloads.trace import Region

from repro.replay.ir import (
    BUILD_PMD_WRITE,
    FETCH_ATTR_READ,
    FETCH_PMD_READ,
    CompiledTrace,
)

_FB = int(Region.FRAMEBUFFER)


class ReplayUnsupportedError(Exception):
    """The configuration steps outside what the kernels model; callers
    fall back to the live simulator."""


class ReplayOutcome:
    """A kernel's full output: the ``SystemResult`` plus the
    reconstructed ``*Stats`` objects the observability layer registers
    (byte-identical names and values to the live path)."""

    __slots__ = ("result", "l2_name", "l2_stats", "memory", "frame_stats",
                 "counters")

    def __init__(self, result, l2_name, l2_stats, memory, frame_stats,
                 counters) -> None:
        self.result = result
        self.l2_name = l2_name
        self.l2_stats = l2_stats
        self.memory = memory
        self.frame_stats = frame_stats
        self.counters = counters


def _check_supported(header, gpu: GPUConfig,
                     l1_line_bytes: tuple[int, ...]) -> None:
    block = header.block_bytes
    if gpu.l2_cache.line_bytes != block:
        raise ReplayUnsupportedError("L2 line size != PB block size")
    for line_bytes in l1_line_bytes:
        if line_bytes != block:
            raise ReplayUnsupportedError("L1 line size != PB block size")
    if header.attribute_stride != block:
        raise ReplayUnsupportedError(
            "attribute stride != PB block size (tags not consecutive)")
    if gpu.screen.num_tiles != header.num_tiles:
        raise ReplayUnsupportedError("screen geometry differs from trace")


def _region_stats(by: dict) -> dict:
    return {Region(region): {"reads": entry[0], "writes": entry[1],
                             "misses": entry[2]}
            for region, entry in by.items()}


# ----------------------------------------------------------------------
# Shared L2 engine
# ----------------------------------------------------------------------
def _l2_engine(num_sets: int, ways: int, dead_policy: bool,
               completed: list):
    """State machine for SharedL2 / TcorSharedL2 over one run.

    Returns ``(access, writeback_pb, mem_record, finalize)``.  Counter
    layout ``n``: [reads, writes, read_misses, write_misses, writebacks,
    clean_evictions, dead_evictions, dead_writebacks_avoided].
    """
    sets: list = [dict() for _ in range(num_sets)]
    n = [0] * 8
    by: dict = {}
    mem = [0, 0]
    mem_by: dict = {}
    tick = [0]

    def mem_record(is_write, region) -> None:
        mem[1 if is_write else 0] += 1
        entry = mem_by.get(region)
        if entry is None:
            entry = mem_by[region] = [0, 0]
        entry[1 if is_write else 0] += 1

    def access(tag, is_write, region, rank) -> None:
        lines = sets[tag % num_sets]
        line = lines.get(tag)
        entry = by.get(region)
        if entry is None:
            entry = by[region] = [0, 0, 0]
        if line is not None:
            if is_write:
                n[1] += 1
                entry[1] += 1
                line[0] = 1
            else:
                n[0] += 1
                entry[0] += 1
            line[1] = region
            if rank is not None:
                line[2] = rank
            line[3] = tick[0]
            tick[0] += 1
            return
        if is_write:
            n[1] += 1
            n[3] += 1
            entry[1] += 1
        else:
            n[0] += 1
            n[2] += 1
            entry[0] += 1
        entry[2] += 1
        if not is_write:
            mem_record(False, region)
        if len(lines) >= ways:
            if dead_policy:
                horizon = completed[0]
                victim_tag = None
                victim_priority = 3
                victim_stamp = 0
                for resident_tag, resident in lines.items():
                    if resident[1] <= 1:
                        resident_rank = resident[2]
                        priority = 0 if (resident_rank is not None
                                         and resident_rank <= horizon) else 2
                    else:
                        priority = 1
                    if (priority < victim_priority
                            or (priority == victim_priority
                                and resident[3] < victim_stamp)):
                        victim_priority = priority
                        victim_stamp = resident[3]
                        victim_tag = resident_tag
            else:
                victim_tag = None
                victim_stamp = None
                for resident_tag, resident in lines.items():
                    if victim_stamp is None or resident[3] < victim_stamp:
                        victim_stamp = resident[3]
                        victim_tag = resident_tag
            victim = lines.pop(victim_tag)
            if victim[0]:
                n[4] += 1
            else:
                n[5] += 1
            if dead_policy:
                victim_rank = victim[2]
                victim_dead = (victim[1] <= 1 and victim_rank is not None
                               and victim_rank <= completed[0])
                if victim_dead:
                    n[6] += 1
                if victim[0]:
                    if victim_dead:
                        n[7] += 1
                    else:
                        mem_record(True, victim[1])
            elif victim[0]:
                mem_record(True, victim[1])
        lines[tag] = [1 if is_write else 0, region, rank, tick[0]]
        tick[0] += 1

    def writeback_pb(use_dead: bool) -> None:
        """End-of-frame PB teardown (``_writeback_pb_lines``)."""
        for lines in sets:
            pb_tags = [tag for tag, line in lines.items() if line[1] <= 1]
            for tag in pb_tags:
                line = lines.pop(tag)
                if not line[0]:
                    n[5] += 1
                    continue
                n[4] += 1
                rank = line[2]
                if use_dead and rank is not None and rank <= completed[0]:
                    n[7] += 1
                else:
                    mem_record(True, line[1])

    def finalize():
        stats = CacheStats(
            reads=n[0], writes=n[1], read_misses=n[2], write_misses=n[3],
            writebacks=n[4], clean_evictions=n[5], dead_evictions=n[6],
            dead_writebacks_avoided=n[7],
            by_region=_region_stats(by),
        )
        memory = MemoryCounters(
            reads=mem[0], writes=mem[1],
            by_region={Region(region): {"reads": entry[0],
                                        "writes": entry[1]}
                       for region, entry in mem_by.items()},
        )
        return stats, memory, n, mem

    return access, writeback_pb, mem_record, finalize


# ----------------------------------------------------------------------
# Block-granularity L1s (baseline Tile Cache / Primitive List Cache)
# ----------------------------------------------------------------------
def _block_l1(num_sets: int, ways: int, l2_access, pbc: list, n: list,
              by: dict, pl: bool):
    """One frame's LRU block cache in front of the L2.

    ``pl`` selects Primitive List Cache semantics (all requests carry
    the literal PB-Lists region) over the baseline Tile Cache's
    evicted-region fallbacks (``evicted.region or request_region`` on
    eviction, ``or PB_ATTRIBUTES`` on flush — note PB_LISTS == 0 is
    falsy, exactly as in the live path).
    """
    sets: list = [dict() for _ in range(num_sets)]
    written: set = set()
    tick = [0]

    def access(tag, is_write, region, rank) -> None:
        lines = sets[tag % num_sets]
        line = lines.get(tag)
        entry = by.get(region)
        if entry is None:
            entry = by[region] = [0, 0, 0]
        if line is not None:
            if is_write:
                n[1] += 1
                entry[1] += 1
                line[0] = 1
                written.add(tag)
            else:
                n[0] += 1
                entry[0] += 1
            line[1] = region
            if rank is not None:
                line[2] = rank
            line[3] = tick[0]
            tick[0] += 1
            return
        if is_write:
            n[1] += 1
            n[3] += 1
            entry[1] += 1
        else:
            n[0] += 1
            n[2] += 1
            entry[0] += 1
        entry[2] += 1
        victim = None
        if len(lines) >= ways:
            victim_tag = None
            victim_stamp = None
            for resident_tag, resident in lines.items():
                if victim_stamp is None or resident[3] < victim_stamp:
                    victim_stamp = resident[3]
                    victim_tag = resident_tag
            victim = lines.pop(victim_tag)
            if victim[0]:
                n[4] += 1
            else:
                n[5] += 1
        lines[tag] = [1 if is_write else 0, region, rank, tick[0]]
        tick[0] += 1
        # Write-validate: a miss fetches from the L2 unless it is a
        # first-touch write to a fresh buffer block.
        if not is_write or tag in written:
            l2_access(tag, False, region, rank)
            pbc[0] += 1
        if is_write:
            written.add(tag)
        if victim is not None and victim[0]:
            l2_access(victim_tag, True,
                      0 if pl else (victim[1] or region), victim[2])
            pbc[1] += 1

    def flush() -> None:
        for lines in sets:
            for tag in list(lines):
                line = lines.pop(tag)
                if line[0]:
                    n[4] += 1
                    l2_access(tag, True, 0 if pl else (line[1] or 1),
                              line[2])
                    pbc[1] += 1
                else:
                    n[5] += 1

    return access, flush


# ----------------------------------------------------------------------
# TCOR Attribute Cache
# ----------------------------------------------------------------------
def _attr_cache(num_sets: int, ways: int, ab_entries: int, window: int,
                write_bypass: bool, set_of: list, base_tags: list,
                counts: list, l2_access, pbc: list, an: list):
    """One frame's Primitive Buffer + Attribute Buffer with OPT
    replacement.  Line layout: [nattr, opt, last_rank, dirty, locks].

    Counter layout ``an``: [reads, read_misses, writes, write_bypasses,
    evictions, dirty_evictions, forced_unlocks, space_evictions].
    """
    sets: list = [dict() for _ in range(num_sets)]
    free = [ab_entries]
    inflight: deque = deque()

    def effective_opt(line) -> int:
        opt = line[1]
        return NO_NEXT_USE_RANK if opt == NO_NEXT_TILE else opt

    def consume_oldest() -> None:
        pid = inflight.popleft()
        line = sets[set_of[pid]].get(pid)
        if line is not None and line[4] > 0:
            line[4] -= 1

    def lock(line, pid) -> None:
        line[4] += 1
        inflight.append(pid)
        while len(inflight) > window:
            consume_oldest()

    def emit_writes(pid, rank) -> None:
        base = base_tags[pid]
        count = counts[pid]
        for tag in range(base, base + count):
            l2_access(tag, True, 1, rank)
        pbc[1] += count

    def evict(pid) -> None:
        line = sets[set_of[pid]].pop(pid)
        free[0] += line[0]
        an[4] += 1
        if line[3]:
            an[5] += 1
            emit_writes(pid, line[2])

    def victim_in_set(set_index):
        best_pid = None
        best_opt = -1
        for pid, line in sets[set_index].items():
            if line[4]:
                continue
            opt = effective_opt(line)
            if best_pid is None or opt > best_opt:
                best_opt = opt
                best_pid = pid
        return best_pid

    def global_victim():
        best_pid = None
        best_opt = -1
        for lines in sets:
            for pid, line in lines.items():
                if line[4]:
                    continue
                opt = effective_opt(line)
                if best_pid is None or opt > best_opt:
                    best_opt = opt
                    best_pid = pid
        return best_pid

    def read(pid, nattr, opt, last) -> bool:
        an[0] += 1
        set_index = set_of[pid]
        lines = sets[set_index]
        line = lines.get(pid)
        if line is not None:
            line[1] = opt
            lock(line, pid)
            return True
        an[1] += 1
        while len(lines) >= ways:
            victim = victim_in_set(set_index)
            if victim is None:
                an[6] += 1
                consume_oldest()
                continue
            evict(victim)
        while nattr > free[0]:
            victim = global_victim()
            if victim is None:
                an[6] += 1
                consume_oldest()
                continue
            an[7] += 1
            evict(victim)
        free[0] -= nattr
        line = [nattr, opt, last, 0, 0]
        lines[pid] = line
        lock(line, pid)
        base = base_tags[pid]
        for tag in range(base, base + nattr):
            l2_access(tag, False, 1, last)
        pbc[0] += nattr
        return False

    def write(pid, nattr, opt, last) -> None:
        an[2] += 1
        lines = sets[set_of[pid]]
        if len(lines) >= ways:
            victim = victim_in_set(set_of[pid])
            if victim is None:
                an[3] += 1
                emit_writes(pid, last)
                return
            if write_bypass:
                if effective_opt(lines[victim]) > opt:
                    evict(victim)
                else:
                    an[3] += 1
                    emit_writes(pid, last)
                    return
            else:
                evict(victim)
        while nattr > free[0]:
            victim = global_victim()
            if victim is None:
                an[3] += 1
                emit_writes(pid, last)
                return
            if (write_bypass
                    and effective_opt(sets[set_of[victim]][victim]) <= opt):
                an[3] += 1
                emit_writes(pid, last)
                return
            an[7] += 1
            evict(victim)
        free[0] -= nattr
        lines[pid] = [nattr, opt, last, 1, 0]

    def flush() -> None:
        while inflight:
            consume_oldest()
        for lines in sets:
            for pid in list(lines):
                evict(pid)

    return read, write, flush


# ----------------------------------------------------------------------
# System kernels
# ----------------------------------------------------------------------
def _frame_skip(frame, prev_sig, re_counters):
    """One frame's Rendering Elimination skip mask (replay side).

    Mirrors :meth:`RenderingElimination.begin_frame`: ``None`` on the
    first frame, else per-tile ``sig != 0 and sig == previous`` with
    one signature compare charged per tile.  Returns ``(skip,
    this_frame_sig)`` so the caller can thread ``prev_sig``.
    """
    sig = frame.tile_sig
    if prev_sig is None:
        return None, sig
    re_counters[0] += len(sig)
    return [s != 0 and s == p for s, p in zip(sig, prev_sig)], sig


def _finalize_re(result: SystemResult, frame_stats: list,
                 re_counters: list) -> None:
    """Mirror of the live path's RE finalization: copy the signature
    unit's counters into the result and reconstruct the ``REStats`` the
    observability layer registers under ``live.re``."""
    from repro.anim.elimination import REStats

    compares, total, skipped = re_counters
    frame_stats.append(("live.re", REStats(
        signature_compares=compares, tiles_total=total,
        tiles_skipped=skipped, tiles_rendered=total - skipped)))
    result.tiles_total = total
    result.tiles_skipped = skipped
    result.signature_compares = compares
    result.structure_accesses["signature_unit"] = compares


def replay_baseline(trace: CompiledTrace,
                    gpu: GPUConfig | None = None,
                    tile_cache_bytes: int | None = None,
                    include_background: bool = True,
                    rendering_elimination: bool = False) -> ReplayOutcome:
    """Replay of :func:`repro.tcor.system.simulate_baseline`."""
    gpu = gpu or DEFAULT_GPU
    if tile_cache_bytes is not None:
        gpu = gpu.with_tile_cache_size(tile_cache_bytes)
    header = trace.header
    _check_supported(header, gpu, (gpu.tile_cache.line_bytes,))

    completed = [-1]
    l2_config = gpu.l2_cache
    l2_access, writeback_pb, mem_record, l2_finalize = _l2_engine(
        l2_config.num_sets, l2_config.associativity, False, completed)
    pbc = [0, 0]
    result = SystemResult(label="baseline", alias=header.alias)
    tile_config = gpu.tile_cache
    tile_cache_accesses = 0
    frame_stats: list = []
    attr_reads = 0
    fb_writes = header.fb_writes_per_tile

    bg_t_tag = trace.bg_tile_tag
    bg_t_reg = trace.bg_tile_reg
    bg_t_wr = trace.bg_tile_wr
    bg_t_off = trace.bg_tile_off
    bg_p_tag = trace.bg_prim_tag
    bg_p_reg = trace.bg_prim_reg
    bg_p_wr = trace.bg_prim_wr
    bg_p_off = trace.bg_prim_off

    re_counters = [0, 0, 0]  # [compares, tiles_total, tiles_skipped]
    prev_sig = None

    for frame in trace.frames:
        skip = None
        if rendering_elimination:
            skip, prev_sig = _frame_skip(frame, prev_sig, re_counters)
        tn = [0] * 6
        tby: dict = {}
        t_access, t_flush = _block_l1(tile_config.num_sets,
                                      tile_config.associativity,
                                      l2_access, pbc, tn, tby, pl=False)
        build_tags, build_ranks, fetch_tags, fetch_ranks = frame.pmd_views(
            header, interleaved=False)
        base_tags = frame.attr_tag_base(header)
        bw_pid = frame.bw_pid
        bw_nattr = frame.bw_nattr
        bw_last = frame.bw_last
        pmd_index = attr_index = 0
        for kind in frame.build_kind:
            if kind == BUILD_PMD_WRITE:
                t_access(build_tags[pmd_index], True, 0,
                         build_ranks[pmd_index])
                pmd_index += 1
            else:
                pid = bw_pid[attr_index]
                if include_background:
                    for j in range(bg_p_off[pid], bg_p_off[pid + 1]):
                        l2_access(bg_p_tag[j], bg_p_wr[j] == 1,
                                  bg_p_reg[j], None)
                last = bw_last[attr_index]
                base = base_tags[pid]
                for tag in range(base, base + bw_nattr[attr_index]):
                    t_access(tag, True, 1, last)
                attr_index += 1
        fr_pid = frame.fr_pid
        fr_nattr = frame.fr_nattr
        fr_last = frame.fr_last
        fp_tile = frame.fp_tile
        td_tile = frame.td_tile
        td_fb = frame.td_fb
        pmd_index = attr_index = done_index = 0
        skip_tile = False
        for kind in frame.fetch_kind:
            if kind == FETCH_PMD_READ:
                skip_tile = skip is not None and skip[fp_tile[pmd_index]]
                if not skip_tile:
                    t_access(fetch_tags[pmd_index], False, 0,
                             fetch_ranks[pmd_index])
                pmd_index += 1
            elif kind == FETCH_ATTR_READ:
                if skip_tile:
                    attr_index += 1
                    continue
                attr_reads += 1
                pid = fr_pid[attr_index]
                last = fr_last[attr_index]
                base = base_tags[pid]
                for tag in range(base, base + fr_nattr[attr_index]):
                    t_access(tag, False, 1, last)
                attr_index += 1
            else:
                tile = td_tile[done_index]
                skipped = skip is not None and skip[tile]
                skip_tile = False
                if rendering_elimination:
                    re_counters[1] += 1
                    re_counters[2] += skipped
                if include_background and not skipped:
                    for j in range(bg_t_off[tile], bg_t_off[tile + 1]):
                        l2_access(bg_t_tag[j], bg_t_wr[j] == 1,
                                  bg_t_reg[j], None)
                    if td_fb[done_index]:
                        for _ in range(fb_writes):
                            mem_record(True, _FB)
                done_index += 1
        t_flush()
        tile_cache_accesses += tn[0] + tn[1]
        frame_stats.append(("live.tile", CacheStats(
            reads=tn[0], writes=tn[1], read_misses=tn[2],
            write_misses=tn[3], writebacks=tn[4], clean_evictions=tn[5],
            by_region=_region_stats(tby),
        )))
        writeback_pb(False)

    result.attr_reads = attr_reads
    l2_stats, memory, l2n, mem = l2_finalize()
    result.structure_accesses = {
        "tile_cache": tile_cache_accesses,
        "l2": l2n[0] + l2n[1],
        "dram": mem[0] + mem[1],
    }
    if include_background:
        result.structure_accesses.update(header.l1_estimates)
    if rendering_elimination:
        _finalize_re(result, frame_stats, re_counters)
    _finalize(result, pbc, l2n, mem, memory)
    return ReplayOutcome(result, l2_config.name, l2_stats, memory,
                         frame_stats,
                         {"pb_l2_reads": pbc[0], "pb_l2_writes": pbc[1]})


def replay_tcor(trace: CompiledTrace,
                gpu: GPUConfig | None = None,
                tcor: TCORConfig | None = None,
                total_tile_cache_bytes: int | None = None,
                l2_enhancements: bool = True,
                interleaved_lists: bool = True,
                include_background: bool = True,
                rendering_elimination: bool = False) -> ReplayOutcome:
    """Replay of :func:`repro.tcor.system.simulate_tcor`."""
    gpu = gpu or DEFAULT_GPU
    if tcor is None:
        tcor = (TCORConfig.for_total_size(total_tile_cache_bytes)
                if total_tile_cache_bytes is not None else TCORConfig())
    header = trace.header
    pl_config = tcor.primitive_list_cache
    _check_supported(header, gpu, (pl_config.line_bytes,))

    completed = [-1]
    l2_config = gpu.l2_cache
    l2_access, writeback_pb, mem_record, l2_finalize = _l2_engine(
        l2_config.num_sets, l2_config.associativity, l2_enhancements,
        completed)
    pbc = [0, 0]
    label = "tcor" if l2_enhancements else "tcor_no_l2"
    result = SystemResult(label=label, alias=header.alias)
    pb_ways = tcor.primitive_buffer_associativity
    pb_sets = max(1, tcor.primitive_buffer_entries // pb_ways)
    window = gpu.tiling.output_queue_entries
    fb_writes = header.fb_writes_per_tile

    pl_accesses = 0
    pb_buffer_ops = 0
    attr_entries_moved = 0
    attr_reads = 0
    attr_read_hits = 0
    write_bypasses = 0
    frame_stats: list = []

    bg_t_tag = trace.bg_tile_tag
    bg_t_reg = trace.bg_tile_reg
    bg_t_wr = trace.bg_tile_wr
    bg_t_off = trace.bg_tile_off
    bg_p_tag = trace.bg_prim_tag
    bg_p_reg = trace.bg_prim_reg
    bg_p_wr = trace.bg_prim_wr
    bg_p_off = trace.bg_prim_off

    re_counters = [0, 0, 0]  # [compares, tiles_total, tiles_skipped]
    prev_sig = None

    for frame in trace.frames:
        completed[0] = -1
        skip = None
        if rendering_elimination:
            skip, prev_sig = _frame_skip(frame, prev_sig, re_counters)
        pn = [0] * 6
        pby: dict = {}
        pl_access, pl_flush = _block_l1(pl_config.num_sets,
                                        pl_config.associativity,
                                        l2_access, pbc, pn, pby, pl=True)
        an = [0] * 8
        set_of = frame.attr_sets(pb_sets, tcor.use_xor_indexing)
        base_tags = frame.attr_tag_base(header)
        attr_read, attr_write, attr_flush = _attr_cache(
            pb_sets, pb_ways, tcor.attribute_buffer_entries, window,
            tcor.write_bypass, set_of, base_tags, frame.attr_count,
            l2_access, pbc, an)
        build_tags, build_ranks, fetch_tags, fetch_ranks = frame.pmd_views(
            header, interleaved=interleaved_lists)
        bw_pid = frame.bw_pid
        bw_nattr = frame.bw_nattr
        bw_opt = frame.bw_opt
        bw_last = frame.bw_last
        pmd_index = attr_index = 0
        for kind in frame.build_kind:
            if kind == BUILD_PMD_WRITE:
                pl_access(build_tags[pmd_index], True, 0,
                          build_ranks[pmd_index])
                pmd_index += 1
            else:
                pid = bw_pid[attr_index]
                if include_background:
                    for j in range(bg_p_off[pid], bg_p_off[pid + 1]):
                        l2_access(bg_p_tag[j], bg_p_wr[j] == 1,
                                  bg_p_reg[j], None)
                nattr = bw_nattr[attr_index]
                attr_write(pid, nattr, bw_opt[attr_index],
                           bw_last[attr_index])
                pb_buffer_ops += 1
                attr_entries_moved += nattr
                attr_index += 1
        fr_pid = frame.fr_pid
        fr_nattr = frame.fr_nattr
        fr_opt = frame.fr_opt
        fr_last = frame.fr_last
        fp_tile = frame.fp_tile
        td_tile = frame.td_tile
        td_rank = frame.td_rank
        td_fb = frame.td_fb
        pmd_index = attr_index = done_index = 0
        skip_tile = False
        for kind in frame.fetch_kind:
            if kind == FETCH_PMD_READ:
                skip_tile = skip is not None and skip[fp_tile[pmd_index]]
                if not skip_tile:
                    pl_access(fetch_tags[pmd_index], False, 0,
                              fetch_ranks[pmd_index])
                pmd_index += 1
            elif kind == FETCH_ATTR_READ:
                if skip_tile:
                    attr_index += 1
                    continue
                nattr = fr_nattr[attr_index]
                hit = attr_read(fr_pid[attr_index], nattr,
                                fr_opt[attr_index], fr_last[attr_index])
                attr_reads += 1
                if hit:
                    attr_read_hits += 1
                pb_buffer_ops += 1
                attr_entries_moved += 2 * nattr
                attr_index += 1
            else:
                tile = td_tile[done_index]
                skipped = skip is not None and skip[tile]
                skip_tile = False
                if rendering_elimination:
                    re_counters[1] += 1
                    re_counters[2] += skipped
                # The scoreboard advances for skipped tiles too: the PB
                # frees their lists exactly as if rendered.
                completed[0] = td_rank[done_index]
                if include_background and not skipped:
                    for j in range(bg_t_off[tile], bg_t_off[tile + 1]):
                        l2_access(bg_t_tag[j], bg_t_wr[j] == 1,
                                  bg_t_reg[j], None)
                    if td_fb[done_index]:
                        for _ in range(fb_writes):
                            mem_record(True, _FB)
                done_index += 1
        attr_flush()
        pl_flush()
        pl_accesses += pn[0] + pn[1]
        write_bypasses += an[3]
        frame_stats.append(("live.primitive_list", CacheStats(
            reads=pn[0], writes=pn[1], read_misses=pn[2],
            write_misses=pn[3], writebacks=pn[4], clean_evictions=pn[5],
            by_region=_region_stats(pby),
        )))
        frame_stats.append(("live.attribute_cache", AttributeCacheStats(
            reads=an[0], read_misses=an[1], writes=an[2],
            write_bypasses=an[3], evictions=an[4], dirty_evictions=an[5],
            forced_unlocks=an[6], space_evictions=an[7],
        )))
        writeback_pb(l2_enhancements)

    result.attr_reads = attr_reads
    result.attr_read_hits = attr_read_hits
    result.write_bypasses = write_bypasses
    l2_stats, memory, l2n, mem = l2_finalize()
    result.structure_accesses = {
        "primitive_list_cache": pl_accesses,
        "primitive_buffer": pb_buffer_ops,
        "attribute_buffer": attr_entries_moved,
        "l2": l2n[0] + l2n[1],
        "dram": mem[0] + mem[1],
    }
    if include_background:
        result.structure_accesses.update(header.l1_estimates)
    if rendering_elimination:
        _finalize_re(result, frame_stats, re_counters)
    _finalize(result, pbc, l2n, mem, memory)
    return ReplayOutcome(result, l2_config.name, l2_stats, memory,
                         frame_stats,
                         {"pb_l2_reads": pbc[0], "pb_l2_writes": pbc[1]})


def _finalize(result: SystemResult, pbc: list, l2n: list, mem: list,
              memory: MemoryCounters) -> None:
    result.pb_l2_reads = pbc[0]
    result.pb_l2_writes = pbc[1]
    result.pb_mm_reads = (memory.region_reads(Region.PB_LISTS)
                          + memory.region_reads(Region.PB_ATTRIBUTES))
    result.pb_mm_writes = (memory.region_writes(Region.PB_LISTS)
                           + memory.region_writes(Region.PB_ATTRIBUTES))
    result.mm_reads = mem[0]
    result.mm_writes = mem[1]
    result.l2_accesses = l2n[0] + l2n[1]
    result.l2_misses = l2n[2] + l2n[3]
    result.dead_writebacks_avoided = l2n[7]
