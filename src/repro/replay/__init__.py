"""Compile-once access-trace IR + replay kernels (see DESIGN.md §12).

``compile_workload`` lowers a workload into a config-independent IR;
``replay_baseline`` / ``replay_tcor`` run the cache models over it
bit-identically to the live simulator (which remains the reference
oracle, gated by tests/test_replay_equivalence.py).  ``try_replay`` is
the dispatch helper the public facade and the experiment caches use:
it replays when the run is eligible and returns ``None`` (caller falls
back to the live path) when it is not — a tracer is attached, the
``REPRO_NO_REPLAY`` escape hatch is set, or the configuration steps
outside what the kernels model.
"""

from __future__ import annotations

import os

from repro import envvars
from repro.obs import trace as obs_trace
from repro.obs.registry import Observation
from repro.replay.ir import (
    TRACE_IR_VERSION,
    CompiledTrace,
    FrameIR,
    TraceHeader,
    compile_workload,
    compiled_trace_for,
    load_trace,
    save_trace,
    trace_ir_compatible,
)
from repro.replay.kernels import (
    ReplayOutcome,
    ReplayUnsupportedError,
    replay_baseline,
    replay_tcor,
)

__all__ = [
    "TRACE_IR_VERSION",
    "CompiledTrace",
    "FrameIR",
    "TraceHeader",
    "ReplayOutcome",
    "ReplayUnsupportedError",
    "compile_workload",
    "compiled_trace_for",
    "load_trace",
    "save_trace",
    "observe_replay",
    "replay_allowed",
    "replay_baseline",
    "replay_tcor",
    "trace_ir_compatible",
    "try_replay",
]


def replay_allowed(obs: Observation | None = None) -> str | None:
    """``None`` when replay may substitute for the live simulator,
    else the reason it may not.

    A tracer — whether attached to this run's observation or installed
    globally — needs the live path's per-access event stream, and
    ``REPRO_NO_REPLAY`` is the operator escape hatch.
    """
    if os.environ.get(envvars.NO_REPLAY):
        return f"{envvars.NO_REPLAY} is set"
    if obs is not None and obs.tracer is not None:
        return "a tracer is attached to this run"
    if obs_trace.ACTIVE is not None:
        return "a tracer is globally active"
    return None


def observe_replay(obs: Observation, outcome: ReplayOutcome) -> None:
    """Register the replay's reconstructed stats under the live path's
    metric names, so snapshots are byte-identical across engines."""
    from repro.tcor.system import PB_ACCOUNTING_RULE

    registry = obs.registry
    outcome.l2_stats.register(registry, f"live.{outcome.l2_name}")
    outcome.memory.register(registry, "live.dram")
    re_ran = False
    for prefix, stats in outcome.frame_stats:
        stats.register(registry, prefix)
        re_ran = re_ran or prefix == "live.re"
    registry.count("live.system.pb_l2_reads",
                   outcome.counters["pb_l2_reads"])
    registry.count("live.system.pb_l2_writes",
                   outcome.counters["pb_l2_writes"])
    obs.expect_sum(*PB_ACCOUNTING_RULE)
    if re_ran:
        from repro.anim.elimination import RE_ACCOUNTING_RULE

        obs.expect_sum(*RE_ACCOUNTING_RULE)


def try_replay(workload, config, obs: Observation | None = None,
               require: bool = False):
    """Replay ``workload`` under ``config`` if eligible.

    Returns the :class:`~repro.tcor.system.SystemResult` (registering
    metrics into ``obs`` when given), or ``None`` when the run must use
    the live simulator; with ``require=True`` ineligibility raises
    :class:`ReplayUnsupportedError` instead.
    """
    reason = replay_allowed(obs)
    if reason is not None:
        if require:
            raise ReplayUnsupportedError(reason)
        return None
    try:
        trace = compiled_trace_for(workload)
        if config.kind == "baseline":
            outcome = replay_baseline(
                trace, gpu=config.gpu,
                tile_cache_bytes=config.tile_cache_bytes,
                include_background=config.include_background,
                rendering_elimination=config.rendering_elimination)
        else:
            outcome = replay_tcor(
                trace, gpu=config.gpu, tcor=config.tcor,
                total_tile_cache_bytes=config.tile_cache_bytes,
                l2_enhancements=config.l2_enhancements,
                interleaved_lists=config.interleaved_lists,
                include_background=config.include_background,
                rendering_elimination=config.rendering_elimination)
    except ReplayUnsupportedError:
        if require:
            raise
        return None
    if obs is not None:
        observe_replay(obs, outcome)
    return outcome.result
