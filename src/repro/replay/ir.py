"""The config-independent access-trace IR (compile once, replay many).

The paper's enabling observation — the Parameter Buffer stream is fully
determined before any cache sees it — means a workload's entire access
sequence can be lowered *once* into flat parallel arrays and then
replayed through any number of cache configurations.  This module is the
compiler half: :func:`compile_workload` walks the Tiling Engine event
stream and the background traffic model exactly once and captures

- per frame, the build/fetch event streams as parallel ``kind`` +
  operand arrays (tile/position for PMD traffic, primitive id /
  attribute count / OPT Number / last-use rank for attribute traffic,
  tile id / rank / flush flag for ``TileDone``);
- per frame, the Parameter Buffer address map (attribute base blocks and
  counts, the tile-rank table);
- at trace level, the background (texture/vertex/instruction) access
  stream, which is frame-independent by construction (stateless
  per-tile/per-primitive RNG derivation);
- a header binding the trace to the workload (alias, scale, geometry
  constants) so persisted traces are content-addressed by the PR 2
  code-signature scheme (see ``DiskCache.get_trace``).

Everything configuration-*dependent* (PB-Lists layout, set counts,
indexing functions) is resolved lazily by the memoized view helpers the
replay kernels call, so one compiled trace serves baseline and TCOR,
contiguous and interleaved, 64 KiB and 128 KiB alike.
"""

from __future__ import annotations

import json

import numpy as np

from repro.workloads.suite import Workload

# Bump whenever the IR layout changes; persisted traces with another
# version fail to load (treated as a cache miss by DiskCache.get_trace).
# v2: per-frame ``tile_sig`` arrays (Rendering Elimination signatures).
TRACE_IR_VERSION = 2


def trace_ir_compatible(theirs) -> bool:
    """Whether a persisted trace's IR version can be replayed.

    The IR has no compatibility span: kernels index the arrays
    positionally, so any layout change is a full break.  All version
    comparisons go through this helper (the SIM305 contract rule
    forbids comparing ``TRACE_IR_VERSION`` anywhere else).
    """
    return theirs == TRACE_IR_VERSION

# Event kinds, build stream.
BUILD_PMD_WRITE = 0
BUILD_ATTR_WRITE = 1
# Event kinds, fetch stream.
FETCH_PMD_READ = 0
FETCH_ATTR_READ = 1
FETCH_TILE_DONE = 2

_I64 = np.int64


def _np(values) -> np.ndarray:
    return np.asarray(values, dtype=_I64)


class FrameIR:
    """One frame's compiled event streams and PB address map.

    All arrays are plain Python ``list``s of ints at runtime (the replay
    kernels iterate them in tight loops where lists beat ndarrays);
    serialization converts to int64 ndarrays.
    """

    __slots__ = (
        "build_kind", "bp_tile", "bp_pos",
        "bw_pid", "bw_nattr", "bw_opt", "bw_last",
        "fetch_kind", "fp_tile", "fp_pos",
        "fr_pid", "fr_nattr", "fr_opt", "fr_last",
        "td_tile", "td_rank", "td_fb",
        "attr_base", "attr_count", "rank_of_tile", "tile_sig",
        "_views",
    )

    def __init__(self, build_kind, bp_tile, bp_pos,
                 bw_pid, bw_nattr, bw_opt, bw_last,
                 fetch_kind, fp_tile, fp_pos,
                 fr_pid, fr_nattr, fr_opt, fr_last,
                 td_tile, td_rank, td_fb,
                 attr_base, attr_count, rank_of_tile, tile_sig) -> None:
        self.build_kind = build_kind
        self.bp_tile = bp_tile
        self.bp_pos = bp_pos
        self.bw_pid = bw_pid
        self.bw_nattr = bw_nattr
        self.bw_opt = bw_opt
        self.bw_last = bw_last
        self.fetch_kind = fetch_kind
        self.fp_tile = fp_tile
        self.fp_pos = fp_pos
        self.fr_pid = fr_pid
        self.fr_nattr = fr_nattr
        self.fr_opt = fr_opt
        self.fr_last = fr_last
        self.td_tile = td_tile
        self.td_rank = td_rank
        self.td_fb = td_fb
        self.attr_base = attr_base
        self.attr_count = attr_count
        self.rank_of_tile = rank_of_tile
        # Per-tile Rendering Elimination signatures (56-bit ints; 0 for
        # empty tiles), one per tile — identical to what the live
        # simulator computes from the frame's scene.
        self.tile_sig = tile_sig
        self._views: dict = {}

    @property
    def num_accesses(self) -> int:
        """Logical accesses this frame contributes (throughput metric)."""
        return len(self.build_kind) + len(self.fetch_kind)

    # ------------------------------------------------------------------
    # Config-dependent memoized views
    # ------------------------------------------------------------------
    def pmd_views(self, header: "TraceHeader", interleaved: bool):
        """(build_tags, build_ranks, fetch_tags, fetch_ranks) lists.

        Tags are 64-byte line addresses of each PMD access under the
        requested PB-Lists layout; ranks are the dead-line tag of the
        owning tile (``layout.tile_of_block`` recovers the event's tile
        exactly for both layouts, so the rank is the event tile's rank).
        """
        key = ("pmd", interleaved)
        cached = self._views.get(key)
        if cached is not None:
            return cached
        shift = header.block_bytes.bit_length() - 1
        ranks = _np(self.rank_of_tile)
        out = []
        for tiles, positions in ((self.bp_tile, self.bp_pos),
                                 (self.fp_tile, self.fp_pos)):
            t = _np(tiles)
            p = _np(positions)
            if interleaved:
                section, offset = np.divmod(p, header.pmds_per_block)
                addr = (header.lists_base
                        + (section * header.num_tiles + t) * header.block_bytes
                        + offset * header.pmd_bytes)
            else:
                addr = (header.lists_base + t * header.tile_list_bytes
                        + p * header.pmd_bytes)
            out.append((addr >> shift).tolist())
            out.append(ranks[t].tolist() if len(t) else [])
        view = tuple(out)
        self._views[key] = view
        return view

    def attr_tag_base(self, header: "TraceHeader") -> list:
        """First 64-byte block tag of every primitive's attribute run.

        Attributes are block-aligned at one block per attribute, so
        primitive ``p`` owns tags ``base[p] .. base[p]+count[p]-1``.
        """
        cached = self._views.get("attr_base")
        if cached is None:
            shift = header.block_bytes.bit_length() - 1
            cached = (_np(self.attr_base) >> shift).tolist()
            self._views["attr_base"] = cached
        return cached

    def attr_sets(self, num_sets: int, use_xor: bool) -> list:
        """Primitive-id -> Primitive Buffer set index, per indexing fn."""
        key = ("attr_sets", num_sets, use_xor)
        cached = self._views.get(key)
        if cached is not None:
            return cached
        if not use_xor:
            cached = [pid % num_sets for pid in range(len(self.attr_count))]
        else:
            bits = max(1, (num_sets - 1).bit_length())
            mask = (1 << bits) - 1
            power_of_two = num_sets & (num_sets - 1) == 0
            cached = []
            for pid in range(len(self.attr_count)):
                folded = 0
                remaining = pid
                while remaining:
                    folded ^= remaining & mask
                    remaining >>= bits
                cached.append(folded if power_of_two and folded < num_sets
                              else folded % num_sets)
        self._views[key] = cached
        return cached


class TraceHeader:
    """Workload identity + the geometry constants the kernels need."""

    __slots__ = ("alias", "scale", "num_tiles", "num_primitives",
                 "block_bytes", "pmd_bytes", "pmds_per_block",
                 "lists_base", "tile_list_bytes", "attribute_stride",
                 "fb_writes_per_tile", "l1_estimates")

    def __init__(self, alias, scale, num_tiles, num_primitives,
                 block_bytes, pmd_bytes, pmds_per_block, lists_base,
                 tile_list_bytes, attribute_stride, fb_writes_per_tile,
                 l1_estimates) -> None:
        self.alias = alias
        self.scale = scale
        self.num_tiles = num_tiles
        self.num_primitives = num_primitives
        self.block_bytes = block_bytes
        self.pmd_bytes = pmd_bytes
        self.pmds_per_block = pmds_per_block
        self.lists_base = lists_base
        self.tile_list_bytes = tile_list_bytes
        self.attribute_stride = attribute_stride
        self.fb_writes_per_tile = fb_writes_per_tile
        self.l1_estimates = l1_estimates

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class CompiledTrace:
    """A workload lowered to replayable arrays: header + background +
    per-frame event streams."""

    __slots__ = ("header", "frames",
                 "bg_tile_tag", "bg_tile_reg", "bg_tile_wr", "bg_tile_off",
                 "bg_prim_tag", "bg_prim_reg", "bg_prim_wr", "bg_prim_off")

    def __init__(self, header, frames,
                 bg_tile_tag, bg_tile_reg, bg_tile_wr, bg_tile_off,
                 bg_prim_tag, bg_prim_reg, bg_prim_wr, bg_prim_off) -> None:
        self.header = header
        self.frames = frames
        self.bg_tile_tag = bg_tile_tag
        self.bg_tile_reg = bg_tile_reg
        self.bg_tile_wr = bg_tile_wr
        self.bg_tile_off = bg_tile_off
        self.bg_prim_tag = bg_prim_tag
        self.bg_prim_reg = bg_prim_reg
        self.bg_prim_wr = bg_prim_wr
        self.bg_prim_off = bg_prim_off

    @property
    def num_accesses(self) -> int:
        return sum(frame.num_accesses for frame in self.frames)


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def compile_workload(workload: Workload) -> CompiledTrace:
    """Lower a workload into the IR (one pass over events + background)."""
    # Imported here so the IR module itself stays importable without the
    # full simulator (e.g. when only loading persisted traces).
    from repro.anim.signatures import tile_signatures
    from repro.tiling.events import (
        AttributeRead,
        AttributeWrite,
        PmdRead,
        PmdWrite,
        TileDone,
    )

    screen = workload.screen
    background = workload.background
    shift = 6  # 64-byte blocks; asserted against the config below.

    if len(workload.scenes) != len(workload.traces):
        raise ValueError("workload scenes and traces disagree on frames")
    frames = []
    pbuffer = None
    for scene, trace in zip(workload.scenes, workload.traces):
        pb = trace.pb
        pbuffer = pb.pbuffer
        build_kind: list = []
        bp_tile: list = []
        bp_pos: list = []
        bw_pid: list = []
        bw_nattr: list = []
        bw_opt: list = []
        bw_last: list = []
        for event in trace.build_events:
            if type(event) is PmdWrite:
                build_kind.append(BUILD_PMD_WRITE)
                bp_tile.append(event.tile_id)
                bp_pos.append(event.position)
            elif type(event) is AttributeWrite:
                build_kind.append(BUILD_ATTR_WRITE)
                bw_pid.append(event.primitive_id)
                bw_nattr.append(event.num_attributes)
                bw_opt.append(event.opt_number)
                bw_last.append(event.last_use_rank)
            else:  # pragma: no cover - the builder emits only these two
                raise TypeError(f"unknown build event {event!r}")
        fetch_kind: list = []
        fp_tile: list = []
        fp_pos: list = []
        fr_pid: list = []
        fr_nattr: list = []
        fr_opt: list = []
        fr_last: list = []
        td_tile: list = []
        td_rank: list = []
        td_fb: list = []
        for event in trace.fetch_events:
            if type(event) is PmdRead:
                fetch_kind.append(FETCH_PMD_READ)
                fp_tile.append(event.tile_id)
                fp_pos.append(event.position)
            elif type(event) is AttributeRead:
                fetch_kind.append(FETCH_ATTR_READ)
                fr_pid.append(event.primitive_id)
                fr_nattr.append(event.num_attributes)
                fr_opt.append(event.opt_number)
                fr_last.append(event.last_use_rank)
            elif type(event) is TileDone:
                fetch_kind.append(FETCH_TILE_DONE)
                td_tile.append(event.tile_id)
                td_rank.append(event.tile_rank)
                td_fb.append(1 if pb.list_length(event.tile_id) else 0)
            else:  # pragma: no cover - the fetcher emits only these three
                raise TypeError(f"unknown fetch event {event!r}")
        attrs = pb.attributes
        attr_base = [attrs.primitive_base(pid)
                     for pid in range(attrs.num_primitives)]
        attr_count = [attrs.attribute_count(pid)
                      for pid in range(attrs.num_primitives)]
        rank_of_tile = [pb.rank_of_tile[tile]
                        for tile in range(screen.num_tiles)]
        frames.append(FrameIR(
            build_kind, bp_tile, bp_pos,
            bw_pid, bw_nattr, bw_opt, bw_last,
            fetch_kind, fp_tile, fp_pos,
            fr_pid, fr_nattr, fr_opt, fr_last,
            td_tile, td_rank, td_fb,
            attr_base, attr_count, rank_of_tile,
            tile_signatures(scene),
        ))

    if pbuffer is None:
        raise ValueError("workload has no traces to compile")

    # Background traffic is frame-independent (stateless per-entity RNG),
    # so it is captured once at trace level and indexed by tile id /
    # primitive id during replay.
    bg_tile_tag: list = []
    bg_tile_reg: list = []
    bg_tile_wr: list = []
    bg_tile_off = [0]
    for tile_id in range(screen.num_tiles):
        for access in background.tile_accesses(tile_id):
            bg_tile_tag.append(access.address >> shift)
            bg_tile_reg.append(int(access.region))
            bg_tile_wr.append(int(access.op))
        bg_tile_off.append(len(bg_tile_tag))
    num_prims = max((frame_prims for frame_prims in
                     (len(frame.attr_count) for frame in frames)),
                    default=0)
    bg_prim_tag: list = []
    bg_prim_reg: list = []
    bg_prim_wr: list = []
    bg_prim_off = [0]
    for pid in range(num_prims):
        for access in background.primitive_accesses(pid):
            bg_prim_tag.append(access.address >> shift)
            bg_prim_reg.append(int(access.region))
            bg_prim_wr.append(int(access.op))
        bg_prim_off.append(len(bg_prim_tag))

    header = TraceHeader(
        alias=workload.spec.alias,
        scale=workload.scale,
        num_tiles=screen.num_tiles,
        num_primitives=workload.num_primitives,
        block_bytes=pbuffer.block_bytes,
        pmd_bytes=pbuffer.pmd_bytes,
        pmds_per_block=pbuffer.pmds_per_block,
        lists_base=pbuffer.pb_lists_pointer,
        tile_list_bytes=(pbuffer.max_primitives_per_tile
                         * pbuffer.pmd_bytes),
        attribute_stride=pbuffer.attribute_stride,
        fb_writes_per_tile=background.framebuffer_writes_per_tile(),
        l1_estimates=background.l1_access_estimates(
            workload.num_primitives),
    )
    if header.block_bytes != 1 << shift:
        raise ValueError("trace IR assumes 64-byte Parameter Buffer blocks")
    return CompiledTrace(
        header, frames,
        bg_tile_tag, bg_tile_reg, bg_tile_wr, bg_tile_off,
        bg_prim_tag, bg_prim_reg, bg_prim_wr, bg_prim_off,
    )


def compiled_trace_for(workload: Workload) -> CompiledTrace:
    """Get-or-compile the workload's trace (memoized on the workload)."""
    trace = workload.compiled_trace
    if trace is None:
        trace = compile_workload(workload)
        workload.compiled_trace = trace
    return trace


# ----------------------------------------------------------------------
# Serialization (npz: one compressed archive of int64 arrays + JSON meta)
# ----------------------------------------------------------------------
_FRAME_FIELDS = (
    "build_kind", "bp_tile", "bp_pos",
    "bw_pid", "bw_nattr", "bw_opt", "bw_last",
    "fetch_kind", "fp_tile", "fp_pos",
    "fr_pid", "fr_nattr", "fr_opt", "fr_last",
    "td_tile", "td_rank", "td_fb",
    "attr_base", "attr_count", "rank_of_tile", "tile_sig",
)
_TRACE_FIELDS = (
    "bg_tile_tag", "bg_tile_reg", "bg_tile_wr", "bg_tile_off",
    "bg_prim_tag", "bg_prim_reg", "bg_prim_wr", "bg_prim_off",
)


def save_trace(file, trace: CompiledTrace) -> None:
    """Serialize to an open binary file handle (or path)."""
    meta = {
        "version": TRACE_IR_VERSION,
        "header": trace.header.as_dict(),
        "num_frames": len(trace.frames),
    }
    arrays = {
        "meta_json": np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        ),
    }
    for name in _TRACE_FIELDS:
        arrays[name] = _np(getattr(trace, name))
    for index, frame in enumerate(trace.frames):
        for name in _FRAME_FIELDS:
            arrays[f"f{index}_{name}"] = _np(getattr(frame, name))
    np.savez_compressed(file, **arrays)


def load_trace(file) -> CompiledTrace:
    """Deserialize; raises ``ValueError`` on a version mismatch."""
    with np.load(file) as archive:
        meta = json.loads(bytes(archive["meta_json"]).decode("utf-8"))
        if not trace_ir_compatible(meta.get("version")):
            raise ValueError(
                f"trace IR version {meta.get('version')} != "
                f"{TRACE_IR_VERSION}"
            )
        header = TraceHeader(**meta["header"])
        frames = []
        for index in range(meta["num_frames"]):
            fields = {name: archive[f"f{index}_{name}"].tolist()
                      for name in _FRAME_FIELDS}
            frames.append(FrameIR(**fields))
        trace_fields = {name: archive[name].tolist()
                        for name in _TRACE_FIELDS}
    return CompiledTrace(header, frames, **trace_fields)
