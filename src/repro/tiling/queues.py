"""Bounded FIFO queues with occupancy statistics.

The Tiling Engine's stages communicate through FIFOs (paper Figure 2);
the throughput experiment (Figures 23/24) resizes the Tile Fetcher's
output queue to unlimited, which ``capacity=None`` models.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

T = TypeVar("T")


class BoundedQueue(Generic[T]):
    """FIFO with optional capacity and high-water tracking."""

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None)")
        self.capacity = capacity
        self._items: deque[T] = deque()
        self.peak_occupancy = 0
        self.total_pushed = 0
        self.rejected_pushes = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, item: T) -> bool:
        """Append; returns False (and counts a rejection) when full."""
        if self.full:
            self.rejected_pushes += 1
            return False
        self._items.append(item)
        self.total_pushed += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._items))
        return True

    def pop(self) -> T:
        if not self._items:
            raise IndexError("pop from empty queue")
        return self._items.popleft()

    def peek(self) -> T:
        if not self._items:
            raise IndexError("peek at empty queue")
        return self._items[0]
