"""Tiling Engine orchestration: one frame's full logical trace."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ParameterBufferConfig
from repro.geometry.scene import Scene
from repro.geometry.traversal import TraversalOrder
from repro.pbuffer.builder import ParameterBuffer, build_parameter_buffer
from repro.tiling.events import (
    AttributeRead,
    AttributeWrite,
    PmdRead,
    PmdWrite,
    TilingEvent,
)
from repro.tiling.polygon_list_builder import PolygonListBuilder
from repro.tiling.tile_fetcher import TileFetcher


@dataclass
class TilingTrace:
    """The Parameter Buffer access stream of one frame.

    ``build_events`` is the binning phase (Polygon List Builder),
    ``fetch_events`` the tile-reading phase (Tile Fetcher, with
    ``TileDone`` markers).  The phases never interleave: the PB is built
    and used up in consecutive pipeline stages (paper Section I).
    """

    pb: ParameterBuffer
    build_events: list[TilingEvent]
    fetch_events: list[TilingEvent]

    @property
    def num_binned_primitives(self) -> int:
        return sum(isinstance(e, AttributeWrite) for e in self.build_events)

    @property
    def num_primitive_reads(self) -> int:
        return sum(isinstance(e, AttributeRead) for e in self.fetch_events)

    @property
    def num_pmd_writes(self) -> int:
        return sum(isinstance(e, PmdWrite) for e in self.build_events)

    @property
    def num_pmd_reads(self) -> int:
        return sum(isinstance(e, PmdRead) for e in self.fetch_events)


class TilingEngine:
    """Builds the Parameter Buffer and produces both phases' streams."""

    def __init__(self, scene: Scene,
                 order: TraversalOrder = TraversalOrder.Z_ORDER,
                 pbuffer: ParameterBufferConfig | None = None) -> None:
        self.scene = scene
        self.order = order
        self.pb = build_parameter_buffer(scene, order, pbuffer)

    def trace(self) -> TilingTrace:
        return TilingTrace(
            pb=self.pb,
            build_events=PolygonListBuilder(self.pb).event_list(),
            fetch_events=TileFetcher(self.pb).event_list(),
        )
