"""Logical Tiling Engine events.

The Tiling Engine's two stages emit these; cache systems lower them to
byte-addressed accesses.  Keeping the stream logical lets one trace
drive both the baseline (block-granularity unified Tile Cache) and TCOR
(split caches, primitive-granularity Attribute Cache) — and the timing
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.pbuffer.pmd import TcorPMD


@dataclass(frozen=True, slots=True)
class PmdWrite:
    """Polygon List Builder appends a PMD to a tile's list."""

    tile_id: int
    position: int
    pmd: TcorPMD


@dataclass(frozen=True, slots=True)
class AttributeWrite:
    """Polygon List Builder writes all attributes of one primitive.

    ``opt_number`` is the traversal rank of the first tile that will read
    the primitive (paper Section III-C.4); ``last_use_rank`` is the
    dead-line tag stored in the attribute blocks' spare bytes.
    """

    primitive_id: int
    num_attributes: int
    opt_number: int
    last_use_rank: int


@dataclass(frozen=True, slots=True)
class PmdRead:
    """Tile Fetcher reads one PMD from the current tile's list."""

    tile_id: int
    tile_rank: int
    position: int
    pmd: TcorPMD


@dataclass(frozen=True, slots=True)
class AttributeRead:
    """Tile Fetcher requests a primitive's attributes for the Rasterizer.

    ``opt_number`` comes from the PMD just read: the rank of the *next*
    tile that uses this primitive after the current one.
    """

    primitive_id: int
    num_attributes: int
    opt_number: int
    tile_rank: int
    last_use_rank: int


@dataclass(frozen=True, slots=True)
class TileDone:
    """Tile Fetcher finished a tile (the L2 tile-progress signal)."""

    tile_id: int
    tile_rank: int


TilingEvent = Union[PmdWrite, AttributeWrite, PmdRead, AttributeRead, TileDone]
