"""Logical Tiling Engine events.

The Tiling Engine's two stages emit these; cache systems lower them to
byte-addressed accesses.  Keeping the stream logical lets one trace
drive both the baseline (block-granularity unified Tile Cache) and TCOR
(split caches, primitive-granularity Attribute Cache) — and the timing
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.pbuffer.pmd import TcorPMD


@dataclass(frozen=True, slots=True)
class PmdWrite:
    """Polygon List Builder appends a PMD to a tile's list."""

    tile_id: int
    position: int
    pmd: TcorPMD


@dataclass(frozen=True, slots=True)
class AttributeWrite:
    """Polygon List Builder writes all attributes of one primitive.

    ``opt_number`` is the traversal rank of the first tile that will read
    the primitive (paper Section III-C.4); ``last_use_rank`` is the
    dead-line tag stored in the attribute blocks' spare bytes.
    """

    primitive_id: int
    num_attributes: int
    opt_number: int
    last_use_rank: int


@dataclass(frozen=True, slots=True)
class PmdRead:
    """Tile Fetcher reads one PMD from the current tile's list."""

    tile_id: int
    tile_rank: int
    position: int
    pmd: TcorPMD


@dataclass(frozen=True, slots=True)
class AttributeRead:
    """Tile Fetcher requests a primitive's attributes for the Rasterizer.

    ``opt_number`` comes from the PMD just read: the rank of the *next*
    tile that uses this primitive after the current one.
    """

    primitive_id: int
    num_attributes: int
    opt_number: int
    tile_rank: int
    last_use_rank: int


@dataclass(frozen=True, slots=True)
class TileDone:
    """Tile Fetcher finished a tile (the L2 tile-progress signal)."""

    tile_id: int
    tile_rank: int


TilingEvent = Union[PmdWrite, AttributeWrite, PmdRead, AttributeRead, TileDone]


def tile_context(event: TilingEvent) -> tuple[int | None, int | None] | None:
    """The (tile_id, tile_rank) an event anchors the trace's tile
    context to, or ``None`` when it leaves the context unchanged.

    The observability tracer tags every cache event with the tile being
    built or fetched: PMD traffic and the ``TileDone`` signal pin the
    context to their tile, a Polygon List Builder attribute write is
    tile-independent and clears it, and an ``AttributeRead`` happens
    inside the current tile's fetch so the context carries over.
    """
    if isinstance(event, (PmdRead, TileDone)):
        return event.tile_id, event.tile_rank
    if isinstance(event, PmdWrite):
        return event.tile_id, None
    if isinstance(event, AttributeWrite):
        return None, None
    return None
