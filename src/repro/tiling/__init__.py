"""The Tiling Engine: Polygon List Builder and Tile Fetcher.

This package turns a binned scene into the *logical* access stream the
Tile Cache sees: PMD writes and attribute writes during binning, then
PMD reads and primitive-granularity attribute reads tile by tile.  The
baseline and TCOR systems lower the same logical stream to their own
cache organizations, which is exactly the paper's experimental setup.
"""

from repro.tiling.events import (
    AttributeRead,
    AttributeWrite,
    PmdRead,
    PmdWrite,
    TileDone,
    TilingEvent,
)
from repro.tiling.queues import BoundedQueue
from repro.tiling.polygon_list_builder import PolygonListBuilder
from repro.tiling.tile_fetcher import TileFetcher
from repro.tiling.engine import TilingEngine, TilingTrace

__all__ = [
    "AttributeRead",
    "AttributeWrite",
    "BoundedQueue",
    "PmdRead",
    "PmdWrite",
    "PolygonListBuilder",
    "TileDone",
    "TileFetcher",
    "TilingEngine",
    "TilingEvent",
    "TilingTrace",
]
