"""Tile Fetcher event stream (tile-reading phase).

The fetcher walks tiles in the fixed traversal order.  For each tile it
reads the tile's PMDs in list order; each PMD yields an attribute read
request carrying the PMD's OPT Number (the rank of the next tile that
will use the primitive).  A ``TileDone`` event closes every tile — the
signal the TCOR L2 uses to advance its dead-line horizon.
"""

from __future__ import annotations

from typing import Iterator

from repro.geometry.traversal import tile_traversal
from repro.pbuffer.builder import ParameterBuffer
from repro.tiling.events import AttributeRead, PmdRead, TileDone, TilingEvent


class TileFetcher:
    """Generates the fetch-phase access stream from a built PB."""

    def __init__(self, pb: ParameterBuffer) -> None:
        self.pb = pb
        self._traversal = tile_traversal(pb.scene.screen, pb.order)

    def events(self) -> Iterator[TilingEvent]:
        last_tile_of = {
            record.primitive_id: record.last_use_rank
            for record in self.pb.records
        }
        for rank, tile_id in enumerate(self._traversal):
            for slot in self.pb.tile_lists[tile_id]:
                yield PmdRead(tile_id=tile_id, tile_rank=rank,
                              position=slot.position, pmd=slot.pmd)
                yield AttributeRead(
                    primitive_id=slot.pmd.primitive_id,
                    num_attributes=slot.pmd.num_attributes,
                    opt_number=slot.pmd.opt_number,
                    tile_rank=rank,
                    last_use_rank=last_tile_of[slot.pmd.primitive_id],
                )
            yield TileDone(tile_id=tile_id, tile_rank=rank)

    def event_list(self) -> list[TilingEvent]:
        return list(self.events())
