"""Polygon List Builder event stream (binning phase).

For each primitive in program order the builder emits the PMD write for
every overlapped tile, then one logical attribute write covering all of
the primitive's attributes (paper Section II-C).  Clipped primitives
(overlapping no tile) are dropped before binning.
"""

from __future__ import annotations

from typing import Iterator

from repro.pbuffer.builder import ParameterBuffer
from repro.tiling.events import AttributeWrite, PmdWrite, TilingEvent


class PolygonListBuilder:
    """Generates the binning-phase access stream from a built PB."""

    def __init__(self, pb: ParameterBuffer) -> None:
        self.pb = pb

    def events(self) -> Iterator[TilingEvent]:
        for record, slots in zip(self.pb.records, self.pb.slots_by_primitive):
            if not slots:
                continue  # clipped: overlaps no tile
            for slot in slots:
                yield PmdWrite(tile_id=slot.tile_id, position=slot.position,
                               pmd=slot.pmd)
            yield AttributeWrite(
                primitive_id=record.primitive_id,
                num_attributes=record.num_attributes,
                opt_number=record.first_use_rank,
                last_use_rank=record.last_use_rank,
            )

    def event_list(self) -> list[TilingEvent]:
        return list(self.events())
