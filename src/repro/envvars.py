"""Central table of the reproduction's environment variables.

Every ``REPRO_*`` knob the tool-chain reads is named here, once, as a
module constant — readers go through these constants (``os.environ.
get(envvars.CACHE_DIR)``), never through a scattered string literal.
The contract is machine-checked: the SIM304 lint rule flags any
``REPRO_*`` string literal outside this module, so adding a knob means
adding its constant (and docs) here first.

Knobs:

- ``CACHE_DIR`` — directory of the persistent result store
  (default ``.repro-cache/``);
- ``NO_DISK_CACHE`` — set non-empty to disable the persistent store;
- ``NO_REPLAY`` — operator escape hatch: force the live simulator
  even when a run is replay-eligible;
- ``TRACE_CACHE_BYTES`` — size cap of the compiled-trace store;
- ``BENCH_SCALE`` — geometry scale of the benchmark harness;
- ``BENCH_JOBS`` — worker processes prefetching the benchmark matrix.
"""

from __future__ import annotations

import os

CACHE_DIR = "REPRO_CACHE_DIR"
NO_DISK_CACHE = "REPRO_NO_DISK_CACHE"
NO_REPLAY = "REPRO_NO_REPLAY"
TRACE_CACHE_BYTES = "REPRO_TRACE_CACHE_BYTES"
BENCH_SCALE = "REPRO_BENCH_SCALE"
BENCH_JOBS = "REPRO_BENCH_JOBS"

# Every knob above, for exhaustive iteration (docs, diagnostics, and
# the SIM304 contract check read this).
ALL_VARS = (CACHE_DIR, NO_DISK_CACHE, NO_REPLAY, TRACE_CACHE_BYTES,
            BENCH_SCALE, BENCH_JOBS)


def get(name: str, default: str | None = None) -> str | None:
    """``os.environ.get`` limited to the declared knobs."""
    if name not in ALL_VARS:
        raise ValueError(f"undeclared environment variable {name!r}; "
                         "add it to repro.envvars first")
    return os.environ.get(name, default)
