"""Cache-simulator substrate.

A trace-driven, policy-pluggable cache model: set-associative (or fully
associative) write-back caches, a library of replacement policies
(LRU, MRU, FIFO, Random, PLRU, SRRIP/BRRIP/DRRIP, offline Belady OPT and
the online OPT-number policy TCOR implements in hardware), XOR-based set
indexing, MSHRs, and single-pass Mattson stack-distance analysis for LRU
miss curves.
"""

from repro.caches.line import CacheLine, LineMeta
from repro.caches.stats import CacheStats
from repro.caches.indexing import ModuloIndexing, SetIndexing, XorIndexing
from repro.caches.set_assoc import AccessResult, EvictedLine, SetAssociativeCache
from repro.caches.fully_assoc import fully_associative_cache
from repro.caches.mshr import MSHRFile
from repro.caches.hierarchy import CacheHierarchy, HierarchyOutcome
from repro.caches.mattson import MattsonStack, lru_miss_curve
from repro.caches.policies import (
    BeladyOPT,
    LookaheadOPT,
    BRRIPPolicy,
    DRRIPPolicy,
    FIFOPolicy,
    LRUPolicy,
    MRUPolicy,
    OptNumberPolicy,
    PLRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    SRRIPPolicy,
    make_policy,
)

__all__ = [
    "AccessResult",
    "BRRIPPolicy",
    "BeladyOPT",
    "CacheHierarchy",
    "CacheLine",
    "CacheStats",
    "DRRIPPolicy",
    "EvictedLine",
    "FIFOPolicy",
    "HierarchyOutcome",
    "LRUPolicy",
    "LineMeta",
    "LookaheadOPT",
    "MRUPolicy",
    "MSHRFile",
    "MattsonStack",
    "ModuloIndexing",
    "OptNumberPolicy",
    "PLRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SRRIPPolicy",
    "SetAssociativeCache",
    "SetIndexing",
    "XorIndexing",
    "fully_associative_cache",
    "lru_miss_curve",
    "make_policy",
]
