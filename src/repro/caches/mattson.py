"""Mattson stack-distance analysis for LRU.

LRU is a stack algorithm (Mattson et al., 1970 — the paper's reference
[27]), so one pass over a trace yields the miss count of *every* fully
associative LRU cache size at once.  The stack distance of an access is
the number of distinct lines touched since the previous access to the
same line; an access misses in a cache of C lines iff its distance
exceeds C (or it is the first touch).

Distances are computed with a Fenwick tree over access timestamps:
mark each line's latest access time, and the distance is the count of
marked times after the line's previous access — O(log n) per access.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

COMPULSORY = -1  # stack distance of a first touch


class _FenwickTree:
    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index < len(self._tree):
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total


class MattsonStack:
    """Streaming LRU stack-distance computation."""

    def __init__(self, trace_length_hint: int = 0) -> None:
        self._last_seen: dict[int, int] = {}
        self._tree: _FenwickTree | None = None
        self._capacity = max(1, trace_length_hint)
        self._time = 0
        self.histogram: Counter[int] = Counter()

    def _ensure_capacity(self) -> None:
        if self._tree is None:
            self._tree = _FenwickTree(self._capacity)
        elif self._time >= self._capacity:
            # Grow by rebuilding with the live marks only.
            self._capacity *= 2
            tree = _FenwickTree(self._capacity)
            for when in self._last_seen.values():
                tree.add(when, 1)
            self._tree = tree

    def record(self, line: int) -> int:
        """Feed one access; returns its stack distance
        (:data:`COMPULSORY` for a first touch)."""
        self._ensure_capacity()
        assert self._tree is not None
        previous = self._last_seen.get(line)
        if previous is None:
            distance = COMPULSORY
        else:
            marked_after = (self._tree.prefix_sum(self._time - 1)
                            - self._tree.prefix_sum(previous))
            distance = marked_after
            self._tree.add(previous, -1)
        self._tree.add(self._time, 1)
        self._last_seen[line] = self._time
        self._time += 1
        self.histogram[distance] += 1
        return distance

    def misses_for_capacity(self, capacity_lines: int) -> int:
        """LRU misses in a fully associative cache of that many lines."""
        if capacity_lines <= 0:
            return sum(self.histogram.values())
        misses = self.histogram[COMPULSORY]
        for distance, count in self.histogram.items():
            if distance >= capacity_lines:
                misses += count
        return misses

    @property
    def accesses(self) -> int:
        return self._time


def lru_miss_curve(trace: Iterable[int],
                   capacities: Sequence[int]) -> dict[int, int]:
    """Miss counts of fully associative LRU caches of the given line
    capacities, in a single pass over ``trace``."""
    trace = list(trace)
    stack = MattsonStack(trace_length_hint=len(trace))
    for line in trace:
        stack.record(line)
    return {c: stack.misses_for_capacity(c) for c in capacities}
