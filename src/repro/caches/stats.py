"""Access counters shared by every cache model."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for one cache.

    ``by_region`` splits accesses and misses by the requester-supplied
    region tag (Parameter Buffer sections vs. texture/instruction/...)
    which Figures 14-17 report separately.
    """

    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0
    writebacks: int = 0
    clean_evictions: int = 0
    dead_evictions: int = 0
    dead_writebacks_avoided: int = 0
    bypasses: int = 0
    by_region: dict = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def as_dict(self) -> dict:
        """Every counter, flattened for reports (stats conservation:
        a counter that is never surfaced cannot be checked)."""
        summary = dataclasses.asdict(self)
        summary["accesses"] = self.accesses
        summary["misses"] = self.misses
        summary["hits"] = self.hits
        summary["miss_ratio"] = self.miss_ratio
        return summary

    def register(self, registry, prefix: str) -> None:
        """Attach this live object to a metrics registry (StatsLike)."""
        registry.register(prefix, self)

    def note_dead_eviction(self) -> None:
        """The owning L2 evicted a dead Parameter Buffer line."""
        self.dead_evictions += 1

    def note_dead_writeback_avoided(self) -> None:
        """A dead dirty line was dropped without a memory writeback."""
        self.dead_writebacks_avoided += 1

    def record(self, is_write: bool, hit: bool, region: int | None) -> None:
        if is_write:
            self.writes += 1
            if not hit:
                self.write_misses += 1
        else:
            self.reads += 1
            if not hit:
                self.read_misses += 1
        if region is not None:
            entry = self.by_region.setdefault(
                region, {"reads": 0, "writes": 0, "misses": 0}
            )
            entry["writes" if is_write else "reads"] += 1
            if not hit:
                entry["misses"] += 1

    def region_accesses(self, region: int) -> int:
        entry = self.by_region.get(region)
        if not entry:
            return 0
        return entry["reads"] + entry["writes"]

    def region_misses(self, region: int) -> int:
        entry = self.by_region.get(region)
        return entry["misses"] if entry else 0
