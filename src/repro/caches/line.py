"""Cache line state."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LineMeta:
    """Metadata a request can attach to the line it touches.

    The TCOR L2 replacement policy reads these fields to classify lines
    into dead / non-PB / live-PB priority groups; other policies ignore
    them.  ``region`` uses :class:`repro.workloads.trace.Region` values
    but is typed loosely so the cache substrate stays independent of the
    workload package.
    """

    region: int | None = None
    last_tile_rank: int | None = None
    opt_number: int | None = None


@dataclass
class CacheLine:
    """One resident line of a set-associative cache."""

    tag: int
    dirty: bool = False
    meta: LineMeta = field(default_factory=LineMeta)

    def update_meta(self, meta: LineMeta | None) -> None:
        """Merge non-None fields of ``meta`` into this line's metadata."""
        if meta is None:
            return
        if meta.region is not None:
            self.meta.region = meta.region
        if meta.last_tile_rank is not None:
            self.meta.last_tile_rank = meta.last_tile_rank
        if meta.opt_number is not None:
            self.meta.opt_number = meta.opt_number
