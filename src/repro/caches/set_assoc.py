"""Trace-driven set-associative write-back cache."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.caches.indexing import ModuloIndexing, SetIndexing
from repro.caches.line import CacheLine, LineMeta
from repro.caches.policies.base import AccessContext, ReplacementPolicy
from repro.caches.stats import CacheStats
from repro.obs import trace as obs_trace


@dataclass(frozen=True)
class EvictedLine:
    """A line pushed out by a replacement (or flush)."""

    tag: int
    dirty: bool
    meta: LineMeta


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one access.

    ``evicted`` is set when the fill displaced a resident line;
    ``bypassed`` when the request was not cached at all (no evictable
    candidate, or an explicit policy bypass decision upstream).
    """

    hit: bool
    evicted: EvictedLine | None = None
    bypassed: bool = False

    @property
    def writeback(self) -> bool:
        return self.evicted is not None and self.evicted.dirty


class SetAssociativeCache:
    """A write-allocate, write-back cache with a pluggable policy.

    Addresses are byte addresses; the cache works on line addresses
    (``address >> log2(line_bytes)``).  The replacement policy sees a
    monotonically increasing ``access_index`` so offline policies
    (Belady) can line accesses up with a precomputed trace.
    """

    def __init__(self, num_sets: int, ways: int, line_bytes: int,
                 policy: ReplacementPolicy,
                 indexing: SetIndexing | None = None,
                 write_allocate: bool = True,
                 name: str = "cache") -> None:
        if num_sets <= 0 or ways <= 0:
            raise ValueError("sets and ways must be positive")
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a power of two")
        self.num_sets = num_sets
        self.ways = ways
        self.line_bytes = line_bytes
        self._line_shift = line_bytes.bit_length() - 1
        self.policy = policy
        policy.bind(num_sets, ways)
        self.indexing = indexing or ModuloIndexing(num_sets)
        if self.indexing.num_sets != num_sets:
            raise ValueError("indexing function sized for a different cache")
        self.write_allocate = write_allocate
        self.name = name
        self.stats = CacheStats()
        self._sets: list[dict[int, CacheLine]] = [dict() for _ in range(num_sets)]
        self._access_index = 0
        # Scratch context reused across accesses; policies copy fields
        # out of it, never the object (see AccessContext's docstring).
        self._ctx = AccessContext()

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        return self.num_sets * self.ways * self.line_bytes

    def line_address(self, address: int) -> int:
        return address >> self._line_shift

    def set_of(self, address: int) -> int:
        return self.indexing.set_of(self.line_address(address))

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def access(self, address: int, is_write: bool = False,
               meta: LineMeta | None = None,
               evictable: Callable[[CacheLine], bool] | None = None,
               opt_number: int | None = None) -> AccessResult:
        """One read or write; returns hit/eviction outcome.

        ``evictable`` filters victim candidates (locked lines); when no
        candidate survives, the request bypasses the cache.
        """
        tag = self.line_address(address)
        set_index = self.indexing.set_of(tag)
        ctx = self._ctx
        ctx.access_index = self._access_index
        ctx.opt_number = opt_number
        ctx.is_write = is_write
        self._access_index += 1
        lines = self._sets[set_index]
        region = meta.region if meta else None

        tracer = obs_trace.ACTIVE

        line = lines.get(tag)
        if line is not None:
            self.stats.record(is_write, hit=True, region=region)
            line.update_meta(meta)
            if is_write:
                line.dirty = True
            self.policy.on_hit(set_index, tag, ctx)
            if tracer is not None:
                tracer.cache_access(
                    self.name, self.stats, is_write=is_write, hit=True,
                    bypassed=False, tag=tag, set_index=set_index,
                    region=region, opt_number=opt_number)
            return AccessResult(hit=True)

        self.stats.record(is_write, hit=False, region=region)
        if is_write and not self.write_allocate:
            self.stats.bypasses += 1
            if tracer is not None:
                tracer.cache_access(
                    self.name, self.stats, is_write=True, hit=False,
                    bypassed=True, tag=tag, set_index=set_index,
                    region=region, opt_number=opt_number)
            return AccessResult(hit=False, bypassed=True)

        evicted = None
        if len(lines) >= self.ways:
            if evictable is None:
                candidates = list(lines.values())
            else:
                candidates = [resident for resident in lines.values()
                              if evictable(resident)]
            if not candidates:
                self.stats.bypasses += 1
                if tracer is not None:
                    tracer.cache_access(
                        self.name, self.stats, is_write=is_write, hit=False,
                        bypassed=True, tag=tag, set_index=set_index,
                        region=region, opt_number=opt_number)
                return AccessResult(hit=False, bypassed=True)
            victim_tag = self.policy.victim(set_index, candidates, ctx)
            evicted = self._evict(set_index, victim_tag)

        new_line = CacheLine(tag=tag, dirty=is_write)
        new_line.update_meta(meta)
        lines[tag] = new_line
        self.policy.on_insert(set_index, tag, ctx)
        if tracer is not None:
            tracer.cache_access(
                self.name, self.stats, is_write=is_write, hit=False,
                bypassed=False, tag=tag, set_index=set_index,
                region=region, opt_number=opt_number)
        return AccessResult(hit=False, evicted=evicted)

    def _evict(self, set_index: int, tag: int) -> EvictedLine:
        line = self._sets[set_index].pop(tag)
        self.policy.on_evict(set_index, tag)
        if line.dirty:
            self.stats.writebacks += 1
        else:
            self.stats.clean_evictions += 1
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.eviction(self.name, tag=tag, dirty=line.dirty,
                            region=line.meta.region,
                            last_tile_rank=line.meta.last_tile_rank)
        return EvictedLine(tag=tag, dirty=line.dirty, meta=line.meta)

    # ------------------------------------------------------------------
    # Inspection and maintenance
    # ------------------------------------------------------------------
    def probe(self, address: int) -> CacheLine | None:
        """Non-mutating lookup."""
        tag = self.line_address(address)
        return self._sets[self.indexing.set_of(tag)].get(tag)

    def occupancy(self) -> int:
        return sum(len(lines) for lines in self._sets)

    def iter_lines(self) -> Iterator[tuple[int, CacheLine]]:
        for set_index, lines in enumerate(self._sets):
            for line in lines.values():
                yield set_index, line

    def evict_matching(self,
                       predicate: Callable[[CacheLine], bool]
                       ) -> list[EvictedLine]:
        """Evict every resident line satisfying ``predicate``.

        The public seam for bulk teardown (e.g. the end-of-frame
        Parameter Buffer writeback): callers receive the evicted lines —
        in set order, insertion order within a set — and do their own
        writeback accounting, instead of reaching into ``_evict``.
        """
        evicted: list[EvictedLine] = []
        for set_index, lines in enumerate(self._sets):
            matching = [line.tag for line in lines.values()
                        if predicate(line)]
            for tag in matching:
                evicted.append(self._evict(set_index, tag))
        return evicted

    def flush(self) -> list[EvictedLine]:
        """Evict everything (end of frame); dirty lines are returned in
        eviction order for writeback accounting."""
        flushed = []
        for set_index, lines in enumerate(self._sets):
            for tag in list(lines):
                flushed.append(self._evict(set_index, tag))
        return flushed

    def reset(self) -> None:
        """Drop all contents and statistics."""
        self._sets = [dict() for _ in range(self.num_sets)]
        self.stats = CacheStats()
        self.policy.reset()
        self._access_index = 0
