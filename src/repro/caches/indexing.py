"""Set-index functions.

The paper's Primitive Buffer uses an XOR-based placement function
(González et al. [12]) to spread conflicting addresses over sets; the
baseline uses plain modulo indexing, which is exactly what makes the
contiguous PB-Lists layout pathological (tile lists separated by a large
power of two all map to the same few sets).
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class SetIndexing(ABC):
    """Maps a line address (address >> log2(line size)) to a set index."""

    def __init__(self, num_sets: int) -> None:
        if num_sets <= 0:
            raise ValueError("need at least one set")
        self.num_sets = num_sets

    @abstractmethod
    def set_of(self, line_address: int) -> int:
        """Set index in [0, num_sets)."""


class ModuloIndexing(SetIndexing):
    """Conventional indexing: low-order line-address bits."""

    def set_of(self, line_address: int) -> int:
        return line_address % self.num_sets


class XorIndexing(SetIndexing):
    """XOR-folded indexing.

    The line address is split into index-sized chunks which are XOR-ed
    together, so addresses that differ only in high-order bits (the
    power-of-two strides of the contiguous PB-Lists layout) land in
    different sets.  For non-power-of-two set counts the fold is followed
    by a modulo.
    """

    def __init__(self, num_sets: int) -> None:
        super().__init__(num_sets)
        self._bits = max(1, (num_sets - 1).bit_length())
        self._mask = (1 << self._bits) - 1
        self._power_of_two = num_sets & (num_sets - 1) == 0

    def set_of(self, line_address: int) -> int:
        folded = 0
        remaining = line_address
        while remaining:
            folded ^= remaining & self._mask
            remaining >>= self._bits
        return folded if self._power_of_two and folded < self.num_sets \
            else folded % self.num_sets
