"""Most-recently-used replacement.

MRU is the worst reasonable policy on the Parameter Buffer stream (paper
Figure 13 uses it as the upper reference curve): the stream's reuse is
dominated by near-term re-reads that MRU throws away.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.caches.line import CacheLine
from repro.caches.policies.base import AccessContext, ReplacementPolicy


class MRUPolicy(ReplacementPolicy):
    name = "mru"

    def __init__(self) -> None:
        self._recency: dict[int, OrderedDict[int, None]] = {}

    def _set(self, set_index: int) -> OrderedDict[int, None]:
        return self._recency.setdefault(set_index, OrderedDict())

    def on_insert(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        self._set(set_index)[tag] = None

    def on_hit(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        self._set(set_index).move_to_end(tag)

    def victim(self, set_index: int, candidates: Sequence[CacheLine],
               ctx: AccessContext) -> int:
        allowed = {line.tag for line in candidates}
        for tag in reversed(self._set(set_index)):
            if tag in allowed:
                return tag
        raise RuntimeError("victim() called with no evictable candidate")

    def on_evict(self, set_index: int, tag: int) -> None:
        self._set(set_index).pop(tag, None)

    def reset(self) -> None:
        self._recency.clear()
