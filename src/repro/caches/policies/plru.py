"""Tree-based pseudo-LRU.

The single-bit binary tree per set that real L1s implement.  Ways must be
a power of two.  When the tree's choice is not evictable (locked by the
caller), the nearest evictable leaf is used instead.
"""

from __future__ import annotations

from typing import Sequence

from repro.caches.line import CacheLine
from repro.caches.policies.base import AccessContext, ReplacementPolicy


class PLRUPolicy(ReplacementPolicy):
    name = "plru"

    def __init__(self) -> None:
        self._bits: dict[int, list[int]] = {}
        self._slots: dict[int, list[int | None]] = {}
        self._slot_of: dict[int, dict[int, int]] = {}

    def bind(self, num_sets: int, ways: int) -> None:
        super().bind(num_sets, ways)
        if ways & (ways - 1):
            raise ValueError("PLRU requires a power-of-two way count")

    def _state(self, set_index: int):
        bits = self._bits.setdefault(set_index, [0] * max(1, self.ways - 1))
        slots = self._slots.setdefault(set_index, [None] * self.ways)
        slot_of = self._slot_of.setdefault(set_index, {})
        return bits, slots, slot_of

    def _touch(self, bits: list[int], slot: int) -> None:
        """Flip the tree bits along the path to ``slot`` away from it.

        Bit convention: 0 = next victim in the left subtree, 1 = right.
        Touching a slot points every bit on its path at the *other* half.
        """
        node = 0
        span = self.ways
        while span > 1:
            span //= 2
            left = slot < span
            bits[node] = 1 if left else 0  # victim lives in the other half
            node = 2 * node + (1 if left else 2)
            if not left:
                slot -= span

    def _walk(self, bits: list[int]) -> int:
        node = 0
        slot = 0
        span = self.ways
        while span > 1:
            span //= 2
            go_right = bits[node] == 1
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                slot += span
        return slot

    def on_insert(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        bits, slots, slot_of = self._state(set_index)
        try:
            slot = slots.index(None)
        except ValueError:
            raise RuntimeError("insert into a full set without eviction")
        slots[slot] = tag
        slot_of[tag] = slot
        self._touch(bits, slot)

    def on_hit(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        bits, _slots, slot_of = self._state(set_index)
        self._touch(bits, slot_of[tag])

    def victim(self, set_index: int, candidates: Sequence[CacheLine],
               ctx: AccessContext) -> int:
        bits, slots, _slot_of = self._state(set_index)
        allowed = {line.tag for line in candidates}
        slot = self._walk(bits)
        tag = slots[slot]
        if tag in allowed:
            return tag
        for candidate in slots:  # fall back: any evictable slot
            if candidate in allowed:
                return candidate
        raise RuntimeError("victim() called with no evictable candidate")

    def on_evict(self, set_index: int, tag: int) -> None:
        _bits, slots, slot_of = self._state(set_index)
        slot = slot_of.pop(tag, None)
        if slot is not None:
            slots[slot] = None

    def reset(self) -> None:
        self._bits.clear()
        self._slots.clear()
        self._slot_of.clear()
