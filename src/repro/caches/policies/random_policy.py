"""Seeded random replacement (a cheap hardware baseline).

The policy never touches the module-global ``random`` state: victims
come from a private ``random.Random`` so back-to-back simulations (and
anything else sharing the interpreter) stay bit-for-bit reproducible.
An explicit generator can be injected for tests that want to share or
pre-wind one.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.caches.line import CacheLine
from repro.caches.policies.base import AccessContext, ReplacementPolicy


class RandomPolicy(ReplacementPolicy):
    name = "random"

    def __init__(self, seed: int = 0,
                 rng: random.Random | None = None) -> None:
        self._seed = seed
        self._rng = rng if rng is not None else random.Random(seed)

    def on_insert(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        pass

    def on_hit(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        pass

    def victim(self, set_index: int, candidates: Sequence[CacheLine],
               ctx: AccessContext) -> int:
        return self._rng.choice(list(candidates)).tag

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
