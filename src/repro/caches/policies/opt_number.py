"""TCOR's online OPT-number replacement (paper Section III-C.6).

Unlike offline Belady, the policy never sees the future trace: every
*request* carries the traversal rank of the next tile that will use the
line (the OPT Number computed by the Polygon List Builder and stored in
the PMD).  On replacement, the line with the greatest OPT Number — the
farthest next use — is evicted.  Lines whose OPT Number is the
"no next use" sentinel are preferred victims.

This is exactly equivalent to Belady on the Parameter Buffer read stream
because reads arrive in traversal order, so "next tile rank" and "next
access index" induce the same ordering (a property our integration tests
assert).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.caches.line import CacheLine
from repro.caches.policies.base import AccessContext, ReplacementPolicy
from repro.constants import NO_NEXT_USE_RANK

# The OPT Number is a 12-bit field in hardware; any rank beyond the frame
# compares as the shared "never used again" sentinel.
NO_NEXT_USE = NO_NEXT_USE_RANK


class OptNumberPolicy(ReplacementPolicy):
    """Evict the unlocked line with the greatest OPT Number.

    The cache stores each request's OPT Number in the line's metadata
    (see :meth:`CacheLine.update_meta`); the policy only reads it.  Ties
    fall back to LRU order, which the policy tracks itself.
    """

    name = "opt_number"

    def __init__(self) -> None:
        self._recency: dict[int, OrderedDict[int, None]] = {}

    def _set(self, set_index: int) -> OrderedDict[int, None]:
        return self._recency.setdefault(set_index, OrderedDict())

    def on_insert(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        self._set(set_index)[tag] = None

    def on_hit(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        self._set(set_index).move_to_end(tag)

    @staticmethod
    def effective_opt_number(line: CacheLine) -> int:
        number = line.meta.opt_number
        return NO_NEXT_USE if number is None else number

    def victim(self, set_index: int, candidates: Sequence[CacheLine],
               ctx: AccessContext) -> int:
        recency = self._set(set_index)
        age = {tag: position for position, tag in enumerate(recency)}
        return max(
            candidates,
            key=lambda line: (self.effective_opt_number(line),
                              -age.get(line.tag, 0)),
        ).tag

    def on_evict(self, set_index: int, tag: int) -> None:
        self._set(set_index).pop(tag, None)

    def reset(self) -> None:
        self._recency.clear()

    def should_bypass_write(self, candidates: Sequence[CacheLine],
                            request_opt_number: int) -> bool:
        """Paper Section III-C.4: bypass a fill write when every resident
        line will be used no later than the incoming primitive.

        The write is admitted only if some unlocked line has a *strictly
        greater* OPT Number than the request (equal numbers — same tile —
        also bypass).
        """
        if not candidates:
            return True
        farthest = max(self.effective_opt_number(line) for line in candidates)
        return farthest <= request_opt_number
