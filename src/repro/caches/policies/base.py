"""Replacement-policy interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.caches.line import CacheLine


@dataclass
class AccessContext:
    """Per-access information a policy may use.

    ``access_index`` is the position of this access in the trace (Belady
    OPT keys its next-use table on it); ``opt_number`` is the traversal
    rank of the requester's next use (the OPT-number policy's input);
    ``is_write`` lets insertion-differentiating policies distinguish fill
    writes from reads.

    The owning cache reuses ONE mutable instance across accesses (the
    access path is the simulator's hottest loop); policies must copy the
    scalar fields they need, never retain the object itself.
    """

    access_index: int = 0
    opt_number: int | None = None
    is_write: bool = False


class ReplacementPolicy(ABC):
    """Victim selection plus bookkeeping hooks.

    A policy instance is bound to one cache.  ``set_index`` identifies the
    set; ``tag`` is the line address.  The cache guarantees that
    ``on_insert``/``on_evict`` are called exactly once per residency and
    ``on_hit`` for every hit.
    """

    name = "abstract"

    def bind(self, num_sets: int, ways: int) -> None:
        """Called once by the owning cache before any access."""
        self.num_sets = num_sets
        self.ways = ways

    @abstractmethod
    def on_insert(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        ...

    @abstractmethod
    def on_hit(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        ...

    @abstractmethod
    def victim(self, set_index: int, candidates: Sequence[CacheLine],
               ctx: AccessContext) -> int:
        """Tag of the line to evict, chosen among ``candidates``.

        ``candidates`` is non-empty and lists every *evictable* line of
        the set (the cache filters locked lines out before calling).
        """

    def on_evict(self, set_index: int, tag: int) -> None:
        """Default: nothing to clean up."""

    def reset(self) -> None:
        """Forget all state (used when replaying a cache over a new frame)."""
