"""Offline Belady/OPT replacement.

Given the full future trace, evict the resident line whose next use is
farthest away (never-used-again lines first).  This is the yardstick the
paper measures every practical policy against, and the reference that
TCOR's online OPT-number mechanism is validated against in our tests.

Victim selection uses a per-set lazy max-heap keyed on next-use index, so
fully associative caches with thousands of ways stay O(log n) per access
— required for the Figure 1/11 size sweeps.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from repro.caches.line import CacheLine
from repro.caches.policies.base import AccessContext, ReplacementPolicy

NEVER = 1 << 62  # next-use sentinel for "not accessed again"


def next_use_table(tags: Sequence[int]) -> list[int]:
    """For each access position, the index of the next access to the same
    tag (``NEVER`` when there is none)."""
    next_use = [NEVER] * len(tags)
    upcoming: dict[int, int] = {}
    for index in range(len(tags) - 1, -1, -1):
        next_use[index] = upcoming.get(tags[index], NEVER)
        upcoming[tags[index]] = index
    return next_use


class BeladyOPT(ReplacementPolicy):
    """OPT driven by a precomputed next-use table.

    The owning cache must replay exactly the trace the table was built
    from, passing the running ``access_index`` in the context (the
    :class:`~repro.caches.set_assoc.SetAssociativeCache` does this
    automatically).
    """

    name = "belady"

    def __init__(self, next_use: Sequence[int]) -> None:
        self._next_use = next_use
        self._resident_next: dict[int, int] = {}
        self._heaps: dict[int, list[tuple[int, int]]] = {}

    @classmethod
    def from_trace(cls, tags: Iterable[int]) -> "BeladyOPT":
        return cls(next_use_table(list(tags)))

    def _record(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        if ctx.access_index >= len(self._next_use):
            raise IndexError(
                "access beyond the trace BeladyOPT was constructed from"
            )
        nxt = self._next_use[ctx.access_index]
        self._resident_next[tag] = nxt
        heap = self._heaps.setdefault(set_index, [])
        heapq.heappush(heap, (-nxt, tag))

    def on_insert(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        self._record(set_index, tag, ctx)

    def on_hit(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        self._record(set_index, tag, ctx)

    def victim(self, set_index: int, candidates: Sequence[CacheLine],
               ctx: AccessContext) -> int:
        heap = self._heaps.get(set_index, [])
        allowed = {line.tag for line in candidates}
        stashed: list[tuple[int, int]] = []
        chosen: int | None = None
        while heap:
            neg_next, tag = heap[0]
            if self._resident_next.get(tag) != -neg_next:
                heapq.heappop(heap)  # stale entry
                continue
            if tag not in allowed:
                stashed.append(heapq.heappop(heap))  # locked; keep for later
                continue
            chosen = tag
            break
        for entry in stashed:
            heapq.heappush(heap, entry)
        if chosen is None:
            raise RuntimeError("victim() called with no evictable candidate")
        return chosen

    def on_evict(self, set_index: int, tag: int) -> None:
        self._resident_next.pop(tag, None)

    def reset(self) -> None:
        self._resident_next.clear()
        self._heaps.clear()
