"""SHiP: Signature-based Hit Predictor (Wu et al., MICRO 2011).

The paper's related work cites SHiP among the state-of-the-art
replacement policies that beat LRU on CPU LLCs.  SHiP augments SRRIP
with a table of saturating counters indexed by an access *signature*;
lines inserted by signatures that historically never hit are predicted
dead-on-arrival (inserted at distant RRPV).

CPU SHiP signatures are PC hashes.  A trace-driven memory-side model has
no PCs, so the signature is a hash of the line address's upper bits (the
"memory region" signature variant from the SHiP paper), which captures
the same structure in our streams: PB-Lists vs PB-Attributes vs texture
pages behave very differently.
"""

from __future__ import annotations

from typing import Sequence

from repro.caches.line import CacheLine
from repro.caches.policies.base import AccessContext
from repro.caches.policies.rrip import SRRIPPolicy


class SHiPPolicy(SRRIPPolicy):
    """SRRIP with signature-based insertion prediction."""

    name = "ship"

    def __init__(self, m_bits: int = 2, signature_bits: int = 10,
                 counter_bits: int = 2, region_shift: int = 8) -> None:
        super().__init__(m_bits)
        self.signature_mask = (1 << signature_bits) - 1
        self.counter_max = (1 << counter_bits) - 1
        self.region_shift = region_shift
        # Signature History Counter Table, weakly reused by default.
        self._shct: dict[int, int] = {}
        # Per-resident-line bookkeeping: signature and outcome bit.
        self._line_signature: dict[int, int] = {}
        self._line_was_reused: dict[int, bool] = {}

    def _signature(self, tag: int) -> int:
        region = tag >> self.region_shift
        return (region ^ (region >> 7) ^ (region >> 13)) & self.signature_mask

    def _counter(self, signature: int) -> int:
        return self._shct.get(signature, 1)

    def _insertion_rrpv(self, set_index: int) -> int:
        # Placeholder; the real decision is made in on_insert where the
        # tag (and therefore the signature) is known.
        return self.long_interval

    def on_insert(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        signature = self._signature(tag)
        self._line_signature[tag] = signature
        self._line_was_reused[tag] = False
        if self._counter(signature) == 0:
            rrpv = self.distant          # predicted dead on arrival
        else:
            rrpv = self.long_interval
        self._set(set_index)[tag] = rrpv

    def on_hit(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        super().on_hit(set_index, tag, ctx)
        if not self._line_was_reused.get(tag, False):
            self._line_was_reused[tag] = True
            signature = self._line_signature.get(tag)
            if signature is not None:
                self._shct[signature] = min(self.counter_max,
                                            self._counter(signature) + 1)

    def on_evict(self, set_index: int, tag: int) -> None:
        super().on_evict(set_index, tag)
        signature = self._line_signature.pop(tag, None)
        reused = self._line_was_reused.pop(tag, False)
        if signature is not None and not reused:
            self._shct[signature] = max(0, self._counter(signature) - 1)

    def reset(self) -> None:
        super().reset()
        self._shct.clear()
        self._line_signature.clear()
        self._line_was_reused.clear()
