"""OPT with a bounded lookahead window (Shepherd-Cache-style).

Related work (Rajan & Ramaswamy's Shepherd Cache, the paper's [31])
emulates OPT by looking a *bounded* number of accesses into the future
and bridges only 30-52% of the LRU-OPT gap.  This policy makes the same
trade-off explicit: the victim is the line whose next use is farthest
*within the next W accesses*; lines not referenced inside the window are
indistinguishable and fall back to LRU order among themselves.

It exists to quantify why TCOR works: the Parameter Buffer gives the
Tile Cache *unbounded* lookahead for free (the Polygon List Builder has
already seen the whole future), which no window-based emulation matches.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Sequence

from repro.caches.line import CacheLine
from repro.caches.policies.base import AccessContext, ReplacementPolicy
from repro.caches.policies.belady import NEVER, next_use_table


class LookaheadOPT(ReplacementPolicy):
    """Belady limited to a W-access future window, LRU beyond it."""

    name = "lookahead"

    def __init__(self, next_use: Sequence[int], window: int) -> None:
        if window <= 0:
            raise ValueError("lookahead window must be positive")
        self._next_use = next_use
        self.window = window
        self._resident_next: dict[int, int] = {}
        self._recency: dict[int, OrderedDict[int, None]] = {}
        self._now = 0

    @classmethod
    def from_trace(cls, tags: Iterable[int], window: int) -> "LookaheadOPT":
        return cls(next_use_table(list(tags)), window)

    def _set(self, set_index: int) -> OrderedDict[int, None]:
        return self._recency.setdefault(set_index, OrderedDict())

    def _record(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        if ctx.access_index >= len(self._next_use):
            raise IndexError(
                "access beyond the trace LookaheadOPT was built from")
        self._now = ctx.access_index
        self._resident_next[tag] = self._next_use[ctx.access_index]

    def on_insert(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        self._record(set_index, tag, ctx)
        self._set(set_index)[tag] = None

    def on_hit(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        self._record(set_index, tag, ctx)
        self._set(set_index).move_to_end(tag)

    def victim(self, set_index: int, candidates: Sequence[CacheLine],
               ctx: AccessContext) -> int:
        horizon = ctx.access_index + self.window
        allowed = {line.tag for line in candidates}
        beyond_window: list[int] = []   # in LRU order
        farthest_tag: int | None = None
        farthest_use = -1
        for tag in self._set(set_index):  # oldest first
            if tag not in allowed:
                continue
            next_use = self._resident_next.get(tag, NEVER)
            if next_use >= horizon:
                beyond_window.append(tag)
            elif next_use > farthest_use:
                farthest_use = next_use
                farthest_tag = tag
        if beyond_window:
            # Everything past the horizon looks identical: LRU among them.
            return beyond_window[0]
        if farthest_tag is None:
            raise RuntimeError("victim() called with no evictable candidate")
        return farthest_tag

    def on_evict(self, set_index: int, tag: int) -> None:
        self._resident_next.pop(tag, None)
        self._set(set_index).pop(tag, None)

    def reset(self) -> None:
        self._resident_next.clear()
        self._recency.clear()
        self._now = 0
