"""First-in-first-out replacement (insertion order, hits ignored)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.caches.line import CacheLine
from repro.caches.policies.base import AccessContext, ReplacementPolicy


class FIFOPolicy(ReplacementPolicy):
    name = "fifo"

    def __init__(self) -> None:
        self._order: dict[int, OrderedDict[int, None]] = {}

    def _set(self, set_index: int) -> OrderedDict[int, None]:
        return self._order.setdefault(set_index, OrderedDict())

    def on_insert(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        self._set(set_index)[tag] = None

    def on_hit(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        pass  # FIFO ignores reuse.

    def victim(self, set_index: int, candidates: Sequence[CacheLine],
               ctx: AccessContext) -> int:
        allowed = {line.tag for line in candidates}
        for tag in self._set(set_index):
            if tag in allowed:
                return tag
        raise RuntimeError("victim() called with no evictable candidate")

    def on_evict(self, set_index: int, tag: int) -> None:
        self._set(set_index).pop(tag, None)

    def reset(self) -> None:
        self._order.clear()
