"""Hawkeye (Jain & Lin, ISCA 2016) — the paper's reference [21].

Hawkeye "looks backwards" instead of forwards: OPTgen replays a window
of past accesses to decide what OPT *would have done* with each of them
(hit or miss), and a predictor learns, per signature, whether lines
brought in by that signature are cache-friendly.  Friendly lines insert
like SRRIP-hot; averse lines insert dead-on-arrival.

OPTgen here is the exact structure from the paper: a circular *liveness
interval* vector.  A reuse interval [prev, now] is an OPT hit iff every
time step in it still has spare cache capacity; if so, all its steps'
occupancy is incremented.

As with SHiP, signatures are address-region hashes rather than PCs
(trace-driven model without program counters).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.caches.line import CacheLine
from repro.caches.policies.base import AccessContext, ReplacementPolicy


class OPTgen:
    """Liveness-interval based reconstruction of OPT's decisions."""

    def __init__(self, capacity: int, window: int = 8 * 64) -> None:
        if capacity <= 0:
            raise ValueError("OPTgen needs positive capacity")
        self.capacity = capacity
        self.window = window
        self._occupancy = [0] * window
        self._time = 0
        self._last_access: dict[int, int] = {}

    def access(self, tag: int) -> bool | None:
        """Record an access; True/False = OPT hit/miss, None = cold."""
        now = self._time
        previous = self._last_access.get(tag)
        self._last_access[tag] = now
        self._time += 1
        verdict: bool | None = None
        if previous is not None and now - previous < self.window:
            steps = range(previous, now)
            if all(self._occupancy[t % self.window] < self.capacity
                   for t in steps):
                for t in steps:
                    self._occupancy[t % self.window] += 1
                verdict = True
            else:
                verdict = False
        # Retire the slot that `now` is about to reuse next lap.
        self._occupancy[now % self.window] = 0
        return verdict


class HawkeyePolicy(ReplacementPolicy):
    """OPTgen-trained insertion with RRIP-style aging."""

    name = "hawkeye"

    def __init__(self, capacity_per_set: int | None = None,
                 signature_bits: int = 10, counter_bits: int = 3,
                 region_shift: int = 8, m_bits: int = 3) -> None:
        self.signature_mask = (1 << signature_bits) - 1
        self.counter_max = (1 << counter_bits) - 1
        self.region_shift = region_shift
        self.distant = (1 << m_bits) - 1
        self._capacity_per_set = capacity_per_set
        self._predictor: dict[int, int] = {}
        self._optgen: dict[int, OPTgen] = {}
        self._rrpv: dict[int, dict[int, int]] = {}
        self._recency: dict[int, OrderedDict[int, None]] = {}
        self._line_signature: dict[int, int] = {}

    def bind(self, num_sets: int, ways: int) -> None:
        super().bind(num_sets, ways)
        if self._capacity_per_set is None:
            self._capacity_per_set = ways

    def _signature(self, tag: int) -> int:
        region = tag >> self.region_shift
        return (region ^ (region >> 9) ^ (region >> 5)) & self.signature_mask

    def _counter(self, signature: int) -> int:
        return self._predictor.get(signature, self.counter_max // 2 + 1)

    def _train(self, signature: int, friendly: bool) -> None:
        value = self._counter(signature)
        if friendly:
            self._predictor[signature] = min(self.counter_max, value + 1)
        else:
            self._predictor[signature] = max(0, value - 1)

    def _is_friendly(self, signature: int) -> bool:
        return self._counter(signature) > self.counter_max // 2

    def _structures(self, set_index: int):
        optgen = self._optgen.setdefault(
            set_index, OPTgen(self._capacity_per_set or self.ways))
        rrpv = self._rrpv.setdefault(set_index, {})
        recency = self._recency.setdefault(set_index, OrderedDict())
        return optgen, rrpv, recency

    def _observe(self, set_index: int, tag: int) -> None:
        optgen, _rrpv, _rec = self._structures(set_index)
        signature = self._signature(tag)
        verdict = optgen.access(tag)
        if verdict is not None:
            self._train(signature, friendly=verdict)
        self._line_signature[tag] = signature

    def on_insert(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        self._observe(set_index, tag)
        _optgen, rrpv, recency = self._structures(set_index)
        signature = self._line_signature[tag]
        rrpv[tag] = 0 if self._is_friendly(signature) else self.distant
        recency[tag] = None

    def on_hit(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        self._observe(set_index, tag)
        _optgen, rrpv, recency = self._structures(set_index)
        signature = self._line_signature[tag]
        rrpv[tag] = 0 if self._is_friendly(signature) else self.distant
        recency.move_to_end(tag)

    def victim(self, set_index: int, candidates: Sequence[CacheLine],
               ctx: AccessContext) -> int:
        _optgen, rrpv, recency = self._structures(set_index)
        allowed = {line.tag for line in candidates}
        # Prefer cache-averse lines (RRPV == distant), oldest first;
        # otherwise evict the oldest friendly line (Hawkeye detrains its
        # signature: OPT would not have kept it either).
        for tag in recency:
            if tag in allowed and rrpv.get(tag, self.distant) >= self.distant:
                return tag
        for tag in recency:
            if tag in allowed:
                signature = self._line_signature.get(tag)
                if signature is not None:
                    self._train(signature, friendly=False)
                return tag
        raise RuntimeError("victim() called with no evictable candidate")

    def on_evict(self, set_index: int, tag: int) -> None:
        _optgen, rrpv, recency = self._structures(set_index)
        rrpv.pop(tag, None)
        recency.pop(tag, None)

    def reset(self) -> None:
        self._predictor.clear()
        self._optgen.clear()
        self._rrpv.clear()
        self._recency.clear()
        self._line_signature.clear()
