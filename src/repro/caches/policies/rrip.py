"""Re-Reference Interval Prediction policies (Jaleel et al., ISCA 2010).

SRRIP predicts a *long* re-reference interval on insertion; BRRIP
predicts *distant* for most insertions; DRRIP set-duels between them with
a policy-selection counter.  Figure 13 of the paper contrasts DRRIP
(M = 2) with LRU, MRU and OPT on the Parameter Buffer stream.
"""

from __future__ import annotations

from typing import Sequence

from repro.caches.line import CacheLine
from repro.caches.policies.base import AccessContext, ReplacementPolicy


class SRRIPPolicy(ReplacementPolicy):
    """Static RRIP with hit-priority promotion."""

    name = "srrip"

    def __init__(self, m_bits: int = 2) -> None:
        if m_bits < 1:
            raise ValueError("RRIP needs at least one bit")
        self.m_bits = m_bits
        self.distant = (1 << m_bits) - 1
        self.long_interval = self.distant - 1
        self._rrpv: dict[int, dict[int, int]] = {}

    def _set(self, set_index: int) -> dict[int, int]:
        return self._rrpv.setdefault(set_index, {})

    def _insertion_rrpv(self, set_index: int) -> int:
        return self.long_interval

    def on_insert(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        self._set(set_index)[tag] = self._insertion_rrpv(set_index)

    def on_hit(self, set_index: int, tag: int, ctx: AccessContext) -> None:
        self._set(set_index)[tag] = 0

    def victim(self, set_index: int, candidates: Sequence[CacheLine],
               ctx: AccessContext) -> int:
        rrpv = self._set(set_index)
        allowed = [line.tag for line in candidates]
        while True:
            for tag in allowed:
                if rrpv.get(tag, self.distant) >= self.distant:
                    return tag
            for tag in rrpv:
                rrpv[tag] += 1

    def on_evict(self, set_index: int, tag: int) -> None:
        self._set(set_index).pop(tag, None)

    def reset(self) -> None:
        self._rrpv.clear()


class BRRIPPolicy(SRRIPPolicy):
    """Bimodal RRIP: inserts at distant except every 32nd insertion.

    A deterministic counter replaces the usual random draw so simulations
    are reproducible.
    """

    name = "brrip"

    def __init__(self, m_bits: int = 2, long_every: int = 32) -> None:
        super().__init__(m_bits)
        if long_every < 1:
            raise ValueError("long_every must be positive")
        self.long_every = long_every
        self._insertions = 0

    def _insertion_rrpv(self, set_index: int) -> int:
        self._insertions += 1
        if self._insertions % self.long_every == 0:
            return self.long_interval
        return self.distant

    def reset(self) -> None:
        super().reset()
        self._insertions = 0


class DRRIPPolicy(SRRIPPolicy):
    """Dynamic RRIP: SRRIP/BRRIP set dueling with a saturating PSEL.

    A handful of leader sets always run one of the component policies;
    misses in leader sets steer PSEL, and follower sets adopt whichever
    component is currently missing less.
    """

    name = "drrip"

    def __init__(self, m_bits: int = 2, psel_bits: int = 10,
                 dueling_period: int = 32, long_every: int = 32) -> None:
        super().__init__(m_bits)
        self.dueling_period = dueling_period
        self.long_every = long_every
        self._psel_max = (1 << psel_bits) - 1
        self._psel = self._psel_max // 2
        self._insertions = 0

    def _leader_kind(self, set_index: int) -> str | None:
        phase = set_index % self.dueling_period
        if phase == 0:
            return "srrip"
        if phase == self.dueling_period // 2:
            return "brrip"
        return None

    def _brrip_rrpv(self) -> int:
        self._insertions += 1
        if self._insertions % self.long_every == 0:
            return self.long_interval
        return self.distant

    def _insertion_rrpv(self, set_index: int) -> int:
        leader = self._leader_kind(set_index)
        if leader == "srrip":
            # A miss (insertion) in an SRRIP leader is evidence against it.
            self._psel = min(self._psel_max, self._psel + 1)
            return self.long_interval
        if leader == "brrip":
            self._psel = max(0, self._psel - 1)
            return self._brrip_rrpv()
        # Followers pick the component with fewer leader misses.
        if self._psel < self._psel_max // 2:
            return self.long_interval
        return self._brrip_rrpv()

    def reset(self) -> None:
        super().reset()
        self._psel = self._psel_max // 2
        self._insertions = 0
