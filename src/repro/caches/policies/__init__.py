"""Replacement policies.

Every policy implements :class:`ReplacementPolicy`; caches call back on
hits, insertions and evictions and delegate victim selection.  Offline
Belady OPT additionally needs the full future trace
(:meth:`BeladyOPT.from_trace`), and the OPT-number policy consumes the
per-request OPT Numbers that TCOR's Polygon List Builder embeds in PMDs.
"""

from repro.caches.policies.base import AccessContext, ReplacementPolicy
from repro.caches.policies.lru import LRUPolicy
from repro.caches.policies.mru import MRUPolicy
from repro.caches.policies.fifo import FIFOPolicy
from repro.caches.policies.random_policy import RandomPolicy
from repro.caches.policies.plru import PLRUPolicy
from repro.caches.policies.rrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from repro.caches.policies.belady import BeladyOPT
from repro.caches.policies.lookahead import LookaheadOPT
from repro.caches.policies.ship import SHiPPolicy
from repro.caches.policies.hawkeye import HawkeyePolicy, OPTgen
from repro.caches.policies.opt_number import OptNumberPolicy

_FACTORIES = {
    "lru": LRUPolicy,
    "mru": MRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
    "plru": PLRUPolicy,
    "srrip": SRRIPPolicy,
    "brrip": BRRIPPolicy,
    "drrip": DRRIPPolicy,
    "opt_number": OptNumberPolicy,
    "ship": SHiPPolicy,
    "hawkeye": HawkeyePolicy,
}


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Construct a policy by name (``belady`` needs a trace; use
    :meth:`BeladyOPT.from_trace` directly)."""
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(_FACTORIES)}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "AccessContext",
    "BRRIPPolicy",
    "BeladyOPT",
    "DRRIPPolicy",
    "FIFOPolicy",
    "HawkeyePolicy",
    "LRUPolicy",
    "LookaheadOPT",
    "OPTgen",
    "SHiPPolicy",
    "MRUPolicy",
    "OptNumberPolicy",
    "PLRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SRRIPPolicy",
    "make_policy",
]
