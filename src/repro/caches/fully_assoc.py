"""Fully associative cache constructor.

A fully associative cache is a set-associative cache with a single set;
this helper sizes it from a byte capacity the way the paper's
fully-associative sweeps (Figures 1 and 11) are parameterized.
"""

from __future__ import annotations

from repro.caches.policies.base import ReplacementPolicy
from repro.caches.set_assoc import SetAssociativeCache


def fully_associative_cache(size_bytes: int, line_bytes: int,
                            policy: ReplacementPolicy,
                            name: str = "fa-cache") -> SetAssociativeCache:
    if size_bytes < line_bytes:
        raise ValueError("cache smaller than one line")
    ways = size_bytes // line_bytes
    return SetAssociativeCache(
        num_sets=1, ways=ways, line_bytes=line_bytes, policy=policy,
        name=name,
    )
