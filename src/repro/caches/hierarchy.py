"""Two-level cache hierarchy replay.

Composes an L1 with a shared L2 backed by main memory.  An access first
probes the L1; L1 misses become L2 reads, L1 dirty evictions (and
bypassed writes) become L2 writes, and L2 misses/writebacks become main
memory accesses — the accounting behind Figures 14-19.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.caches.line import LineMeta
from repro.caches.set_assoc import SetAssociativeCache
from repro.obs import trace as obs_trace


@dataclass
class MemoryCounters:
    """Main-memory traffic, split by requester-declared region."""

    reads: int = 0
    writes: int = 0
    by_region: dict = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def as_dict(self) -> dict:
        summary = dataclasses.asdict(self)
        summary["accesses"] = self.accesses
        return summary

    def register(self, registry, prefix: str) -> None:
        """Attach this live object to a metrics registry (StatsLike)."""
        registry.register(prefix, self)

    def record(self, is_write: bool, region: int | None) -> None:
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        if region is not None:
            entry = self.by_region.setdefault(region, {"reads": 0, "writes": 0})
            entry["writes" if is_write else "reads"] += 1
        tracer = obs_trace.ACTIVE
        if tracer is not None:
            tracer.memory_traffic(self, is_write=is_write, region=region)

    def region_reads(self, region: int) -> int:
        return self.by_region.get(region, {}).get("reads", 0)

    def region_writes(self, region: int) -> int:
        return self.by_region.get(region, {}).get("writes", 0)

    def region_accesses(self, region: int) -> int:
        return self.region_reads(region) + self.region_writes(region)


@dataclass(frozen=True)
class HierarchyOutcome:
    """What one L1 access caused downstream."""

    l1_hit: bool
    l2_reads: int = 0
    l2_writes: int = 0
    memory_reads: int = 0
    memory_writes: int = 0


class SharedL2:
    """A shared L2 plus the main-memory counters behind it.

    Several L1 front-ends (tile, texture, vertex, instruction) funnel
    into one instance; it turns L2 misses into memory reads and dirty L2
    evictions into memory writes.  A ``dead`` predicate installed by the
    TCOR L2 enhancement suppresses the writeback of dead lines.
    """

    def __init__(self, l2: SetAssociativeCache,
                 memory: MemoryCounters | None = None) -> None:
        self.l2 = l2
        self.memory = memory if memory is not None else MemoryCounters()

    def access(self, address: int, is_write: bool,
               meta: LineMeta | None = None) -> tuple[int, int]:
        """Returns (memory_reads, memory_writes) this L2 access caused."""
        region = meta.region if meta else None
        result = self.l2.access(address, is_write=is_write, meta=meta)
        mem_reads = mem_writes = 0
        if not result.hit and not result.bypassed and not is_write:
            # Read misses fill from memory.  Write misses (L1 writebacks
            # of full lines, or fresh-buffer streaming writes) allocate
            # without fetching.
            self.memory.record(is_write=False, region=region)
            mem_reads += 1
        if result.bypassed:
            self.memory.record(is_write=is_write, region=region)
            if is_write:
                mem_writes += 1
            else:
                mem_reads += 1
        if result.evicted is not None and result.evicted.dirty:
            self.memory.record(is_write=True, region=result.evicted.meta.region)
            mem_writes += 1
        return mem_reads, mem_writes

    def flush(self) -> int:
        """End-of-frame: write back every dirty resident line."""
        writebacks = 0
        for evicted in self.l2.flush():
            if evicted.dirty:
                self.memory.record(is_write=True, region=evicted.meta.region)
                writebacks += 1
        return writebacks


class CacheHierarchy:
    """One L1 in front of a (possibly shared) L2."""

    def __init__(self, l1: SetAssociativeCache, shared_l2: SharedL2) -> None:
        self.l1 = l1
        self.shared_l2 = shared_l2

    @property
    def memory(self) -> MemoryCounters:
        return self.shared_l2.memory

    def access(self, address: int, is_write: bool = False,
               meta: LineMeta | None = None,
               opt_number: int | None = None) -> HierarchyOutcome:
        result = self.l1.access(address, is_write=is_write, meta=meta,
                                opt_number=opt_number)
        if result.hit:
            return HierarchyOutcome(l1_hit=True)

        l2_reads = l2_writes = mem_reads = mem_writes = 0
        if result.bypassed:
            # The request itself moves down a level.
            if is_write:
                l2_writes += 1
            else:
                l2_reads += 1
            dr, dw = self.shared_l2.access(address, is_write=is_write, meta=meta)
        else:
            # Fill the allocated L1 line from the L2.
            l2_reads += 1
            dr, dw = self.shared_l2.access(address, is_write=False, meta=meta)
        mem_reads += dr
        mem_writes += dw

        if result.evicted is not None and result.evicted.dirty:
            l2_writes += 1
            evicted_addr = result.evicted.tag * self.l1.line_bytes
            dr, dw = self.shared_l2.access(evicted_addr, is_write=True,
                                           meta=result.evicted.meta)
            mem_reads += dr
            mem_writes += dw

        return HierarchyOutcome(l1_hit=False, l2_reads=l2_reads,
                                l2_writes=l2_writes, memory_reads=mem_reads,
                                memory_writes=mem_writes)

    def flush_l1(self) -> tuple[int, int, int]:
        """Write back dirty L1 lines through the L2.

        Returns (l2_writes, memory_reads, memory_writes).
        """
        l2_writes = mem_reads = mem_writes = 0
        for evicted in self.l1.flush():
            if evicted.dirty:
                l2_writes += 1
                dr, dw = self.shared_l2.access(
                    evicted.tag * self.l1.line_bytes, is_write=True,
                    meta=evicted.meta,
                )
                mem_reads += dr
                mem_writes += dw
        return l2_writes, mem_reads, mem_writes
