"""Miss-status holding registers.

The timing model uses a finite MSHR file to bound the number of misses
in flight: a primary miss allocates an entry, secondary misses to the
same line merge into it, and the requester stalls when the file is full.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MSHREntry:
    line_address: int
    ready_cycle: int
    merged_requests: int = 1


@dataclass
class MSHRFile:
    """Fixed-capacity outstanding-miss tracker keyed by line address."""

    entries: int
    _inflight: dict[int, MSHREntry] = field(default_factory=dict)
    peak_occupancy: int = 0
    merges: int = 0
    allocations: int = 0

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError("MSHR file needs at least one entry")

    @property
    def occupancy(self) -> int:
        return len(self._inflight)

    @property
    def full(self) -> bool:
        return len(self._inflight) >= self.entries

    def lookup(self, line_address: int) -> MSHREntry | None:
        return self._inflight.get(line_address)

    def allocate(self, line_address: int, ready_cycle: int) -> MSHREntry:
        """Track a primary miss; merges into an existing entry when the
        line is already in flight."""
        entry = self._inflight.get(line_address)
        if entry is not None:
            entry.merged_requests += 1
            self.merges += 1
            return entry
        if self.full:
            raise RuntimeError("MSHR file full; caller must stall")
        entry = MSHREntry(line_address, ready_cycle)
        self._inflight[line_address] = entry
        self.allocations += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._inflight))
        return entry

    def earliest_ready(self) -> int | None:
        if not self._inflight:
            return None
        return min(entry.ready_cycle for entry in self._inflight.values())

    def retire_ready(self, now: int) -> list[MSHREntry]:
        """Free and return all entries whose fill has arrived by ``now``."""
        done = [e for e in self._inflight.values() if e.ready_cycle <= now]
        for entry in done:
            del self._inflight[entry.line_address]
        return done
