"""Machine configuration for the simulated mobile GPU (paper Table I).

The paper evaluates on a TEAPOT-modelled mobile GPU.  This module captures
the same machine description as plain dataclasses so every simulator
component (caches, tiling engine, energy model) reads its parameters from
one place.

All sizes are in bytes unless a name says otherwise.  The defaults are the
paper's Table I values:

=====================  =======================================
Tech specs             600 MHz, 1 V, 32 nm
Screen resolution      1960 x 768
Tile size              32 x 32
Tile traversal order   Z-order
Main memory            50-100 cycles, 1 GiB
Vertex cache           64 B/line, 64 KiB, 4-way, 1 cycle
Texture caches (4x)    64 B/line, 64 KiB, 4-way, 1 cycle
Tile cache             64 B/line, 64 KiB, 4-way, 1 cycle
L2 cache               64 B/line, 1 MiB, 8-way, 12 cycles
=====================  =======================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache."""

    name: str
    size_bytes: int
    line_bytes: int = 64
    associativity: int = 4
    latency_cycles: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"{self.name}: size must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"{self.name}: line size must be a power of two")
        if self.size_bytes % self.line_bytes:
            raise ValueError(f"{self.name}: size not a multiple of line size")
        if self.associativity <= 0:
            raise ValueError(f"{self.name}: associativity must be positive")
        if self.num_lines % self.associativity:
            raise ValueError(
                f"{self.name}: {self.num_lines} lines not divisible by "
                f"{self.associativity} ways"
            )

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    def fully_associative(self) -> "CacheConfig":
        """The same cache with a single set."""
        return replace(self, associativity=self.num_lines)


@dataclass(frozen=True)
class ScreenConfig:
    """Screen and tile geometry."""

    width: int = 1960
    height: int = 768
    tile_size: int = 32

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("screen dimensions must be positive")
        if self.tile_size <= 0:
            raise ValueError("tile size must be positive")

    @property
    def tiles_x(self) -> int:
        return math.ceil(self.width / self.tile_size)

    @property
    def tiles_y(self) -> int:
        return math.ceil(self.height / self.tile_size)

    @property
    def num_tiles(self) -> int:
        return self.tiles_x * self.tiles_y

    def tile_of_pixel(self, x: int, y: int) -> int:
        """Row-major tile index containing pixel (x, y)."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"pixel ({x}, {y}) outside {self.width}x{self.height}")
        return (y // self.tile_size) * self.tiles_x + (x // self.tile_size)


@dataclass(frozen=True)
class MemoryConfig:
    """Main memory parameters."""

    size_bytes: int = 1 * 1024 * MIB
    min_latency_cycles: int = 50
    max_latency_cycles: int = 100

    def __post_init__(self) -> None:
        if self.min_latency_cycles > self.max_latency_cycles:
            raise ValueError("min latency exceeds max latency")

    @property
    def avg_latency_cycles(self) -> int:
        return (self.min_latency_cycles + self.max_latency_cycles) // 2


@dataclass(frozen=True)
class ParameterBufferConfig:
    """Layout constants of the Parameter Buffer (paper Section II-B).

    - A PMD is 4 bytes; 16 PMDs fill one 64-byte block.
    - Each tile list holds at most 1024 primitives (64 blocks).
    - Each attribute is 48 bytes, block aligned (one 64-byte block).
    """

    pmd_bytes: int = 4
    block_bytes: int = 64
    max_primitives_per_tile: int = 1024
    attribute_bytes: int = 48
    pb_lists_pointer: int = 0x1000_0000
    pb_attributes_pointer: int = 0x2000_0000

    @property
    def pmds_per_block(self) -> int:
        return self.block_bytes // self.pmd_bytes

    @property
    def blocks_per_tile_list(self) -> int:
        return self.max_primitives_per_tile // self.pmds_per_block

    @property
    def attribute_stride(self) -> int:
        """Address-space stride of one attribute (block aligned)."""
        blocks = math.ceil(self.attribute_bytes / self.block_bytes)
        return blocks * self.block_bytes


@dataclass(frozen=True)
class TilingEngineConfig:
    """Queue and MSHR sizing of the Tiling Engine."""

    output_queue_entries: int = 32
    mshr_entries: int = 16
    reorder_queue_entries: int = 64


@dataclass(frozen=True)
class GPUConfig:
    """Complete machine description (paper Table I)."""

    frequency_hz: int = 600_000_000
    voltage_v: float = 1.0
    technology_nm: int = 32
    screen: ScreenConfig = field(default_factory=ScreenConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    pbuffer: ParameterBufferConfig = field(default_factory=ParameterBufferConfig)
    tiling: TilingEngineConfig = field(default_factory=TilingEngineConfig)
    vertex_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig("vertex", 64 * KIB)
    )
    texture_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig("texture", 64 * KIB)
    )
    num_texture_caches: int = 4
    tile_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig("tile", 64 * KIB)
    )
    l2_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig("l2", 1 * MIB, associativity=8,
                                            latency_cycles=12)
    )

    def with_tile_cache_size(self, size_bytes: int) -> "GPUConfig":
        """The same GPU with a resized unified Tile Cache.

        Used for the paper's 64 KiB vs 128 KiB experiments.
        """
        return replace(self, tile_cache=replace(self.tile_cache,
                                                size_bytes=size_bytes))


@dataclass(frozen=True)
class TCORConfig:
    """TCOR's split Tile Cache sizing (paper Section V-B).

    To match a 64 KiB baseline, TCOR uses a 16 KiB Primitive List Cache and
    a 48 KiB Attribute Cache; for 128 KiB it is 16 KiB + 112 KiB.
    """

    primitive_list_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig("primitive_list", 16 * KIB)
    )
    attribute_buffer_bytes: int = 48 * KIB
    attribute_bytes: int = 48
    primitive_buffer_associativity: int = 4
    use_xor_indexing: bool = True
    write_bypass: bool = True
    l2_dead_line_policy: bool = True

    @property
    def attribute_buffer_entries(self) -> int:
        """Number of 48-byte attribute slots in the Attribute Buffer."""
        return self.attribute_buffer_bytes // self.attribute_bytes

    @property
    def primitive_buffer_entries(self) -> int:
        """Primitive Buffer lines: one per ~2 attribute slots.

        An average primitive has about 3 attributes, so entries for half
        the attribute slots comfortably cover the buffer while keeping the
        pointer field within the paper's 10-bit budget at 48 KiB.
        """
        entries = self.attribute_buffer_entries // 2
        ways = self.primitive_buffer_associativity
        return max(ways, (entries // ways) * ways)

    @classmethod
    def for_total_size(cls, total_bytes: int, **overrides) -> "TCORConfig":
        """Split a total Tile Cache budget per the paper's rule.

        16 KiB goes to the Primitive List Cache and the remainder to the
        Attribute Cache (48 KiB or 112 KiB in the paper's experiments).
        """
        pl_bytes = 16 * KIB
        if total_bytes <= pl_bytes:
            raise ValueError("total size must exceed the 16 KiB list cache")
        return cls(
            primitive_list_cache=CacheConfig("primitive_list", pl_bytes),
            attribute_buffer_bytes=total_bytes - pl_bytes,
            **overrides,
        )


DEFAULT_GPU = GPUConfig()
DEFAULT_TCOR = TCORConfig()
