"""Texture sampling: UV -> mip level -> bilinear texel footprint."""

from __future__ import annotations

from dataclasses import dataclass

from repro.textures.texture import MipmappedTexture


@dataclass(frozen=True)
class SampleFootprint:
    """The block addresses one bilinear sample touches."""

    level: int
    addresses: tuple[int, ...]


class TextureSampler:
    """Bilinear, mipmapped sampler with wrap addressing.

    ``texels_per_pixel`` (the UV derivative magnitude in level-0 texels)
    selects the mip level, exactly how hardware LOD works; the quad
    structure of the rasterizer exists to provide those derivatives.
    """

    def __init__(self, texture: MipmappedTexture) -> None:
        self.texture = texture
        self.samples = 0
        self.blocks_touched = 0

    def sample(self, u: float, v: float,
               texels_per_pixel: float = 1.0) -> SampleFootprint:
        """Footprint of one bilinear sample at (u, v) in [0, 1)^2."""
        level_index = self.texture.level_for_footprint(texels_per_pixel)
        level = self.texture.level(level_index)
        # Wrap addressing.
        u %= 1.0
        v %= 1.0
        x = u * level.width - 0.5
        y = v * level.height - 0.5
        x0 = int(x) % level.width
        y0 = int(y) % level.height
        x1 = (x0 + 1) % level.width
        y1 = (y0 + 1) % level.height
        addresses = {
            level.texel_address(x0, y0),
            level.texel_address(x1, y0),
            level.texel_address(x0, y1),
            level.texel_address(x1, y1),
        }
        self.samples += 1
        self.blocks_touched += len(addresses)
        return SampleFootprint(level=level_index,
                               addresses=tuple(sorted(addresses)))

    @property
    def blocks_per_sample(self) -> float:
        return self.blocks_touched / self.samples if self.samples else 0.0
