"""Mipmapped texture storage and addressing.

A texture is a pyramid of power-of-two levels stored contiguously in
texture memory, each level tiled into 64-byte blocks (4x4 texels at
4 bytes/texel) — the block-linear arrangement GPUs use so that a
bilinear footprint touches few cache lines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

BYTES_PER_TEXEL = 4
BLOCK_BYTES = 64
# 4x4 texels of 4 bytes fill one 64-byte block.
BLOCK_SPAN = 4


@dataclass(frozen=True)
class TextureLayout:
    """Address layout of one mip level (block-linear)."""

    base: int
    width: int
    height: int

    @property
    def blocks_x(self) -> int:
        return max(1, (self.width + BLOCK_SPAN - 1) // BLOCK_SPAN)

    @property
    def blocks_y(self) -> int:
        return max(1, (self.height + BLOCK_SPAN - 1) // BLOCK_SPAN)

    @property
    def size_bytes(self) -> int:
        return self.blocks_x * self.blocks_y * BLOCK_BYTES

    def texel_address(self, x: int, y: int) -> int:
        """Block-aligned address of the block containing texel (x, y)."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"texel ({x}, {y}) outside "
                             f"{self.width}x{self.height}")
        block = (y // BLOCK_SPAN) * self.blocks_x + (x // BLOCK_SPAN)
        return self.base + block * BLOCK_BYTES


class MipmappedTexture:
    """A full mip pyramid with contiguous level storage."""

    def __init__(self, base_address: int, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("texture dimensions must be positive")
        if width & (width - 1) or height & (height - 1):
            raise ValueError("texture dimensions must be powers of two")
        self.width = width
        self.height = height
        self.levels: list[TextureLayout] = []
        offset = base_address
        w, h = width, height
        while True:
            level = TextureLayout(base=offset, width=w, height=h)
            self.levels.append(level)
            offset += level.size_bytes
            if w == 1 and h == 1:
                break
            w = max(1, w // 2)
            h = max(1, h // 2)

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def total_bytes(self) -> int:
        return sum(level.size_bytes for level in self.levels)

    def level_for_footprint(self, texels_per_pixel: float) -> int:
        """Mip level whose texel density matches the screen footprint.

        ``texels_per_pixel`` is the edge length of the pixel's footprint
        in level-0 texels; LOD = log2 of that, clamped to the pyramid.
        """
        if texels_per_pixel <= 1.0:
            return 0
        lod = int(math.floor(math.log2(texels_per_pixel)))
        return min(lod, self.num_levels - 1)

    def level(self, index: int) -> TextureLayout:
        return self.levels[index]
