"""Texture subsystem: mipmapped textures, samplers and texel traffic.

The GPU of Figure 5 keeps textures in main memory behind four texture
L1s.  The main traffic model (`repro.workloads.background`) abstracts
this to calibrated per-tile L2 pressure; this package builds the real
thing — UV interpolation over rasterized fragments, mip selection,
bilinear footprints, texel addressing — so the abstraction can be
*validated* against ground truth (see
``tests/test_textures.py::TestTrafficShape``), and so the rendering
examples can actually texture their pixels.
"""

from repro.textures.texture import MipmappedTexture, TextureLayout
from repro.textures.sampler import SampleFootprint, TextureSampler
from repro.textures.traffic import texel_trace_for_tile

__all__ = [
    "MipmappedTexture",
    "SampleFootprint",
    "TextureLayout",
    "TextureSampler",
    "texel_trace_for_tile",
]
