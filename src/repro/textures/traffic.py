"""Ground-truth texel traffic from rasterized fragments.

Rasterizes a tile's primitives, derives each fragment's UV (planar
screen-space mapping per primitive, the common case for world-space
surfaces) and its level-of-detail, samples the texture, and returns the
block-address stream the four texture L1s would see.

This is the validation path for the calibrated background model: the
*shape* of real texel traffic — tile-local streaming plus cross-tile
mip-tail reuse — is exactly what
:class:`repro.workloads.background.BackgroundTrafficModel` postulates.
"""

from __future__ import annotations

from repro.config import ScreenConfig
from repro.geometry.scene import Scene
from repro.raster.rasterizer import rasterize_in_tile
from repro.textures.sampler import TextureSampler
from repro.textures.texture import MipmappedTexture


def texel_trace_for_tile(scene: Scene, tile_id: int,
                         texture: MipmappedTexture,
                         uv_scale: float = 1.0 / 512.0,
                         texels_per_pixel: float = 1.0) -> list[int]:
    """Block addresses touched while texturing one tile.

    ``uv_scale`` maps screen pixels to UV space (a world-anchored planar
    mapping shared by all primitives keeps adjacent tiles sampling
    adjacent texture regions — the locality the L2 exploits).
    """
    sampler = TextureSampler(texture)
    addresses: list[int] = []
    for prim_id in scene.tile_lists()[tile_id]:
        prim = scene.primitives[prim_id]
        for quad in rasterize_in_tile(prim, scene.screen, tile_id):
            for fragment in quad.fragments():
                footprint = sampler.sample(
                    fragment.x * uv_scale, fragment.y * uv_scale,
                    texels_per_pixel=texels_per_pixel,
                )
                addresses.extend(footprint.addresses)
    return addresses
