"""Library self-check: fast invariant validation in one command.

``python -m repro.validate`` runs a battery of cross-module invariants
on a small workload — the checks a release pipeline or a fresh install
wants before trusting experiment output.  Each check prints PASS/FAIL;
the exit code is the number of failures.
"""

from __future__ import annotations

import sys
import time
from typing import Callable

from repro.analysis import attribute_access_trace, lower_bound_ratio, \
    primitives_capacity, policy_miss_ratio
from repro.caches.mattson import lru_miss_curve
from repro.tcor.system import simulate_baseline, simulate_tcor
from repro.timing import tile_fetcher_throughput
from repro.workloads import BENCHMARKS, build_workload


def _check_workload_calibration(workload) -> None:
    spec = workload.spec
    measured = workload.measured_reuse()
    if abs(measured - spec.avg_reuse) / spec.avg_reuse > 0.25:
        raise AssertionError(
            f"reuse {measured:.2f} vs published {spec.avg_reuse}")


def _check_opt_bounds(workload) -> None:
    trace = attribute_access_trace(workload)
    mean_attrs = workload.scenes[0].average_attributes()
    capacity = primitives_capacity(8 * 1024, mean_attrs)
    opt = policy_miss_ratio(trace, capacity, "belady")
    lru = policy_miss_ratio(trace, capacity, "lru")
    bound = lower_bound_ratio(len(set(trace)), capacity, len(trace))
    if not (bound - 1e-9 <= opt <= lru + 1e-9):
        raise AssertionError(f"bound {bound:.3f} <= opt {opt:.3f} "
                             f"<= lru {lru:.3f} violated")


def _check_mattson(workload) -> None:
    trace = attribute_access_trace(workload)
    curve = lru_miss_curve(trace, [4, 16, 64])
    direct = {c: round(policy_miss_ratio(trace, c, "lru") * len(trace))
              for c in (4, 16, 64)}
    for capacity in (4, 16, 64):
        if curve[capacity] != direct[capacity]:
            raise AssertionError(
                f"Mattson {curve[capacity]} != direct {direct[capacity]} "
                f"at capacity {capacity}")


def _check_system(workload) -> None:
    base = simulate_baseline(workload)
    tcor = simulate_tcor(workload)
    if tcor.pb_l2_accesses >= base.pb_l2_accesses:
        raise AssertionError("TCOR did not reduce PB L2 traffic")
    if tcor.pb_mm_accesses > base.pb_mm_accesses * 0.5:
        raise AssertionError("TCOR did not slash PB DRAM traffic")


def _check_throughput(workload) -> None:
    base = tile_fetcher_throughput(workload, "baseline")
    tcor = tile_fetcher_throughput(workload, "tcor")
    if tcor.primitives_per_cycle <= base.primitives_per_cycle:
        raise AssertionError("TCOR did not speed up the Tiling Engine")


def _check_rendering(workload) -> None:
    import numpy as np

    from repro.raster.pipeline import RasterPipeline
    pipeline = RasterPipeline(workload.traces[0].pb)
    image = pipeline.render()
    if not np.any(image[:, :, 3] > 0):
        raise AssertionError("renderer produced an empty frame")


CHECKS: list[tuple[str, Callable]] = [
    ("workload calibration (Table II)", _check_workload_calibration),
    ("OPT between bound and LRU", _check_opt_bounds),
    ("Mattson == direct LRU", _check_mattson),
    ("system traffic ordering", _check_system),
    ("Tiling Engine speedup", _check_throughput),
    ("end-to-end rendering", _check_rendering),
]


def main(argv: list[str] | None = None) -> int:
    alias = argv[0] if argv else "GTr"
    scale = float(argv[1]) if argv and len(argv) > 1 else 0.1
    print(f"Self-check on {alias} at scale {scale}")
    workload = build_workload(BENCHMARKS[alias], scale=scale)
    failures = 0
    for name, check in CHECKS:
        started = time.time()
        try:
            check(workload)
        except AssertionError as error:
            failures += 1
            print(f"  FAIL {name}: {error}")
        else:
            print(f"  PASS {name} ({time.time() - started:.1f}s)")
    print("all checks passed" if not failures
          else f"{failures} check(s) FAILED")
    return failures


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
