"""Figure 10: the worked example's cache-state table.

Regenerates the paper's illustrative comparison: 3 primitives, 9 tiles,
a 2-primitive cache, 12 access steps (3 Polygon List Builder writes + 9
Tile Fetcher reads), printing the cache contents, the replacement
state, dirty bits and the L2 reads/writes at every step for both LRU
and TCOR's OPT.

The geometry matches the narrative: blue overlaps tiles 0/1/4, yellow
tile 2, pink tiles 3 and 5-8, so each tile is overlapped by exactly one
primitive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.policies import make_policy
from repro.caches.set_assoc import SetAssociativeCache
from repro.config import CacheConfig, TCORConfig
from repro.experiments.common import DEFAULT_SCALE, ExperimentResult
from repro.pbuffer.attributes import PBAttributesMap
from repro.pbuffer.pmd import NO_NEXT_TILE
from repro.tcor.attribute_cache import AttributeCache

NAMES = {0: "blue", 1: "yellow", 2: "pink"}
WRITES = [(0, 0, 4), (1, 2, 2), (2, 3, 8)]
READS = [
    (0, 0, 1), (1, 0, 4), (2, 1, NO_NEXT_TILE), (3, 2, 5),
    (4, 0, NO_NEXT_TILE), (5, 2, 6), (6, 2, 7), (7, 2, 8),
    (8, 2, NO_NEXT_TILE),
]


@dataclass
class StepRecord:
    step: str
    cache_state: str
    l2_reads: int
    l2_writes: int


def _opt_steps() -> list[StepRecord]:
    config = TCORConfig(
        primitive_list_cache=CacheConfig("pl", 1024),
        attribute_buffer_bytes=2 * 48,
        primitive_buffer_associativity=2,
        use_xor_indexing=False,
    )
    cache = AttributeCache(config, PBAttributesMap([1, 1, 1]),
                           inflight_window=1)
    records: list[StepRecord] = []

    def state() -> str:
        lines = []
        for prim_id in (0, 1, 2):
            line = cache.probe(prim_id)
            if line is not None:
                opt = ("." if line.opt_number == NO_NEXT_TILE
                       else line.opt_number)
                lines.append(f"{NAMES[prim_id]}(opt={opt}"
                             f"{',D' if line.dirty else ''})")
        return " ".join(lines) or "-"

    for prim, first, last in WRITES:
        outcome = cache.write(prim, 1, first, last)
        reads = sum(1 for r in outcome.l2_requests if not r.is_write)
        writes = sum(1 for r in outcome.l2_requests if r.is_write)
        label = f"PLB write {NAMES[prim]}" + \
            (" [bypass]" if outcome.bypassed else "")
        records.append(StepRecord(label, state(), reads, writes))
    for tile, prim, nxt in READS:
        outcome = cache.read(prim, 1, nxt,
                             last_use_rank={0: 4, 1: 2, 2: 8}[prim])
        cache.drain_inflight()
        reads = sum(1 for r in outcome.l2_requests if not r.is_write)
        writes = sum(1 for r in outcome.l2_requests if r.is_write)
        label = f"TF tile {tile} ({NAMES[prim]})" + \
            ("" if outcome.hit else " [miss]")
        records.append(StepRecord(label, state(), reads, writes))
    return records


def _lru_steps() -> list[StepRecord]:
    cache = SetAssociativeCache(1, 2, 1, make_policy("lru"))
    records: list[StepRecord] = []

    def state() -> str:
        lines = []
        for prim_id in (0, 1, 2):
            line = cache.probe(prim_id)
            if line is not None:
                lines.append(f"{NAMES[prim_id]}"
                             f"({'D' if line.dirty else 'c'})")
        return " ".join(lines) or "-"

    for prim, _first, _last in WRITES:
        result = cache.access(prim, is_write=True)
        records.append(StepRecord(
            f"PLB write {NAMES[prim]}", state(), 0,
            1 if result.writeback else 0))
    for tile, prim, _next in READS:
        result = cache.access(prim)
        reads = 0 if result.hit else 1
        writes = 1 if result.writeback else 0
        label = f"TF tile {tile} ({NAMES[prim]})" + \
            ("" if result.hit else " [miss]")
        records.append(StepRecord(label, state(), reads, writes))
    return records


def run(scale: float = DEFAULT_SCALE, cache=None) -> ExperimentResult:
    lru = _lru_steps()
    opt = _opt_steps()
    rows = []
    for lru_step, opt_step in zip(lru, opt):
        rows.append([
            lru_step.step.split(" [")[0],
            lru_step.cache_state,
            f"{lru_step.l2_reads}r/{lru_step.l2_writes}w",
            opt_step.cache_state,
            f"{opt_step.l2_reads}r/{opt_step.l2_writes}w",
        ])
    lru_total = (sum(s.l2_reads for s in lru), sum(s.l2_writes for s in lru))
    opt_total = (sum(s.l2_reads for s in opt), sum(s.l2_writes for s in opt))
    rows.append(["TOTAL", "",
                 f"{lru_total[0]}r/{lru_total[1]}w", "",
                 f"{opt_total[0]}r/{opt_total[1]}w"])
    return ExperimentResult(
        exp_id="fig10",
        title="Worked example cache states: LRU vs OPT (paper Figure 10)",
        headers=["step", "lru_state", "lru_l2", "opt_state", "opt_l2"],
        rows=rows,
        notes="paper: OPT bypasses the 3rd write, keeps yellow for tile "
              "2, evicts it at tile 3, and keeps blue for tile 4",
    )
