"""Figure 12: LRU and OPT miss ratios across set associativities.

Paper shape: for every size, OPT's curves collapse to the lower bound at
far lower associativity than LRU — 2-way OPT roughly matches fully
associative LRU.
"""

from __future__ import annotations

from repro.analysis.miss_curves import suite_miss_curve
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    SimulationCache,
)

SIZES_KIB = [16, 32, 48, 64, 96, 128, 160]
ASSOCIATIVITIES: list[int | None] = [1, 2, 4, 8, None]  # None = fully assoc


def _label(assoc: int | None) -> str:
    return "full" if assoc is None else f"{assoc}way"


def run(scale: float = DEFAULT_SCALE,
        cache: SimulationCache | None = None,
        sizes_kib: list[int] | None = None,
        associativities: list[int | None] | None = None) -> ExperimentResult:
    cache = cache or SimulationCache(scale=scale)
    sizes = sizes_kib or SIZES_KIB
    assocs = ASSOCIATIVITIES if associativities is None else associativities
    workloads = cache.workloads()

    curves: dict[str, list[float]] = {}
    bound: list[float] = []
    for policy in ("lru", "belady"):
        for assoc in assocs:
            include_bound = policy == "lru" and assoc == assocs[0]
            curve = suite_miss_curve(workloads, sizes, policy,
                                     associativity=assoc,
                                     include_lower_bound=include_bound)
            curves[f"{policy}_{_label(assoc)}"] = curve["miss_ratio"]
            if include_bound:
                bound = curve["lower_bound"]

    headers = ["size_kib", "lower_bound"] + list(curves)
    rows = [
        [size, bound[index]] + [curves[name][index] for name in curves]
        for index, size in enumerate(sizes)
    ]
    return ExperimentResult(
        exp_id="fig12",
        title="Associativity sweep: LRU vs OPT vs lower bound",
        headers=headers,
        rows=rows,
        notes="paper: OPT at 2-way is about as good as fully assoc. LRU",
    )
