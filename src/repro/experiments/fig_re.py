"""Figure RE: Rendering Elimination on animated sequences.

Sweeps frame count x object churn x RE on/off x replacement policy
(baseline LRU tile hierarchy vs TCOR's OPT machinery) over coherent
camera-path sequences from :mod:`repro.anim`, reporting the fraction
of tiles discarded, the main-memory and L2 traffic it saves, the
total-GPU energy delta, and the RE <-> OPT interaction (how the
attribute-buffer hit ratio moves when skipped tiles consume their
OPT-predicted reuse slots without fetching).

Two shape checks anchor the sweep: a coherent path with a dwelling
camera must discard a nonzero fraction of tiles, and 100% churn
(every object re-randomized every frame) must discard none — the
signatures are content hashes, so "everything changed" is the
experiment's built-in placebo.

The sweep publishes to the observability registry under the
``anim.<alias>.*`` (sequence shape) and ``re.<alias>.c<churn>.*``
(per-cell outcome) namespaces, attaches the tile- and energy-
conservation rules, and asserts the registry's invariants before
returning — a conservation violation fails the experiment, it does
not produce a quietly wrong table.
"""

from __future__ import annotations

from repro.anim import (
    AnimationSpec,
    build_animated_workload,
    register_energy_gauges,
    register_re_gauges,
    register_sequence_gauges,
)
from repro.api import SimulationConfig, simulate
from repro.energy import EnergyModel, gpu_energy
from repro.experiments.common import DEFAULT_SCALE, ExperimentResult
from repro.obs.registry import MetricsRegistry
from repro.workloads.suite import BENCHMARKS

#: The sweep grid.  Two frame counts show the skip fraction growing
#: with sequence length (frame 0 can never skip, so longer sequences
#: amortize it); three churn points bracket the coherence spectrum.
FRAME_COUNTS = (4, 8)
CHURN_PCTS = (0, 50, 100)
POLICIES = ("baseline", "tcor")

#: Animated sequences build one workload per (frames, churn) cell, so
#: the default sweep covers a representative pair of benchmarks rather
#: than the whole suite.
DEFAULT_ALIASES = ("SoD", "GTr")


def _saved_pct(off: float, on: float) -> float:
    return 100.0 * (1.0 - on / off) if off else 0.0


def run(scale: float = DEFAULT_SCALE, cache=None,
        aliases: tuple[str, ...] = DEFAULT_ALIASES,
        registry: MetricsRegistry | None = None) -> ExperimentResult:
    """One table row per (benchmark, frames, churn, policy) cell.

    ``cache`` (the driver's simulation provider) contributes only its
    scale: animated multi-frame runs are keyed differently from the
    provider's single-frame matrix, and the compiled-trace replay
    engine already amortizes the four configurations of each cell over
    one workload compile.
    """
    if cache is not None:
        scale = cache.scale
    registry = registry if registry is not None else MetricsRegistry()
    model = EnergyModel.default()
    rows: list[list] = []
    for alias in aliases:
        for frames in FRAME_COUNTS:
            for churn_pct in CHURN_PCTS:
                anim = AnimationSpec(frames=frames, path="orbit",
                                     dwell=2, travel=2,
                                     churn=churn_pct / 100.0, seed=11)
                workload = build_animated_workload(
                    BENCHMARKS[alias], anim, scale=scale)
                cell = f"f{frames}_c{churn_pct:03d}"
                register_sequence_gauges(registry, alias, {
                    f"{cell}.frames": frames,
                    f"{cell}.churn_pct": churn_pct,
                    f"{cell}.primitives": workload.num_primitives,
                })
                for policy in POLICIES:
                    off = simulate(workload, SimulationConfig(
                        kind=policy, rendering_elimination=False))
                    on = simulate(workload, SimulationConfig(
                        kind=policy, rendering_elimination=True))
                    failures = (tuple(off.invariant_failures)
                                + tuple(on.invariant_failures))
                    if failures:
                        raise AssertionError(
                            f"fig_re {alias} {cell} {policy}: "
                            f"{'; '.join(failures)}")
                    skip_pct = 100.0 * on.result.tiles_skipped_fraction
                    mm_saved = _saved_pct(off.result.mm_accesses,
                                          on.result.mm_accesses)
                    l2_saved = _saved_pct(off.result.l2_accesses,
                                          on.result.l2_accesses)
                    energy_off = gpu_energy(off.result, workload, model)
                    energy_on = gpu_energy(on.result, workload, model)
                    energy_saved = _saved_pct(energy_off.total_gpu_nj,
                                              energy_on.total_gpu_nj)
                    # The OPT interaction: skipped tiles advance the
                    # tile-progress scoreboard without fetching, so
                    # OPT's next-use predictions go optimistic and the
                    # attribute hit ratio shifts (baseline has no OPT
                    # state, so its delta is structurally zero-ish).
                    attr_delta = (on.result.attr_read_hit_ratio
                                  - off.result.attr_read_hit_ratio)
                    register_re_gauges(registry, alias, churn_pct, {
                        f"f{frames}.{policy}.skip_pct": skip_pct,
                        f"f{frames}.{policy}.mm_saved_pct": mm_saved,
                        f"f{frames}.{policy}.l2_saved_pct": l2_saved,
                        f"f{frames}.{policy}.energy_saved_pct":
                            energy_saved,
                        f"f{frames}.{policy}.attr_hit_delta": attr_delta,
                        f"f{frames}.{policy}.signature_compares":
                            on.result.signature_compares,
                    })
                    # One energy report per (alias, churn) cell —
                    # distinct reports under one prefix would sum.
                    if policy == "tcor" and frames == FRAME_COUNTS[-1]:
                        register_energy_gauges(registry, alias,
                                               churn_pct, energy_on)
                    if churn_pct == 0 and frames > 1 \
                            and on.result.tiles_skipped == 0:
                        raise AssertionError(
                            f"fig_re {alias} {cell} {policy}: coherent "
                            f"path produced zero skipped tiles")
                    if churn_pct == 100 and on.result.tiles_skipped:
                        raise AssertionError(
                            f"fig_re {alias} {cell} {policy}: 100% "
                            f"churn still skipped "
                            f"{on.result.tiles_skipped} tiles")
                    rows.append([
                        alias, frames, churn_pct, policy,
                        round(skip_pct, 1), round(mm_saved, 1),
                        round(l2_saved, 1), round(energy_saved, 1),
                        round(attr_delta, 4),
                    ])
    registry.assert_invariants()
    return ExperimentResult(
        exp_id="fig_re",
        title="Rendering Elimination: tiles discarded and traffic/"
              "energy saved",
        headers=["bench", "frames", "churn_%", "policy", "skip_%",
                 "mm_saved_%", "l2_saved_%", "energy_saved_%",
                 "attr_hit_delta"],
        rows=rows,
        notes="coherent paths must skip tiles; 100% churn must skip "
              "none (checked); attr_hit_delta is the RE<->OPT "
              "interaction",
    )
