"""Figure 1: LRU vs OPT miss ratio, fully associative L1, growing size.

Paper shape: OPT's miss ratio drops much faster than LRU's as the cache
grows (0.66 -> 0.42 band over 8-160 KB, OPT strictly below LRU).
"""

from __future__ import annotations

from repro.analysis.miss_curves import suite_miss_curve
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    SimulationCache,
)

SIZES_KIB = [8, 16, 24, 32, 48, 64, 96, 128, 160]


def run(scale: float = DEFAULT_SCALE,
        cache: SimulationCache | None = None,
        sizes_kib: list[int] | None = None) -> ExperimentResult:
    cache = cache or SimulationCache(scale=scale)
    sizes = sizes_kib or SIZES_KIB
    workloads = cache.workloads()
    lru = suite_miss_curve(workloads, sizes, "lru")
    opt = suite_miss_curve(workloads, sizes, "belady")
    rows = [
        [size, lru_ratio, opt_ratio]
        for size, lru_ratio, opt_ratio
        in zip(sizes, lru["miss_ratio"], opt["miss_ratio"])
    ]
    return ExperimentResult(
        exp_id="fig01",
        title="LRU vs OPT miss ratio, fully associative L1 (suite average)",
        headers=["size_kib", "lru_miss_ratio", "opt_miss_ratio"],
        rows=rows,
        notes="paper: OPT strictly below LRU, both monotonically falling",
    )
