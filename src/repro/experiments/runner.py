"""Deprecated import location for the experiment CLI.

The implementation lives in :mod:`repro.experiments.driver`; the
supported programmatic surface is :mod:`repro.api`
(``run_experiment``/``simulate``).  This module remains only as the
console-script entry point (``tcor-experiments``) and as a shim that
keeps old ``from repro.experiments.runner import run_experiments``
imports working — with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import sys
import warnings

from repro.experiments.driver import main

__all__ = ["main"]

# Names that moved to repro.experiments.driver.  Resolved lazily via
# PEP 562 so merely importing this module (the console script does)
# stays warning-free; reaching for a moved name warns once per site.
_MOVED = ("run_experiments", "resolve_names", "export_table_metrics")


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"importing {name!r} from repro.experiments.runner is "
            "deprecated; use repro.api (run_experiment) or "
            "repro.experiments.driver",
            DeprecationWarning, stacklevel=2)
        from repro.experiments import driver
        return getattr(driver, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


if __name__ == "__main__":
    sys.exit(main())
