"""Experiment CLI: regenerate every table and figure of the paper.

Usage::

    tcor-experiments --all                    # everything, paper scale
    tcor-experiments --experiment fig14 fig16 # a subset
    tcor-experiments --all --scale 0.25       # fast reduced-scale pass
    tcor-experiments --all --output results.txt
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import common
from repro.experiments import (
    fig01_intro_gap,
    fig10_example,
    headline,
    fig11_lower_bound,
    fig12_associativity,
    fig13_policies,
    fig14_15_l2_accesses,
    fig16_17_mm_pb,
    fig18_19_mm_total,
    fig20_21_energy,
    fig22_gpu_energy,
    fig23_24_throughput,
    lookahead_gap,
    sensitivity,
    tables,
)
from repro.experiments.common import ExperimentResult, SimulationCache

_MODULES = {
    "tables": tables,
    "headline": headline,
    "fig01": fig01_intro_gap,
    "fig10": fig10_example,
    "fig11": fig11_lower_bound,
    "fig12": fig12_associativity,
    "fig13": fig13_policies,
    "fig14": fig14_15_l2_accesses,
    "fig16": fig16_17_mm_pb,
    "fig18": fig18_19_mm_total,
    "fig20": fig20_21_energy,
    "fig22": fig22_gpu_energy,
    "fig23": fig23_24_throughput,
    "sensitivity": sensitivity,
    "lookahead": lookahead_gap,
}

# Paired figures resolve to the same module.
_ALIASES = {"fig15": "fig14", "fig17": "fig16", "fig19": "fig18",
            "fig21": "fig20", "fig24": "fig23", "table1": "tables",
            "table2": "tables"}


def run_experiments(names: list[str], scale: float,
                    aliases: tuple[str, ...] | None = None) -> list[ExperimentResult]:
    cache = SimulationCache(scale=scale, aliases=aliases)
    results: list[ExperimentResult] = []
    seen: set[str] = set()
    for name in names:
        key = _ALIASES.get(name, name)
        if key in seen:
            continue
        seen.add(key)
        module = _MODULES.get(key)
        if module is None:
            raise ValueError(
                f"unknown experiment {name!r}; choose from "
                f"{sorted(set(_MODULES) | set(_ALIASES))}"
            )
        outcome = module.run(scale=scale, cache=cache)
        if isinstance(outcome, ExperimentResult):
            results.append(outcome)
        else:
            results.extend(outcome)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the TCOR paper's tables and figures")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--experiment", nargs="+", default=[],
                        help="experiment ids (fig01, fig11, ..., tables)")
    parser.add_argument("--scale", type=float, default=common.DEFAULT_SCALE,
                        help="geometry scale (1.0 = paper scale)")
    parser.add_argument("--benchmarks", nargs="+", default=None,
                        help="benchmark aliases to include (default: all 10)")
    parser.add_argument("--output", default=None,
                        help="also write the report to this file")
    parser.add_argument("--plot", action="store_true",
                        help="render curve figures as ASCII charts too")
    parser.add_argument("--markdown", default=None,
                        help="also write a markdown report to this file")
    args = parser.parse_args(argv)

    names = list(_MODULES) if args.all else args.experiment
    if not names:
        parser.error("pass --all or --experiment ...")
    aliases = tuple(args.benchmarks) if args.benchmarks else None

    started = time.time()
    results = run_experiments(names, scale=args.scale, aliases=aliases)
    blocks = []
    for result in results:
        block = common.format_table(result)
        if args.plot and result.headers[0] == "size_kib":
            from repro.analysis.ascii_plot import chart_from_result
            try:
                block += "\n" + chart_from_result(result, "size_kib",
                                                   width=56, height=14,
                                                   x_label="KiB")
            except ValueError:
                pass
        blocks.append(block)
    report = "\n\n".join(blocks)
    footer = (f"\n\n[{len(results)} experiment tables in "
              f"{time.time() - started:.1f}s at scale {args.scale}]")
    print(report + footer)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + footer + "\n")
    if args.markdown:
        from repro.experiments.reporting import report_to_markdown
        with open(args.markdown, "w") as handle:
            handle.write(report_to_markdown(results) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
