"""Figures 23/24: primitives output per cycle by the Tile Fetcher.

Paper shape: TCOR speeds the Tiling Engine up ~5x on average (4.7x at
64 KiB, 5.0x at 128 KiB); SoD comes closest to the 1-primitive/cycle
ceiling.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_SCALE,
    TILE_CACHE_SIZES,
    ExperimentResult,
    SimulationCache,
)
from repro.timing import tile_fetcher_throughput

PAPER_SPEEDUP = {
    "64KiB": {"CCS": 3.8, "SoD": 4.3, "TRu": 5.0, "SWa": 3.6, "CRa": 5.2,
              "RoK": 3.5, "DDS": 3.5, "Snp": 9.6, "Mze": 5.7, "GTr": 3.0,
              "average": 4.7},
    "128KiB": {"CCS": 3.8, "SoD": 3.7, "TRu": 4.7, "SWa": 3.6, "CRa": 5.1,
               "RoK": 3.5, "DDS": 3.9, "Snp": 8.4, "Mze": 6.8, "GTr": 2.0,
               "average": 5.0},
}


def run_one(size_label: str, scale: float = DEFAULT_SCALE,
            cache: SimulationCache | None = None) -> ExperimentResult:
    cache = cache or SimulationCache(scale=scale)
    size = TILE_CACHE_SIZES[size_label]
    rows = []
    speedups = []
    for alias in cache.aliases:
        workload = cache.workload(alias)
        base = tile_fetcher_throughput(workload, "baseline",
                                       total_tile_cache_bytes=size)
        tcor = tile_fetcher_throughput(workload, "tcor",
                                       total_tile_cache_bytes=size)
        speedup = (tcor.primitives_per_cycle
                   / max(1e-9, base.primitives_per_cycle))
        speedups.append(speedup)
        rows.append([
            alias, round(base.primitives_per_cycle, 3),
            round(tcor.primitives_per_cycle, 3), round(speedup, 1),
            PAPER_SPEEDUP[size_label][alias],
        ])
    rows.append(["average", "", "",
                 round(sum(speedups) / len(speedups), 1),
                 PAPER_SPEEDUP[size_label]["average"]])
    fig = "fig23" if size_label == "64KiB" else "fig24"
    return ExperimentResult(
        exp_id=fig,
        title=f"Tile Fetcher primitives per cycle ({size_label} Tile Cache)",
        headers=["bench", "baseline_ppc", "tcor_ppc", "speedup_x",
                 "paper_speedup_x"],
        rows=rows,
        notes="unlimited output queue: the Raster Pipeline never stalls "
              "the Tiling Engine",
    )


def run(scale: float = DEFAULT_SCALE,
        cache: SimulationCache | None = None) -> list[ExperimentResult]:
    cache = cache or SimulationCache(scale=scale)
    return [run_one("64KiB", scale, cache), run_one("128KiB", scale, cache)]
