"""Bounded-lookahead OPT vs TCOR's free unbounded lookahead.

The paper's related-work section (VI) positions TCOR against the
Shepherd Cache [31], which emulates OPT with a bounded lookahead window
and bridges only 30-52% of the LRU-OPT gap.  This experiment sweeps the
window on the Parameter Buffer stream and reports the gap closure —
quantifying the value of what TCOR gets for free: the Polygon List
Builder has already seen the *entire* future when the Tile Fetcher
starts reading.
"""

from __future__ import annotations

from repro.analysis.lower_bound import primitives_capacity
from repro.analysis.miss_curves import attribute_access_trace
from repro.caches.fully_assoc import fully_associative_cache
from repro.caches.policies import BeladyOPT, LookaheadOPT, make_policy
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    SimulationCache,
)

WINDOWS = (8, 32, 128, 512, 2048)
CACHE_KIB = 48  # the paper's Attribute Cache budget


def _misses(trace: list[int], capacity: int, policy) -> int:
    cache = fully_associative_cache(capacity * 64, 64, policy)
    for line in trace:
        cache.access(line * 64)
    return cache.stats.misses


def run(scale: float = DEFAULT_SCALE,
        cache: SimulationCache | None = None,
        windows: tuple[int, ...] = WINDOWS) -> ExperimentResult:
    cache = cache or SimulationCache(scale=scale)
    rows = []
    closure_sums = {window: 0.0 for window in windows}
    counted = 0
    for alias in cache.aliases:
        workload = cache.workload(alias)
        trace = attribute_access_trace(workload)
        mean_attrs = workload.scenes[0].average_attributes()
        capacity = primitives_capacity(
            int(CACHE_KIB * 1024 * scale) or 1024, mean_attrs)
        lru = _misses(trace, capacity, make_policy("lru"))
        opt = _misses(trace, capacity, BeladyOPT.from_trace(trace))
        gap = lru - opt
        row = [alias, lru, opt]
        for window in windows:
            bounded = _misses(trace, capacity,
                              LookaheadOPT.from_trace(trace, window))
            closure = 100 * (lru - bounded) / gap if gap > 0 else 100.0
            row.append(round(closure, 1))
            closure_sums[window] += closure
        counted += 1
        rows.append(row)
    rows.append(["average", "", ""] + [
        round(closure_sums[window] / counted, 1) for window in windows
    ])
    return ExperimentResult(
        exp_id="lookahead",
        title="LRU-OPT gap closed by bounded lookahead (Shepherd-style)",
        headers=["bench", "lru_misses", "opt_misses"]
                + [f"closure_w{window}_%" for window in windows],
        rows=rows,
        notes="Shepherd Cache bridges 30-52% of the gap; TCOR's OPT "
              "Numbers are an unbounded window at zero lookahead cost",
    )
