"""Shared experiment plumbing.

Workloads and full-system simulations are expensive, and several figures
reuse the same (benchmark, tile-cache size, organization) run — a
:class:`SimulationCache` memoizes them across experiment modules within
one runner invocation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass, field

from repro.config import TCORConfig
from repro.tcor.system import SystemResult, simulate_baseline, simulate_tcor
from repro.workloads.suite import (
    BENCHMARK_ORDER,
    BENCHMARKS,
    Workload,
    build_workload,
)

KIB = 1024
DEFAULT_SCALE = 1.0
# The paper evaluates two Tile Cache budgets.
TILE_CACHE_SIZES = {"64KiB": 64 * KIB, "128KiB": 128 * KIB}


@dataclass
class ExperimentResult:
    """One regenerated table or figure, as printable rows."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: str = ""

    def column(self, name: str) -> list:
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def row_for(self, key) -> list:
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(key)


def format_table(result: ExperimentResult) -> str:
    """Fixed-width text rendering of an experiment result."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    table = [result.headers] + [[fmt(v) for v in row] for row in result.rows]
    widths = [max(len(row[col]) for row in table)
              for col in range(len(result.headers))]
    lines = [f"== {result.exp_id}: {result.title} =="]
    for index, row in enumerate(table):
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)


class SimulationProvider(ABC):
    """The interface experiment modules simulate through.

    Both the serial :class:`SimulationCache` and
    :class:`repro.parallel.ParallelSimulationCache` implement it, so the
    experiment driver type-checks against one contract instead of
    duck-typing two classes.  ``prefetch`` and ``export_metrics`` have
    conservative defaults; providers with a fan-out engine or a memo
    table override them.
    """

    scale: float
    aliases: tuple[str, ...]

    @abstractmethod
    def workload(self, alias: str) -> Workload:
        """The (memoized) workload for one benchmark alias."""

    @abstractmethod
    def baseline(self, alias: str, tile_cache_bytes: int) -> SystemResult:
        """Baseline simulation at one Tile Cache budget."""

    @abstractmethod
    def tcor(self, alias: str, tile_cache_bytes: int,
             l2_enhancements: bool = True,
             tcor_config: TCORConfig | None = None) -> SystemResult:
        """TCOR simulation at one total Tile Cache budget."""

    def workloads(self) -> list[Workload]:
        return [self.workload(alias) for alias in self.aliases]

    def prefetch(self, names=None) -> int:
        """Eagerly simulate what the named experiments will need.

        Returns the number of simulations run; the default provider has
        no fan-out engine and simulates lazily instead.
        """
        return 0

    def export_metrics(self, registry) -> int:
        """Export finished simulations as ``sim.*`` registry gauges.

        Returns the number of metrics exported (0 when the provider
        keeps no results to export).
        """
        return 0


def _size_component(tag: str, size_bytes: int) -> str:
    """``tc64`` for whole KiB budgets, ``tc80000b`` otherwise."""
    if size_bytes % KIB == 0:
        return f"{tag}{size_bytes // KIB}"
    return f"{tag}{size_bytes}b"


class SimulationCache(SimulationProvider):
    """Memoizes workloads and system simulations across experiments.

    ``disk``, when given, is a persistent second level (duck-typed as
    :class:`repro.parallel.store.DiskCache`): in-memory misses probe it
    before simulating, and fresh results are written through, so
    repeated runner/benchmark invocations skip re-simulation entirely.

    ``use_replay`` (default on) runs cache-model simulations through
    the compiled-trace replay kernels when eligible — bit-identical
    results, compiled once per workload and amortized over every
    configuration; the live simulator remains the fallback (and the
    only path when a tracer is active or ``REPRO_NO_REPLAY`` is set).
    ``trace_cache`` persists compiled traces through ``disk`` (when the
    store supports them), so warm invocations skip geometry + binning
    entirely.
    """

    def __init__(self, scale: float = DEFAULT_SCALE,
                 aliases: tuple[str, ...] | None = None,
                 disk=None, use_replay: bool = True,
                 trace_cache: bool = True) -> None:
        self.scale = scale
        self.aliases = tuple(aliases) if aliases else BENCHMARK_ORDER
        self.disk = disk
        self.use_replay = use_replay
        self.trace_cache = trace_cache
        self._workloads: dict[str, Workload] = {}
        self._systems: dict[tuple, SystemResult] = {}
        self._traces: dict[str, object] = {}

    def workload(self, alias: str) -> Workload:
        if alias not in self._workloads:
            self._workloads[alias] = build_workload(BENCHMARKS[alias],
                                                    scale=self.scale)
            trace = self._traces.get(alias)
            if trace is not None:
                self._workloads[alias].compiled_trace = trace
        return self._workloads[alias]

    # -- replay fast path ----------------------------------------------
    def _compiled_trace(self, alias: str):
        """Get-compile-or-load the workload's access trace (memoized).

        A persisted trace (disk stores are duck-typed; older stores
        without ``get_trace`` are simply skipped) avoids building the
        workload at all — geometry and binning are the expensive part.
        """
        from repro.replay import compiled_trace_for

        trace = self._traces.get(alias)
        if trace is not None:
            return trace
        workload = self._workloads.get(alias)
        if workload is not None and workload.compiled_trace is not None:
            trace = workload.compiled_trace
        if trace is None and self.trace_cache and self.disk is not None:
            get_trace = getattr(self.disk, "get_trace", None)
            if get_trace is not None:
                trace = get_trace(BENCHMARKS[alias], self.scale)
        if trace is None:
            trace = compiled_trace_for(self.workload(alias))
            if self.trace_cache and self.disk is not None:
                put_trace = getattr(self.disk, "put_trace", None)
                if put_trace is not None:
                    put_trace(BENCHMARKS[alias], self.scale, trace)
        self._traces[alias] = trace
        if alias in self._workloads:
            self._workloads[alias].compiled_trace = trace
        return trace

    def _replay(self, alias: str, kind: str, **kwargs) -> SystemResult | None:
        """One replayed simulation, or ``None`` -> caller runs live."""
        if not self.use_replay:
            return None
        from repro import replay

        if replay.replay_allowed() is not None:
            return None
        try:
            trace = self._compiled_trace(alias)
            if kind == "baseline":
                return replay.replay_baseline(trace, **kwargs).result
            return replay.replay_tcor(trace, **kwargs).result
        except replay.ReplayUnsupportedError:
            return None

    def workloads(self) -> list[Workload]:
        return [self.workload(alias) for alias in self.aliases]

    @staticmethod
    def baseline_key(alias: str, tile_cache_bytes: int) -> tuple:
        return ("baseline", alias, tile_cache_bytes)

    @staticmethod
    def tcor_key(alias: str, tile_cache_bytes: int, tcor: TCORConfig,
                  l2_enhancements: bool) -> tuple:
        # The derived partition is part of the key: two TCOR configs
        # with the same total budget but a different split (future
        # per-structure sweeps) must never alias to each other.
        return ("tcor", alias, tile_cache_bytes,
                tcor.primitive_list_cache.size_bytes,
                tcor.attribute_buffer_bytes, l2_enhancements)

    def baseline(self, alias: str, tile_cache_bytes: int) -> SystemResult:
        key = self.baseline_key(alias, tile_cache_bytes)
        result = self._systems.get(key)
        if result is not None:
            return result
        if self.disk is not None:
            result = self.disk.get_baseline(BENCHMARKS[alias], self.scale,
                                            tile_cache_bytes)
            if result is not None:
                self._systems[key] = result
                return result
        result = self._replay(alias, "baseline",
                              tile_cache_bytes=tile_cache_bytes)
        if result is None:
            result = simulate_baseline(self.workload(alias),
                                       tile_cache_bytes=tile_cache_bytes)
        self._systems[key] = result
        if self.disk is not None:
            self.disk.put_baseline(BENCHMARKS[alias], self.scale,
                                   tile_cache_bytes, result)
        return result

    def tcor(self, alias: str, tile_cache_bytes: int,
             l2_enhancements: bool = True,
             tcor_config: TCORConfig | None = None) -> SystemResult:
        tcor = (tcor_config if tcor_config is not None
                else TCORConfig.for_total_size(tile_cache_bytes))
        key = self.tcor_key(alias, tile_cache_bytes, tcor, l2_enhancements)
        result = self._systems.get(key)
        if result is not None:
            return result
        if self.disk is not None:
            result = self.disk.get_tcor(BENCHMARKS[alias], self.scale, tcor,
                                        l2_enhancements)
            if result is not None:
                self._systems[key] = result
                return result
        result = self._replay(alias, "tcor", tcor=tcor,
                              l2_enhancements=l2_enhancements)
        if result is None:
            result = simulate_tcor(self.workload(alias), tcor=tcor,
                                   l2_enhancements=l2_enhancements)
        self._systems[key] = result
        if self.disk is not None:
            self.disk.put_tcor(BENCHMARKS[alias], self.scale, tcor,
                               l2_enhancements, result)
        return result

    @staticmethod
    def metric_prefix(key: tuple) -> str:
        """Registry namespace for one memoized simulation.

        ``sim.baseline.CCS.tc64`` or ``sim.tcor.CCS.tc64.pl16ab47``;
        the same SystemResult lands under the same name whether it was
        simulated serially, by a pool worker, or loaded from disk —
        which is what makes parallel metrics aggregation exact.
        """
        if key[0] == "baseline":
            _, alias, tile_cache_bytes = key
            return f"sim.baseline.{alias}.{_size_component('tc', tile_cache_bytes)}"
        _, alias, tile_cache_bytes, pl_bytes, ab_bytes, l2e = key
        label = "tcor" if l2e else "tcor_no_l2"
        return (f"sim.{label}.{alias}."
                f"{_size_component('tc', tile_cache_bytes)}."
                f"{_size_component('pl', pl_bytes)}"
                f"{_size_component('ab', ab_bytes)}")

    def export_metrics(self, registry) -> int:
        """Every memoized SystemResult, flattened into ``sim.*`` gauges."""
        from repro.obs.registry import flatten

        exported = 0
        for key in sorted(self._systems, key=str):
            result = self._systems[key]
            for name, value in flatten(asdict(result),
                                       self.metric_prefix(key)).items():
                registry.gauge(name, value)
                exported += 1
        return exported


def suite_workloads(scale: float = DEFAULT_SCALE,
                    aliases: tuple[str, ...] | None = None) -> list[Workload]:
    cache = SimulationCache(scale=scale, aliases=aliases)
    return cache.workloads()


def geometric_mean_ratio(values: list[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 0.0
