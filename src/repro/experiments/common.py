"""Shared experiment plumbing.

Workloads and full-system simulations are expensive, and several figures
reuse the same (benchmark, tile-cache size, organization) run — a
:class:`SimulationCache` memoizes them across experiment modules within
one runner invocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import TCORConfig
from repro.tcor.system import SystemResult, simulate_baseline, simulate_tcor
from repro.workloads.suite import (
    BENCHMARK_ORDER,
    BENCHMARKS,
    Workload,
    build_workload,
)

KIB = 1024
DEFAULT_SCALE = 1.0
# The paper evaluates two Tile Cache budgets.
TILE_CACHE_SIZES = {"64KiB": 64 * KIB, "128KiB": 128 * KIB}


@dataclass
class ExperimentResult:
    """One regenerated table or figure, as printable rows."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: str = ""

    def column(self, name: str) -> list:
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def row_for(self, key) -> list:
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(key)


def format_table(result: ExperimentResult) -> str:
    """Fixed-width text rendering of an experiment result."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    table = [result.headers] + [[fmt(v) for v in row] for row in result.rows]
    widths = [max(len(row[col]) for row in table)
              for col in range(len(result.headers))]
    lines = [f"== {result.exp_id}: {result.title} =="]
    for index, row in enumerate(table):
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)


class SimulationCache:
    """Memoizes workloads and system simulations across experiments."""

    def __init__(self, scale: float = DEFAULT_SCALE,
                 aliases: tuple[str, ...] | None = None) -> None:
        self.scale = scale
        self.aliases = tuple(aliases) if aliases else BENCHMARK_ORDER
        self._workloads: dict[str, Workload] = {}
        self._systems: dict[tuple, SystemResult] = {}

    def workload(self, alias: str) -> Workload:
        if alias not in self._workloads:
            self._workloads[alias] = build_workload(BENCHMARKS[alias],
                                                    scale=self.scale)
        return self._workloads[alias]

    def workloads(self) -> list[Workload]:
        return [self.workload(alias) for alias in self.aliases]

    def baseline(self, alias: str, tile_cache_bytes: int) -> SystemResult:
        key = ("baseline", alias, tile_cache_bytes)
        if key not in self._systems:
            self._systems[key] = simulate_baseline(
                self.workload(alias), tile_cache_bytes=tile_cache_bytes)
        return self._systems[key]

    def tcor(self, alias: str, tile_cache_bytes: int,
             l2_enhancements: bool = True) -> SystemResult:
        key = ("tcor", alias, tile_cache_bytes, l2_enhancements)
        if key not in self._systems:
            tcor = TCORConfig.for_total_size(tile_cache_bytes)
            self._systems[key] = simulate_tcor(
                self.workload(alias), tcor=tcor,
                l2_enhancements=l2_enhancements)
        return self._systems[key]


def suite_workloads(scale: float = DEFAULT_SCALE,
                    aliases: tuple[str, ...] | None = None) -> list[Workload]:
    cache = SimulationCache(scale=scale, aliases=aliases)
    return cache.workloads()


def geometric_mean_ratio(values: list[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 0.0
