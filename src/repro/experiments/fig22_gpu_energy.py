"""Figure 22: decrease in total GPU energy.

Paper shape: 5.6% (64 KiB) and 5.3% (128 KiB) average decrease — the
memory-hierarchy saving diluted by the (unchanged) compute energy.
"""

from __future__ import annotations

from repro.energy import EnergyModel, gpu_energy
from repro.experiments.common import (
    DEFAULT_SCALE,
    TILE_CACHE_SIZES,
    ExperimentResult,
    SimulationCache,
)


def run(scale: float = DEFAULT_SCALE,
        cache: SimulationCache | None = None) -> ExperimentResult:
    cache = cache or SimulationCache(scale=scale)
    model = EnergyModel.default()
    rows = []
    averages = {label: [] for label in TILE_CACHE_SIZES}
    for alias in cache.aliases:
        workload = cache.workload(alias)
        row = [alias]
        for label, size in TILE_CACHE_SIZES.items():
            base = gpu_energy(cache.baseline(alias, size), workload, model)
            tcor = gpu_energy(cache.tcor(alias, size), workload, model)
            decrease = 100 * (1 - tcor.total_gpu_nj / base.total_gpu_nj)
            averages[label].append(decrease)
            row.append(round(decrease, 1))
        rows.append(row)
    rows.append(["average"] + [
        round(sum(values) / len(values), 1) for values in averages.values()
    ])
    return ExperimentResult(
        exp_id="fig22",
        title="Decrease in total GPU energy vs baseline",
        headers=["bench", "decrease_64KiB_%", "decrease_128KiB_%"],
        rows=rows,
        notes="paper averages: 5.6% (64 KiB) and 5.3% (128 KiB)",
    )
