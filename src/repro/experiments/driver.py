"""Experiment CLI: regenerate every table and figure of the paper.

Usage::

    tcor-experiments --all                    # everything, paper scale
    tcor-experiments --experiment fig14 fig16 # a subset
    tcor-experiments --all --scale 0.25       # fast reduced-scale pass
    tcor-experiments --all --jobs 8           # parallel simulation fan-out
    tcor-experiments --all --output results.txt
    tcor-experiments --experiment fig10 --trace fig10.jsonl
    tcor-experiments --all --scale 0.2 --metrics-out metrics.json

Simulation results persist in a content-addressed on-disk cache
(``.repro-cache/`` or ``$REPRO_CACHE_DIR``; disable with
``--no-disk-cache``), so repeat invocations skip re-simulation; any
edit to the simulator sources invalidates the cache automatically.

Simulations run through the compiled-trace replay engine by default:
each workload is lowered once to an access-trace IR and replayed
through fast kernels for every configuration, bit-identically to the
live simulator (``--no-replay`` forces the live path; traced runs use
it automatically).  Compiled traces persist alongside results
(``--no-trace-cache`` disables that; ``$REPRO_TRACE_CACHE_BYTES`` caps
the store).

``--metrics-out`` writes a ``tcor-metrics`` JSON dump of every counter
the run produced (``sim.*`` per-simulation results — aggregated across
parallel workers — and ``table.*`` numeric table cells); the committed
baseline of that dump is what ``tcor-metrics diff`` gates CI against.
``--trace`` additionally records the structured event stream to JSONL
(forces ``--jobs 1`` and disables the disk cache, since a cache hit or
a pool worker would leave no events to trace in this process).
"""

from __future__ import annotations

import argparse
import re
import sys
import time
from contextlib import nullcontext

from repro.experiments import common
from repro.experiments import (
    fig01_intro_gap,
    fig10_example,
    headline,
    fig11_lower_bound,
    fig12_associativity,
    fig13_policies,
    fig14_15_l2_accesses,
    fig16_17_mm_pb,
    fig18_19_mm_total,
    fig20_21_energy,
    fig22_gpu_energy,
    fig23_24_throughput,
    fig_re,
    lookahead_gap,
    sensitivity,
    tables,
)
from repro.experiments.common import ExperimentResult, SimulationProvider
from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    TileSummarySink,
    Tracer,
    activation,
    tile_heatmap,
    write_metrics,
)

_MODULES = {
    "tables": tables,
    "headline": headline,
    "fig01": fig01_intro_gap,
    "fig10": fig10_example,
    "fig11": fig11_lower_bound,
    "fig12": fig12_associativity,
    "fig13": fig13_policies,
    "fig14": fig14_15_l2_accesses,
    "fig16": fig16_17_mm_pb,
    "fig18": fig18_19_mm_total,
    "fig20": fig20_21_energy,
    "fig22": fig22_gpu_energy,
    "fig23": fig23_24_throughput,
    "fig_re": fig_re,
    "sensitivity": sensitivity,
    "lookahead": lookahead_gap,
}

# Paired figures resolve to the same module.
_ALIASES = {"fig15": "fig14", "fig17": "fig16", "fig19": "fig18",
            "fig21": "fig20", "fig24": "fig23", "table1": "tables",
            "table2": "tables"}


def resolve_names(names: list[str]) -> list[str]:
    """Canonical, deduplicated experiment keys (fig15 -> fig14, ...)."""
    resolved: list[str] = []
    seen: set[str] = set()
    for name in names:
        key = _ALIASES.get(name, name)
        if key in seen:
            continue
        if key not in _MODULES:
            raise ValueError(
                f"unknown experiment {name!r}; choose from "
                f"{sorted(set(_MODULES) | set(_ALIASES))}"
            )
        seen.add(key)
        resolved.append(key)
    return resolved


_METRIC_NAME_RE = re.compile(r"[^0-9A-Za-z_-]+")


def _table_metric_component(text) -> str:
    return _METRIC_NAME_RE.sub("_", str(text))


def export_table_metrics(registry: MetricsRegistry,
                         results: list[ExperimentResult]) -> int:
    """Every numeric table cell as a ``table.<exp>.rNN.<header>`` gauge.

    This covers experiments whose numbers never pass through the
    simulation memo table (policy sweeps, lower bounds, energy roll-ups)
    so the regression gate sees the full reported surface.
    """
    exported = 0
    for result in results:
        exp = _table_metric_component(result.exp_id)
        for row_index, row in enumerate(result.rows):
            for header, cell in zip(result.headers, row):
                if isinstance(cell, bool) or not isinstance(cell,
                                                            (int, float)):
                    continue
                registry.gauge(
                    f"table.{exp}.r{row_index:02d}."
                    f"{_table_metric_component(header)}",
                    cell,
                )
                exported += 1
    return exported


def run_experiments(names: list[str], scale: float,
                    aliases: tuple[str, ...] | None = None,
                    jobs: int = 1, disk=None,
                    cache: SimulationProvider | None = None,
                    registry: MetricsRegistry | None = None,
                    use_replay: bool = True,
                    trace_cache: bool = True) -> list[ExperimentResult]:
    """Run the named experiments, fanning simulations out over ``jobs``
    worker processes (1 = fully serial) with ``disk`` as a persistent
    result store (None = in-memory only).  Parallel runs produce the
    same tables as serial ones: every simulation is an independent,
    seeded job and results are merged under deterministic keys.

    ``use_replay`` (default) compiles each workload's access trace once
    and replays it through the fast kernels for every configuration —
    bit-identical to the live simulator, which remains the fallback;
    ``trace_cache`` persists the compiled traces in ``disk``.

    ``registry``, when given, receives the run's metrics: every
    memoized simulation as ``sim.*`` gauges (identical whether it ran
    serially, in a pool worker, replayed, or loaded from disk) and
    every numeric table cell as ``table.*``.
    """
    resolved = resolve_names(names)
    alias_key = tuple(aliases) if aliases else common.BENCHMARK_ORDER
    cached_tables: dict[str, list[ExperimentResult]] = {}
    if disk is not None:
        for key in resolved:
            hit = disk.get_tables(key, scale, alias_key)
            if hit is not None:
                cached_tables[key] = hit
    pending = [key for key in resolved if key not in cached_tables]
    if cache is None:
        from repro.parallel import ParallelSimulationCache

        cache = ParallelSimulationCache(scale=scale, aliases=aliases,
                                        jobs=jobs, disk=disk,
                                        use_replay=use_replay,
                                        trace_cache=trace_cache)
    if pending:
        cache.prefetch(pending)
    results: list[ExperimentResult] = []
    for key in resolved:
        if key in cached_tables:
            results.extend(cached_tables[key])
            continue
        outcome = _MODULES[key].run(scale=scale, cache=cache)
        tables_out = ([outcome] if isinstance(outcome, ExperimentResult)
                      else list(outcome))
        if disk is not None:
            disk.put_tables(key, scale, alias_key, tables_out)
        results.extend(tables_out)
    if registry is not None:
        cache.export_metrics(registry)
        export_table_metrics(registry, results)
    return results


def _trace_heatmaps(summary: TileSummarySink, max_caches: int = 4) -> str:
    """Per-tile access heatmaps for the traced caches (``--plot``)."""
    blocks = []
    for cache in sorted(summary.summary()):
        cells = summary.summary()[cache]
        if not any(tile is not None for tile in cells):
            continue
        try:
            blocks.append(tile_heatmap(summary, cache))
        except ValueError:
            continue
        if len(blocks) >= max_caches:
            break
    return "\n\n".join(blocks)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the TCOR paper's tables and figures")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--experiment", nargs="+", default=[],
                        help="experiment ids (fig01, fig11, ..., tables)")
    parser.add_argument("--scale", type=float, default=common.DEFAULT_SCALE,
                        help="geometry scale (1.0 = paper scale)")
    parser.add_argument("--benchmarks", nargs="+", default=None,
                        help="benchmark aliases to include (default: all 10)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the simulation fan-out "
                             "(1 = serial; results are identical either way)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="do not read or write the persistent "
                             "simulation cache")
    parser.add_argument("--no-replay", action="store_true",
                        help="force the live simulator instead of the "
                             "compiled-trace replay kernels (results are "
                             "bit-identical either way)")
    parser.add_argument("--no-trace-cache", action="store_true",
                        help="do not persist compiled access traces in "
                             "the disk cache")
    parser.add_argument("--cache-dir", default=None,
                        help="simulation cache directory (default: "
                             "$REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--output", default=None,
                        help="also write the report to this file")
    parser.add_argument("--plot", action="store_true",
                        help="render curve figures as ASCII charts too")
    parser.add_argument("--markdown", default=None,
                        help="also write a markdown report to this file")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record the structured event trace to this "
                             "JSONL file (forces --jobs 1 and disables the "
                             "disk cache so every event is observable)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write a tcor-metrics JSON dump of every "
                             "counter the run produced")
    args = parser.parse_args(argv)

    names = list(_MODULES) if args.all else args.experiment
    if not names:
        parser.error("pass --all or --experiment ...")
    aliases = tuple(args.benchmarks) if args.benchmarks else None

    jobs = args.jobs
    disk = None
    if args.trace:
        jobs = 1
    elif not args.no_disk_cache:
        from repro.parallel import DiskCache
        disk = DiskCache(args.cache_dir)

    registry = (MetricsRegistry()
                if args.metrics_out or args.trace else None)
    tracer = None
    summary = None
    if args.trace:
        summary = TileSummarySink()
        tracer = Tracer(sinks=[JsonlSink(args.trace), summary],
                        registry=registry)

    started = time.time()
    scope = activation(tracer) if tracer is not None else nullcontext()
    with scope:
        results = run_experiments(names, scale=args.scale, aliases=aliases,
                                  jobs=jobs, disk=disk, registry=registry,
                                  use_replay=not args.no_replay,
                                  trace_cache=not args.no_trace_cache)
    if tracer is not None:
        tracer.close()
    blocks = []
    for result in results:
        block = common.format_table(result)
        if args.plot and result.headers[0] == "size_kib":
            from repro.analysis.ascii_plot import chart_from_result
            try:
                block += "\n" + chart_from_result(result, "size_kib",
                                                   width=56, height=14,
                                                   x_label="KiB")
            except ValueError:
                pass
        blocks.append(block)
    if args.plot and summary is not None:
        heatmaps = _trace_heatmaps(summary)
        if heatmaps:
            blocks.append(heatmaps)
    report = "\n\n".join(blocks)
    cache_note = disk.stats_line() if disk is not None else "disk cache: off"
    footer = (f"\n\n[{len(results)} experiment tables in "
              f"{time.time() - started:.1f}s at scale {args.scale}, "
              f"jobs {jobs}; {cache_note}]")
    if tracer is not None:
        footer += (f"\n[trace: {tracer.events_emitted} events -> "
                   f"{args.trace}]")
    print(report + footer)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + footer + "\n")
    if args.markdown:
        from repro.experiments.reporting import report_to_markdown
        with open(args.markdown, "w") as handle:
            handle.write(report_to_markdown(results) + "\n")
    if args.metrics_out and registry is not None:
        write_metrics(args.metrics_out, registry.snapshot(),
                      meta={"scale": args.scale,
                            "experiments": resolve_names(names),
                            "benchmarks": list(aliases or
                                               common.BENCHMARK_ORDER),
                            "traced": bool(args.trace)})
    return 0


if __name__ == "__main__":
    sys.exit(main())
