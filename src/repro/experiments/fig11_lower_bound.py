"""Figure 11: LRU, OPT and the miss lower bound, fully associative L1.

Paper shape: OPT reaches the lower bound around 55 KiB; LRU needs about
375 KiB — a ~6.8x capacity advantage for OPT.
"""

from __future__ import annotations

from repro.analysis.miss_curves import suite_miss_curve
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    SimulationCache,
)

SIZES_KIB = [16, 32, 48, 64, 96, 128, 160, 224, 288, 352, 416, 480]
_TOLERANCE = 0.005  # "reaches" the bound: within half a miss-ratio point


def saturation_size(sizes: list[int], ratios: list[float],
                    bounds: list[float], tolerance: float = _TOLERANCE) -> int | None:
    """Smallest size whose miss ratio is within ``tolerance`` of the bound."""
    for size, ratio, bound in zip(sizes, ratios, bounds):
        if ratio - bound <= tolerance:
            return size
    return None


def run(scale: float = DEFAULT_SCALE,
        cache: SimulationCache | None = None,
        sizes_kib: list[int] | None = None) -> ExperimentResult:
    cache = cache or SimulationCache(scale=scale)
    sizes = sizes_kib or SIZES_KIB
    workloads = cache.workloads()
    lru = suite_miss_curve(workloads, sizes, "lru", include_lower_bound=True)
    opt = suite_miss_curve(workloads, sizes, "belady")
    rows = [
        [size, bound, lru_ratio, opt_ratio]
        for size, bound, lru_ratio, opt_ratio
        in zip(sizes, lru["lower_bound"], lru["miss_ratio"],
               opt["miss_ratio"])
    ]
    opt_at = saturation_size(sizes, opt["miss_ratio"], lru["lower_bound"])
    lru_at = saturation_size(sizes, lru["miss_ratio"], lru["lower_bound"])
    if opt_at and lru_at:
        advantage = f"OPT saturates at {opt_at} KiB vs LRU at {lru_at} KiB " \
                    f"({lru_at / opt_at:.1f}x smaller; paper: 6.8x)"
    else:
        advantage = "one policy did not reach the bound in the swept range"
    return ExperimentResult(
        exp_id="fig11",
        title="Lower bound vs LRU vs OPT, fully associative L1",
        headers=["size_kib", "lower_bound", "lru_miss_ratio",
                 "opt_miss_ratio"],
        rows=rows,
        notes=advantage,
    )
