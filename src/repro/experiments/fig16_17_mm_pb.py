"""Figures 16/17: Parameter Buffer accesses to Main Memory.

Paper shape: TCOR eliminates PB main-memory traffic entirely for 7 of 10
benchmarks; CRa/Mze/DDS (the large Parameter Buffers) spill but still
drop 53-99%.  Averages: 93.0% (64 KiB) and 94.1% (128 KiB).
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_SCALE,
    TILE_CACHE_SIZES,
    ExperimentResult,
    SimulationCache,
)

PAPER_DECREASE = {
    "64KiB": {"CCS": 100.0, "SoD": 100.0, "TRu": 100.0, "SWa": 100.0,
              "CRa": 98.7, "RoK": 100.0, "DDS": 53.4, "Snp": 100.0,
              "Mze": 78.2, "GTr": 100.0, "average": 93.0},
    "128KiB": {"CCS": 100.0, "SoD": 100.0, "TRu": 100.0, "SWa": 100.0,
               "CRa": 99.5, "RoK": 100.0, "DDS": 58.1, "Snp": 100.0,
               "Mze": 82.9, "GTr": 100.0, "average": 94.1},
}


def run_one(size_label: str, scale: float = DEFAULT_SCALE,
            cache: SimulationCache | None = None) -> ExperimentResult:
    cache = cache or SimulationCache(scale=scale)
    size = TILE_CACHE_SIZES[size_label]
    rows = []
    decreases = []
    for alias in cache.aliases:
        base = cache.baseline(alias, size)
        tcor = cache.tcor(alias, size)
        ratio = tcor.pb_mm_accesses / max(1, base.pb_mm_accesses)
        decreases.append(100 * (1 - ratio))
        rows.append([
            alias,
            base.pb_mm_reads, base.pb_mm_writes,
            tcor.pb_mm_reads, tcor.pb_mm_writes,
            round(100 * (1 - ratio), 1),
            PAPER_DECREASE[size_label][alias],
        ])
    average = sum(decreases) / len(decreases)
    rows.append(["average", "", "", "", "", round(average, 1),
                 PAPER_DECREASE[size_label]["average"]])
    fig = "fig16" if size_label == "64KiB" else "fig17"
    return ExperimentResult(
        exp_id=fig,
        title=f"PB accesses to Main Memory ({size_label} Tile Cache)",
        headers=["bench", "base_mm_reads", "base_mm_writes",
                 "tcor_mm_reads", "tcor_mm_writes",
                 "decrease_%", "paper_decrease_%"],
        rows=rows,
        notes="PB larger than the L2 (CRa/Mze/DDS) spills; others vanish",
    )


def run(scale: float = DEFAULT_SCALE,
        cache: SimulationCache | None = None) -> list[ExperimentResult]:
    cache = cache or SimulationCache(scale=scale)
    return [run_one("64KiB", scale, cache), run_one("128KiB", scale, cache)]
