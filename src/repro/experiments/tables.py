"""Tables I and II.

Table I is the machine description (configuration, no simulation).
Table II compares each synthetic benchmark's *measured* characteristics
against the paper's published values — the calibration check for the
whole workload substitution.
"""

from __future__ import annotations

from repro.config import DEFAULT_GPU
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    SimulationCache,
)
from repro.workloads.suite import BENCHMARKS

MIB = 1024 * 1024


def run_table1() -> ExperimentResult:
    gpu = DEFAULT_GPU
    rows = [
        ["tech", f"{gpu.frequency_hz // 1_000_000}MHz, "
                 f"{gpu.voltage_v:g}V, {gpu.technology_nm}nm"],
        ["screen", f"{gpu.screen.width}x{gpu.screen.height}"],
        ["tile", f"{gpu.screen.tile_size}x{gpu.screen.tile_size} "
                 f"({gpu.screen.num_tiles} tiles)"],
        ["traversal", "Z-order"],
        ["main memory", f"{gpu.memory.min_latency_cycles}-"
                        f"{gpu.memory.max_latency_cycles} cycles, "
                        f"{gpu.memory.size_bytes // MIB} MiB"],
        ["vertex cache", _cache_row(gpu.vertex_cache)],
        ["texture caches",
         f"{gpu.num_texture_caches}x {_cache_row(gpu.texture_cache)}"],
        ["tile cache", _cache_row(gpu.tile_cache)],
        ["l2 cache", _cache_row(gpu.l2_cache)],
    ]
    return ExperimentResult(
        exp_id="table1",
        title="GPU simulation parameters",
        headers=["parameter", "value"],
        rows=rows,
    )


def _cache_row(config) -> str:
    return (f"{config.line_bytes}B/line, {config.size_bytes // 1024}KiB, "
            f"{config.associativity}-way, {config.latency_cycles} cycle(s)")


def run_table2(scale: float = DEFAULT_SCALE,
               cache: SimulationCache | None = None) -> ExperimentResult:
    cache = cache or SimulationCache(scale=scale)
    rows = []
    for alias in cache.aliases:
        spec = BENCHMARKS[alias]
        workload = cache.workload(alias)
        rows.append([
            alias, spec.genre, "2D" if spec.is_2d else "3D",
            spec.installs_millions,
            spec.pb_footprint_mib,
            round(workload.measured_footprint_mib() / scale, 2),
            spec.avg_reuse,
            round(workload.measured_reuse(), 2),
            workload.num_primitives,
        ])
    return ExperimentResult(
        exp_id="table2",
        title="Benchmark suite: published vs measured characteristics",
        headers=["bench", "genre", "type", "installs_M",
                 "paper_pb_mib", "measured_pb_mib",
                 "paper_reuse", "measured_reuse", "primitives"],
        rows=rows,
        notes="measured footprint is scale-normalized back to paper scale",
    )


def run(scale: float = DEFAULT_SCALE,
        cache: SimulationCache | None = None) -> list[ExperimentResult]:
    return [run_table1(), run_table2(scale, cache)]
