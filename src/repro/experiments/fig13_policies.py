"""Figure 13: LRU vs MRU vs DRRIP (M=2) vs OPT in a 4-way L1.

Paper shape: MRU worst, DRRIP slightly above or equal to LRU (no benefit
on this stream), OPT quickly falls to the lower bound.
"""

from __future__ import annotations

from repro.analysis.miss_curves import suite_miss_curve
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    SimulationCache,
)

SIZES_KIB = [32, 48, 64, 96, 128, 160]
ASSOCIATIVITY = 4


def run(scale: float = DEFAULT_SCALE,
        cache: SimulationCache | None = None,
        sizes_kib: list[int] | None = None,
        extended: bool = False) -> ExperimentResult:
    """The paper's four policies; ``extended=True`` adds SHiP and Hawkeye
    (related-work predictors the paper cites but does not plot)."""
    cache = cache or SimulationCache(scale=scale)
    sizes = sizes_kib or SIZES_KIB
    workloads = cache.workloads()

    lru = suite_miss_curve(workloads, sizes, "lru",
                           associativity=ASSOCIATIVITY,
                           include_lower_bound=True)
    mru = suite_miss_curve(workloads, sizes, "mru",
                           associativity=ASSOCIATIVITY)
    drrip = suite_miss_curve(workloads, sizes, "drrip",
                             associativity=ASSOCIATIVITY, m_bits=2)
    opt = suite_miss_curve(workloads, sizes, "belady",
                           associativity=ASSOCIATIVITY)
    extras = {}
    if extended:
        extras["ship"] = suite_miss_curve(workloads, sizes, "ship",
                                          associativity=ASSOCIATIVITY)
        extras["hawkeye"] = suite_miss_curve(workloads, sizes, "hawkeye",
                                             associativity=ASSOCIATIVITY)
    rows = [
        [size, lru["lower_bound"][i], mru["miss_ratio"][i],
         drrip["miss_ratio"][i], lru["miss_ratio"][i]]
        + [extras[name]["miss_ratio"][i] for name in extras]
        + [opt["miss_ratio"][i]]
        for i, size in enumerate(sizes)
    ]
    headers = (["size_kib", "lower_bound", "mru", "drrip_m2", "lru"]
               + list(extras) + ["opt"])
    return ExperimentResult(
        exp_id="fig13",
        title="Replacement policies in a 4-way L1 (suite average)",
        headers=headers,
        rows=rows,
        notes="paper: MRU > DRRIP >= LRU > OPT ~ lower bound"
              + ("; SHiP/Hawkeye are our related-work additions"
                 if extended else ""),
    )
