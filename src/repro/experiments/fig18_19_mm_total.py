"""Figures 18/19: total Main Memory accesses (all regions).

Paper shape: 13.9% (64 KiB) / 13.3% (128 KiB) average decrease; the
geometry-heavy benchmarks (CRa, DDS, Snp) benefit most, texture-heavy
RoK least.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_SCALE,
    TILE_CACHE_SIZES,
    ExperimentResult,
    SimulationCache,
)

PAPER_DECREASE = {
    "64KiB": {"CCS": 8.2, "SoD": 6.0, "TRu": 18.2, "SWa": 10.8,
              "CRa": 23.0, "RoK": 4.3, "DDS": 19.2, "Snp": 27.5,
              "Mze": 15.1, "GTr": 6.4, "average": 13.9},
    "128KiB": {"CCS": 5.2, "SoD": 3.9, "TRu": 16.3, "SWa": 10.6,
               "CRa": 23.3, "RoK": 2.4, "DDS": 20.9, "Snp": 27.2,
               "Mze": 16.5, "GTr": 6.4, "average": 13.3},
}


def run_one(size_label: str, scale: float = DEFAULT_SCALE,
            cache: SimulationCache | None = None) -> ExperimentResult:
    cache = cache or SimulationCache(scale=scale)
    size = TILE_CACHE_SIZES[size_label]
    rows = []
    decreases = []
    for alias in cache.aliases:
        base = cache.baseline(alias, size)
        tcor = cache.tcor(alias, size)
        ratio = tcor.mm_accesses / max(1, base.mm_accesses)
        decreases.append(100 * (1 - ratio))
        rows.append([
            alias, base.mm_accesses, tcor.mm_accesses,
            round(100 * (1 - ratio), 1),
            PAPER_DECREASE[size_label][alias],
        ])
    average = sum(decreases) / len(decreases)
    rows.append(["average", "", "", round(average, 1),
                 PAPER_DECREASE[size_label]["average"]])
    fig = "fig18" if size_label == "64KiB" else "fig19"
    return ExperimentResult(
        exp_id=fig,
        title=f"Total Main Memory accesses ({size_label} Tile Cache)",
        headers=["bench", "baseline_mm", "tcor_mm", "decrease_%",
                 "paper_decrease_%"],
        rows=rows,
        notes="geometry-heavy benchmarks gain most; texture-heavy RoK least",
    )


def run(scale: float = DEFAULT_SCALE,
        cache: SimulationCache | None = None) -> list[ExperimentResult]:
    cache = cache or SimulationCache(scale=scale)
    return [run_one("64KiB", scale, cache), run_one("128KiB", scale, cache)]
