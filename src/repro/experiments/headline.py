"""The abstract's four headline numbers in one table.

Paper: "a 13.8% decrease in the memory hierarchy energy consumption and
an increased throughput in the Tiling Engine [~5x].  We also observe a
5.5% decrease in the total GPU energy and a 3.7% increase in frames per
second (FPS)."  (Averages over both Tile Cache sizes.)
"""

from __future__ import annotations

from repro.energy import EnergyModel, gpu_energy
from repro.experiments.common import (
    DEFAULT_SCALE,
    TILE_CACHE_SIZES,
    ExperimentResult,
    SimulationCache,
)
from repro.timing import tile_fetcher_throughput
from repro.timing.fps import fps_gain

PAPER = {
    "memory hierarchy energy decrease (%)": 13.8,
    "total GPU energy decrease (%)": 5.5,
    "FPS increase (%)": 3.7,
    "Tiling Engine speedup (x)": 5.0,
}


def run(scale: float = DEFAULT_SCALE,
        cache: SimulationCache | None = None) -> ExperimentResult:
    cache = cache or SimulationCache(scale=scale)
    model = EnergyModel.default()
    memhier, gpu_total, fps, speedups = [], [], [], []
    for alias in cache.aliases:
        workload = cache.workload(alias)
        for size in TILE_CACHE_SIZES.values():
            base = cache.baseline(alias, size)
            tcor = cache.tcor(alias, size)
            base_energy = gpu_energy(base, workload, model)
            tcor_energy = gpu_energy(tcor, workload, model)
            memhier.append(100 * (1 - tcor_energy.memory_hierarchy_nj
                                  / base_energy.memory_hierarchy_nj))
            gpu_total.append(100 * (1 - tcor_energy.total_gpu_nj
                                    / base_energy.total_gpu_nj))
            fps.append(100 * fps_gain(base, tcor, workload))
            base_ppc = tile_fetcher_throughput(
                workload, "baseline", total_tile_cache_bytes=size)
            tcor_ppc = tile_fetcher_throughput(
                workload, "tcor", total_tile_cache_bytes=size)
            speedups.append(tcor_ppc.primitives_per_cycle
                            / max(1e-9, base_ppc.primitives_per_cycle))

    def avg(values):
        return round(sum(values) / len(values), 1)

    rows = [
        ["memory hierarchy energy decrease (%)", avg(memhier),
         PAPER["memory hierarchy energy decrease (%)"]],
        ["total GPU energy decrease (%)", avg(gpu_total),
         PAPER["total GPU energy decrease (%)"]],
        ["FPS increase (%)", avg(fps), PAPER["FPS increase (%)"]],
        ["Tiling Engine speedup (x)", avg(speedups),
         PAPER["Tiling Engine speedup (x)"]],
    ]
    return ExperimentResult(
        exp_id="headline",
        title="Abstract headline numbers (suite x both Tile Cache sizes)",
        headers=["metric", "measured", "paper"],
        rows=rows,
        notes="averages over the 10 benchmarks at 64 KiB and 128 KiB",
    )
