"""Figures 14/15: Parameter Buffer accesses to the L2, TCOR vs baseline.

Paper shape: per-benchmark decreases, averaging 33.5% (64 KiB Tile
Cache) and 37.1% (128 KiB); high-reuse, small-footprint benchmarks (SoD,
CCS, GTr, RoK) reduce the most, DDS/Snp the least.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_SCALE,
    TILE_CACHE_SIZES,
    ExperimentResult,
    SimulationCache,
)

PAPER_DECREASE = {
    "64KiB": {"CCS": 47.3, "SoD": 59.6, "TRu": 30.2, "SWa": 31.9,
              "CRa": 23.5, "RoK": 41.5, "DDS": 14.6, "Snp": 17.4,
              "Mze": 22.0, "GTr": 46.6, "average": 33.5},
    "128KiB": {"CCS": 48.5, "SoD": 64.4, "TRu": 36.7, "SWa": 39.6,
               "CRa": 24.2, "RoK": 57.5, "DDS": 14.4, "Snp": 20.8,
               "Mze": 21.3, "GTr": 43.5, "average": 37.1},
}


def run_one(size_label: str, scale: float = DEFAULT_SCALE,
            cache: SimulationCache | None = None) -> ExperimentResult:
    cache = cache or SimulationCache(scale=scale)
    size = TILE_CACHE_SIZES[size_label]
    rows = []
    decreases = []
    for alias in cache.aliases:
        base = cache.baseline(alias, size)
        tcor = cache.tcor(alias, size)
        ratio = tcor.pb_l2_accesses / max(1, base.pb_l2_accesses)
        decreases.append(100 * (1 - ratio))
        rows.append([
            alias,
            base.pb_l2_reads, base.pb_l2_writes,
            tcor.pb_l2_reads, tcor.pb_l2_writes,
            round(100 * (1 - ratio), 1),
            PAPER_DECREASE[size_label][alias],
        ])
    average = sum(decreases) / len(decreases)
    rows.append(["average", "", "", "", "", round(average, 1),
                 PAPER_DECREASE[size_label]["average"]])
    fig = "fig14" if size_label == "64KiB" else "fig15"
    return ExperimentResult(
        exp_id=fig,
        title=f"PB accesses to L2, TCOR vs baseline ({size_label} Tile Cache)",
        headers=["bench", "base_l2_reads", "base_l2_writes",
                 "tcor_l2_reads", "tcor_l2_writes",
                 "decrease_%", "paper_decrease_%"],
        rows=rows,
        notes="normalized per benchmark; higher reuse => larger decrease",
    )


def run(scale: float = DEFAULT_SCALE,
        cache: SimulationCache | None = None) -> list[ExperimentResult]:
    cache = cache or SimulationCache(scale=scale)
    return [run_one("64KiB", scale, cache), run_one("128KiB", scale, cache)]
