"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(scale=..., cache=...) -> ExperimentResult``
(or a list of results for paired figures).  The CLI
(``python -m repro.experiments.driver``, installed as
``tcor-experiments``) regenerates everything and prints paper-style
tables.
"""

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    SimulationCache,
    format_table,
    suite_workloads,
)

__all__ = [
    "DEFAULT_SCALE",
    "ExperimentResult",
    "SimulationCache",
    "format_table",
    "suite_workloads",
]
