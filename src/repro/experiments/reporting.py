"""Markdown rendering of experiment results.

Turns :class:`~repro.experiments.common.ExperimentResult` objects into
GitHub-flavoured markdown tables — the format EXPERIMENTS.md uses — so a
paper-scale run can regenerate the results document mechanically
(``tcor-experiments --all --markdown results.md``).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def result_to_markdown(result: ExperimentResult) -> str:
    lines = [f"## {result.exp_id}: {result.title}", ""]
    lines.append("| " + " | ".join(result.headers) + " |")
    lines.append("|" + "|".join("---" for _ in result.headers) + "|")
    for row in result.rows:
        lines.append("| " + " | ".join(_cell(value) for value in row) + " |")
    if result.notes:
        lines.append("")
        lines.append(f"*{result.notes}*")
    return "\n".join(lines)


def report_to_markdown(results: list[ExperimentResult],
                       title: str = "TCOR reproduction results") -> str:
    sections = [f"# {title}", ""]
    sections.extend(result_to_markdown(result) + "\n" for result in results)
    return "\n".join(sections)
